"""Tiled CSR encoding with the paper's storage-overhead accounting.

Sec. IV: "the whole weight matrix is tiled into 256x256-sized submatrices.
Then, each Int8 non-zero element requires an extra byte for column
indexing; each tiled row requires an extra byte for inner-submatrix row
indexing; and each submatrix requires two bytes for tile indexing."  The
resulting storage expansion factor is the roofline model's beta, which the
paper quotes as 2.0-2.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Submatrix tiling of the CSR encoding.
TILE = 256

#: Index-overhead bytes.
_COL_INDEX_BYTES = 1
_ROW_INDEX_BYTES = 1
_TILE_INDEX_BYTES = 2


@dataclass(frozen=True)
class TiledCsrMatrix:
    """A weight matrix in the paper's tiled CSR format.

    Attributes:
        rows / cols: Dense matrix shape.
        values: Non-zero values in tile-major, row-major order.
        col_indices: Per-value column index inside its tile (uint8).
        row_starts: Per (tile, tile-row) cumulative non-zero offsets.
        tile_ids: Identifier per tile, row-major over the tile grid.
    """

    rows: int
    cols: int
    values: np.ndarray
    col_indices: np.ndarray
    row_starts: np.ndarray
    tile_ids: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def tiles(self) -> int:
        return int(self.tile_ids.size)

    @property
    def encoded_bytes(self) -> int:
        """Total storage of values plus every index structure."""
        tile_rows = self.tiles * TILE
        return (
            self.nnz * (1 + _COL_INDEX_BYTES)
            + tile_rows * _ROW_INDEX_BYTES
            + self.tiles * _TILE_INDEX_BYTES
        )

    @property
    def dense_bytes(self) -> int:
        return self.rows * self.cols

    @property
    def nonzero_ratio(self) -> float:
        """x — the fraction of retained weights."""
        return self.nnz / self.dense_bytes if self.dense_bytes else 0.0

    @property
    def beta(self) -> float:
        """CSR expansion factor: encoded bytes / (x * dense bytes)."""
        if self.nnz == 0:
            return float("inf")
        return self.encoded_bytes / self.nnz

    def to_dense(self) -> np.ndarray:
        """Decode back to the dense int8 matrix (round-trip testing)."""
        dense = np.zeros((self.rows, self.cols), dtype=np.int8)
        tiles_per_row = math.ceil(self.cols / TILE)
        cursor = 0
        for tile_index in range(self.tiles):
            tile_r = (tile_index // tiles_per_row) * TILE
            tile_c = (tile_index % tiles_per_row) * TILE
            for local_row in range(TILE):
                start = self.row_starts[tile_index * TILE + local_row]
                end = (
                    self.row_starts[tile_index * TILE + local_row + 1]
                    if tile_index * TILE + local_row + 1
                    < self.row_starts.size
                    else self.nnz
                )
                row = tile_r + local_row
                if row >= self.rows:
                    continue
                for position in range(start, end):
                    col = tile_c + int(self.col_indices[position])
                    dense[row, col] = self.values[position]
                cursor = end
        del cursor
        return dense


def encode_tiled_csr(matrix: np.ndarray) -> TiledCsrMatrix:
    """Encode a dense int8 matrix into the paper's tiled CSR format."""
    if matrix.ndim != 2:
        raise ConfigurationError("CSR encoding needs a 2D matrix")
    rows, cols = matrix.shape
    tiles_down = math.ceil(rows / TILE)
    tiles_across = math.ceil(cols / TILE)

    values: list[np.ndarray] = []
    col_indices: list[np.ndarray] = []
    row_starts: list[int] = []
    count = 0
    for tile_r in range(tiles_down):
        for tile_c in range(tiles_across):
            block = matrix[
                tile_r * TILE : (tile_r + 1) * TILE,
                tile_c * TILE : (tile_c + 1) * TILE,
            ]
            for local_row in range(TILE):
                row_starts.append(count)
                if local_row >= block.shape[0]:
                    continue
                nz_cols = np.nonzero(block[local_row])[0]
                if nz_cols.size:
                    values.append(
                        block[local_row, nz_cols].astype(np.int8)
                    )
                    col_indices.append(nz_cols.astype(np.uint16))
                    count += int(nz_cols.size)

    return TiledCsrMatrix(
        rows=rows,
        cols=cols,
        values=(
            np.concatenate(values)
            if values
            else np.empty(0, dtype=np.int8)
        ),
        col_indices=(
            np.concatenate(col_indices)
            if col_indices
            else np.empty(0, dtype=np.uint16)
        ),
        row_starts=np.asarray(row_starts, dtype=np.int64),
        tile_ids=np.arange(tiles_down * tiles_across, dtype=np.int32),
    )


def csr_beta(rows: int, cols: int, nonzero_ratio: float) -> float:
    """Analytic beta for a matrix of the given shape and density.

    ``beta * x * S_W`` must equal the encoded bytes, so
    ``beta = 2 + (index overhead) / nnz`` — always >= 2 for int8 values
    with one index byte each, approaching 2 as matrices grow denser.
    """
    if not 0.0 < nonzero_ratio <= 1.0:
        raise ConfigurationError(
            f"nonzero ratio must be in (0, 1], got {nonzero_ratio}"
        )
    tiles = math.ceil(rows / TILE) * math.ceil(cols / TILE)
    nnz = nonzero_ratio * rows * cols
    overhead = tiles * (TILE * _ROW_INDEX_BYTES + _TILE_INDEX_BYTES)
    return (1 + _COL_INDEX_BYTES) + overhead / nnz
