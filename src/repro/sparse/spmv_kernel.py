"""Functional SpMV executor over the tiled CSR format.

The case study's roofline model counts operations analytically; this
kernel actually *computes* the sparse matrix product from the tiled CSR
structures, so the format and the operation counts can be verified
operationally against dense numpy results (the reproduction's substitute
for running the microbenchmark on hardware).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import TILE, TiledCsrMatrix


@dataclass(frozen=True)
class SpmvExecution:
    """Result of one sparse matrix-matrix product.

    Attributes:
        output: The (M x K) int32 result.
        multiplies: Scalar multiplies actually executed (= nnz * K).
        dense_multiplies: What the dense product would have executed.
    """

    output: np.ndarray
    multiplies: int
    dense_multiplies: int

    @property
    def compute_reduction(self) -> float:
        """Measured y: executed / dense multiplies."""
        if self.dense_multiplies == 0:
            return 0.0
        return self.multiplies / self.dense_multiplies


def spmv(matrix: TiledCsrMatrix, vectors: np.ndarray) -> SpmvExecution:
    """Multiply a tiled-CSR weight matrix by dense batched vectors.

    Args:
        matrix: (M x N) weights in tiled CSR.
        vectors: Dense (N x K) right-hand side.

    Returns:
        The product and the executed-operation accounting.
    """
    if vectors.ndim != 2:
        raise ConfigurationError("vectors must be (N x K)")
    if vectors.shape[0] != matrix.cols:
        raise ConfigurationError(
            f"dimension mismatch: matrix is {matrix.rows}x{matrix.cols}, "
            f"vectors are {vectors.shape[0]}x{vectors.shape[1]}"
        )
    batch = vectors.shape[1]
    output = np.zeros((matrix.rows, batch), dtype=np.int64)
    tiles_across = math.ceil(matrix.cols / TILE)

    executed = 0
    total_rows = matrix.row_starts.size
    for flat_row in range(total_rows):
        start = matrix.row_starts[flat_row]
        end = (
            matrix.row_starts[flat_row + 1]
            if flat_row + 1 < total_rows
            else matrix.nnz
        )
        if start == end:
            continue
        tile_index = flat_row // TILE
        local_row = flat_row % TILE
        row = (tile_index // tiles_across) * TILE + local_row
        col_base = (tile_index % tiles_across) * TILE
        if row >= matrix.rows:
            continue
        cols = col_base + matrix.col_indices[start:end].astype(np.int64)
        values = matrix.values[start:end].astype(np.int64)
        output[row] += values @ vectors[cols].astype(np.int64)
        executed += int(values.size) * batch

    return SpmvExecution(
        output=output,
        multiplies=executed,
        dense_multiplies=matrix.rows * matrix.cols * batch,
    )


def dense_reference(
    matrix: TiledCsrMatrix, vectors: np.ndarray
) -> np.ndarray:
    """The dense ground-truth product for verification."""
    dense = matrix.to_dense().astype(np.int64)
    return dense @ vectors.astype(np.int64)
