"""Synthetic sparse-weight generators with controllable zero clustering.

Sec. IV's y (the compute-reduction factor) "is determined by the non-zero
ratio x and the distribution of zero elements."  The generators here place
non-zeros either uniformly at random or in aligned square clusters — the
structured layout magnitude-pruning at channel/group granularity produces,
and the one the case study's block-wise zero-skipping relies on.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: Side of the aligned square zero/non-zero clusters (4x4 = 16 elements),
#: the pruning granularity assumed by the Fig. 11 microbenchmark.  Finer
#: than any skip block, so low sparsity yields little block-skipping (the
#: paper's observation) and the TU8/RT64 transition lands near 0.9.
CLUSTER_SIDE = 4

#: Elements per cluster.
CLUSTER_ELEMS = CLUSTER_SIDE * CLUSTER_SIDE


class ZeroLayout(enum.Enum):
    """How zeros are distributed across the weight matrix."""

    UNIFORM = "uniform"
    CLUSTERED = "clustered"


def _check_shape(rows: int, cols: int, density: float) -> None:
    if rows < 1 or cols < 1:
        raise ConfigurationError("matrix must be at least 1x1")
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(
            f"density (non-zero ratio) must be in [0, 1], got {density}"
        )


def uniform_sparse_matrix(
    rows: int,
    cols: int,
    density: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """int8 matrix with element-wise i.i.d. non-zeros at ``density``."""
    _check_shape(rows, cols, density)
    rng = rng if rng is not None else np.random.default_rng(0)
    mask = rng.random((rows, cols)) < density
    values = rng.integers(1, 127, size=(rows, cols), dtype=np.int8)
    return np.where(mask, values, np.int8(0))


def clustered_sparse_matrix(
    rows: int,
    cols: int,
    density: float,
    rng: Optional[np.random.Generator] = None,
    cluster_side: int = CLUSTER_SIDE,
) -> np.ndarray:
    """int8 matrix whose non-zeros occupy whole aligned clusters.

    Aligned ``cluster_side x cluster_side`` tiles are kept (dense) with
    probability ``density`` and zeroed otherwise — group-pruned weights.
    The realized density converges to ``density`` as the matrix grows.
    """
    _check_shape(rows, cols, density)
    if cluster_side < 1:
        raise ConfigurationError("cluster side must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    tiles_down = math.ceil(rows / cluster_side)
    tiles_across = math.ceil(cols / cluster_side)
    keep = rng.random((tiles_down, tiles_across)) < density
    mask = np.kron(keep, np.ones((cluster_side, cluster_side), dtype=bool))
    mask = mask[:rows, :cols]
    values = rng.integers(1, 127, size=(rows, cols), dtype=np.int8)
    return np.where(mask, values, np.int8(0))


def realized_density(matrix: np.ndarray) -> float:
    """Fraction of non-zero elements in a matrix."""
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix)) / matrix.size
