"""Zero-skipping models: the compute-reduction factor y of Sec. IV.

"The systolic array based TU conducts block-wise zero-skipping ... if the
zero elements form a block of the size of the TU's systolic array and
align on the array loading boundary, then this all-zero block can be
skipped."  Reduction trees skip at their (1D) vector granularity instead.

With zeros clustered at granularity ``g`` (elements) and a skip block of
``b`` elements, a block is skippable iff all of its ``b / g`` clusters are
zero, so ``y = 1 - (1 - x) ** (b / g)`` — equal to x when the block matches
the pruning granularity, and near 1 for blocks much coarser than it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.distributions import CLUSTER_ELEMS, ZeroLayout


def _check_x(x: float) -> None:
    if not 0.0 < x <= 1.0:
        raise ConfigurationError(f"non-zero ratio must be in (0, 1]: {x}")


def block_skip_compute_factor(
    x: float,
    block_elems: int,
    layout: ZeroLayout = ZeroLayout.CLUSTERED,
    cluster_elems: int = CLUSTER_ELEMS,
) -> float:
    """y for a 2D skip block of ``block_elems`` elements (TU X*X).

    Args:
        x: Non-zero ratio of the weight matrix.
        block_elems: Elements per skippable block.
        layout: Zero distribution; uniform zeros make large-block skipping
            hopeless (every element must be zero independently).
        cluster_elems: Pruning granularity of the clustered layout.
    """
    _check_x(x)
    if block_elems < 1:
        raise ConfigurationError("block must have >= 1 element")
    if layout is ZeroLayout.UNIFORM:
        independent = block_elems
    else:
        independent = max(1.0, block_elems / cluster_elems)
    skip_probability = (1.0 - x) ** independent
    return 1.0 - skip_probability


def vector_skip_compute_factor(
    x: float,
    vector_elems: int,
    layout: ZeroLayout = ZeroLayout.CLUSTERED,
    cluster_elems: int = CLUSTER_ELEMS,
) -> float:
    """y for a reduction tree skipping whole ``vector_elems`` input groups.

    RTs map flexibly (Sec. II-A), so a 64-input RT consumes one aligned
    64-element cluster per group — the same expression as the 2D block
    case with the RT's fan-in as the block size.
    """
    return block_skip_compute_factor(
        x, vector_elems, layout=layout, cluster_elems=cluster_elems
    )


def measured_block_skip_factor(
    matrix: np.ndarray, block_rows: int, block_cols: int
) -> float:
    """Empirical y: fraction of aligned blocks that are *not* all-zero.

    Counts compute actually performed by block-wise skipping on a concrete
    matrix — the ground truth the analytic factors approximate.
    """
    if matrix.ndim != 2:
        raise ConfigurationError("need a 2D matrix")
    if block_rows < 1 or block_cols < 1:
        raise ConfigurationError("block dims must be >= 1")
    rows, cols = matrix.shape
    blocks_down = math.ceil(rows / block_rows)
    blocks_across = math.ceil(cols / block_cols)
    nonzero_blocks = 0
    for i in range(blocks_down):
        for j in range(blocks_across):
            block = matrix[
                i * block_rows : (i + 1) * block_rows,
                j * block_cols : (j + 1) * block_cols,
            ]
            if np.any(block):
                nonzero_blocks += 1
    total = blocks_down * blocks_across
    return nonzero_blocks / total if total else 0.0
