"""Sparse-workload substrate: CSR encoding, zero layouts, zero-skipping.

Implements the Sec. IV microbenchmark machinery: the tiled CSR format and
its storage overhead (beta), synthetic sparse-matrix generators with
controllable zero clustering, and the block/vector zero-skipping models
that produce the compute-reduction factor y.
"""

from repro.sparse.csr import TiledCsrMatrix, csr_beta, encode_tiled_csr
from repro.sparse.distributions import (
    ZeroLayout,
    clustered_sparse_matrix,
    uniform_sparse_matrix,
)
from repro.sparse.skipping import (
    block_skip_compute_factor,
    measured_block_skip_factor,
    vector_skip_compute_factor,
)
from repro.sparse.spmv_kernel import SpmvExecution, dense_reference, spmv

__all__ = [
    "TiledCsrMatrix",
    "ZeroLayout",
    "block_skip_compute_factor",
    "clustered_sparse_matrix",
    "csr_beta",
    "encode_tiled_csr",
    "measured_block_skip_factor",
    "SpmvExecution",
    "dense_reference",
    "spmv",
    "uniform_sparse_matrix",
    "vector_skip_compute_factor",
]
