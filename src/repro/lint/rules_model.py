"""NM2xx: model-convention rules.

These encode the hard conventions from PRs 1-3: every component
``estimate()`` goes through :func:`repro.arch.component.cached_estimate`
(the cache *and* integrity boundary), model layers raise typed
:mod:`repro.errors` exceptions, and :class:`~repro.arch.component.Estimate`
nodes are built with explicit unit-suffixed keywords.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import (
    Finding,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SourceFile,
)


def _decorator_names(node: ast.FunctionDef) -> set:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


class UncachedEstimate(Rule):
    """NM201: a component ``estimate(self, ctx)`` without ``cached_estimate``.

    An undecorated override silently skips the memoization cache *and* the
    integrity screen/fault-injection boundary that ride on it.
    """

    id = "NM201"
    severity = SEVERITY_ERROR
    title = "component estimate() not decorated with cached_estimate"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name != "estimate":
                    continue
                args = [arg.arg for arg in item.args.args]
                if len(args) != 2 or args[0] != "self":
                    continue  # not the (self, ctx) component protocol
                if "cached_estimate" not in _decorator_names(item):
                    yield self.finding(
                        sf, item,
                        f"{node.name}.estimate() is not decorated with "
                        "@cached_estimate, bypassing the estimate cache "
                        "and the integrity screen",
                        hint="from repro.arch.component import "
                        "cached_estimate and decorate the method",
                    )


#: Builtin exception types model layers must not raise directly.
_BARE_EXCEPTIONS = {
    "ValueError": "ConfigurationError",
    "RuntimeError": "NeuroMeterError",
}


class BareBuiltinException(Rule):
    """NM202: ``raise ValueError``/``RuntimeError`` in a model layer."""

    id = "NM202"
    severity = SEVERITY_ERROR
    title = "bare builtin exception raised in a model layer"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            replacement = _BARE_EXCEPTIONS.get(name)
            if replacement is not None:
                yield self.finding(
                    sf, node,
                    f"model layer raises bare {name}; callers catch "
                    "repro.errors.NeuroMeterError at the API boundary "
                    "and will miss this",
                    hint=f"raise repro.errors.{replacement} instead",
                )


class PositionalEstimateFields(Rule):
    """NM203: ``Estimate(...)`` built with positional numeric fields.

    ``Estimate("x", a, b, c)`` hides which value is area and which is
    power; the unit-suffixed keywords (``area_mm2=``, ``dynamic_w=``, ...)
    are the convention — and they are what lets NM102 check the units.
    """

    id = "NM203"
    severity = SEVERITY_WARNING
    title = "Estimate constructed with positional (unit-less) fields"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "Estimate":
                continue
            if len(node.args) > 1:
                yield self.finding(
                    sf, node,
                    f"Estimate(...) built with {len(node.args)} positional "
                    "arguments; the numeric fields lose their unit-"
                    "suffixed names",
                    hint="pass area_mm2=/dynamic_w=/leakage_w=/"
                    "cycle_time_ns= as keywords (name may stay "
                    "positional)",
                )


#: numpy-array method/attribute accesses that mark an iterable as a
#: per-element walk over array data.
_ELEMENTWISE_ATTRS = {"tolist", "flat"}


def _is_elementwise_iterable(node: ast.expr) -> bool:
    """Does this ``for``-loop iterable walk an array element by element?"""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "enumerate":
                return True
            if func.id == "range":
                # range(len(...)) — the classic index loop.
                return any(
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "len"
                    for arg in node.args
                )
            if func.id == "nditer":
                return True
        if isinstance(func, ast.Attribute):
            if func.attr in _ELEMENTWISE_ATTRS or func.attr == "nditer":
                return True
    if isinstance(node, ast.Attribute) and node.attr in _ELEMENTWISE_ATTRS:
        return True
    return False


class ElementwiseBatchLoop(Rule):
    """NM204: per-element Python loop inside the vectorized batch backend.

    ``repro.batch`` exists to evaluate whole design-point grids in array
    ops; a ``for i in range(len(points))`` / ``enumerate`` / ``.tolist()``
    / ``.flat`` / ``nditer`` walk re-introduces the per-point Python
    overhead the backend was built to remove.  ``zip`` over already-
    materialized sequences is fine and is not flagged.
    """

    id = "NM204"
    severity = SEVERITY_WARNING
    title = "per-element Python loop in the vectorized batch backend"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_batch_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if _is_elementwise_iterable(iterable):
                    yield self.finding(
                        sf, iterable,
                        "per-element Python loop over array data in the "
                        "batch backend; this forfeits the vectorized "
                        "evaluation the module exists for",
                        hint="restructure as whole-array NumPy ops, or "
                        "zip() already-materialized sequences",
                    )


#: Exception names whose blanket-catch-and-drop hides real failures.
_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}


def _exception_names(node: "ast.expr | None") -> set:
    """The exception class names an ``except`` clause catches."""
    if node is None:
        return {"<bare>"}
    targets = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for target in targets:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _body_is_only_pass(body: list) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ) and statement.value.value is Ellipsis:
            continue
        return False
    return True


def _contains_raise(body: list) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
    return False


def _single_constant_return(body: list) -> bool:
    """Is the handler body exactly ``return <literal>``?

    ``except Exception: return False`` converts *every* failure — a
    broken build, a typo'd import — into the same default answer the
    caller reads as an ordinary negative result.
    """
    if len(body) != 1:
        return False
    statement = body[0]
    return isinstance(statement, ast.Return) and isinstance(
        statement.value, ast.Constant
    )


class SwallowedException(Rule):
    """NM205: blanket ``except: pass`` / swallowed ``CancelledError``.

    In the fault-tolerance layers (the serve daemon, the sweep engine,
    and the batch backend's fallback classification) a broad catch that
    drops the exception on the floor hides exactly the failures the
    machinery exists to surface — and a handler that absorbs
    ``asyncio.CancelledError`` without re-raising breaks cancellation
    (drain, deadlines) for the whole task tree.  A broad catch whose
    whole body is ``return <literal>`` is the same bug wearing a return
    statement: the caller cannot tell "legitimately no" from "something
    broke".  Narrow, typed catches with a real body are the sanctioned
    form.
    """

    id = "NM205"
    severity = SEVERITY_ERROR
    title = "swallowed exception in a fault-tolerance layer"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_robustness_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _exception_names(node.type)
            broad = bool(
                names & _BROAD_EXCEPTION_NAMES or "<bare>" in names
            )
            caught = (
                "bare except:" if "<bare>" in names
                else f"except {sorted(names & _BROAD_EXCEPTION_NAMES)[0]}:"
                if names & _BROAD_EXCEPTION_NAMES else ""
            )
            if broad and _body_is_only_pass(node.body):
                yield self.finding(
                    sf, node,
                    f"{caught} with a pass-only body silently swallows "
                    "every failure in a fault-tolerance layer",
                    hint="catch the narrow exception types you expect, "
                    "or handle/log/re-raise instead of pass",
                )
            elif broad and _single_constant_return(node.body):
                yield self.finding(
                    sf, node,
                    f"{caught} returning a bare literal collapses every "
                    "failure (build errors included) into one default "
                    "answer; callers cannot distinguish \"no\" from "
                    "\"broken\"",
                    hint="catch narrow types, or capture the exception "
                    "and surface it alongside the negative result",
                )
            if "CancelledError" in names and not _contains_raise(node.body):
                yield self.finding(
                    sf, node,
                    "asyncio.CancelledError is caught without being "
                    "re-raised; cancellation (drain, deadlines) stops "
                    "propagating here",
                    hint="re-raise after cleanup: `except "
                    "asyncio.CancelledError: ...; raise`",
                )


MODEL_RULES = (
    UncachedEstimate(),
    BareBuiltinException(),
    PositionalEstimateFields(),
    ElementwiseBatchLoop(),
    SwallowedException(),
)
