"""NM2xx: model-convention rules.

These encode the hard conventions from PRs 1-3: every component
``estimate()`` goes through :func:`repro.arch.component.cached_estimate`
(the cache *and* integrity boundary), model layers raise typed
:mod:`repro.errors` exceptions, and :class:`~repro.arch.component.Estimate`
nodes are built with explicit unit-suffixed keywords.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import (
    Finding,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SourceFile,
)


def _decorator_names(node: ast.FunctionDef) -> set:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


class UncachedEstimate(Rule):
    """NM201: a component ``estimate(self, ctx)`` without ``cached_estimate``.

    An undecorated override silently skips the memoization cache *and* the
    integrity screen/fault-injection boundary that ride on it.
    """

    id = "NM201"
    severity = SEVERITY_ERROR
    title = "component estimate() not decorated with cached_estimate"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                if item.name != "estimate":
                    continue
                args = [arg.arg for arg in item.args.args]
                if len(args) != 2 or args[0] != "self":
                    continue  # not the (self, ctx) component protocol
                if "cached_estimate" not in _decorator_names(item):
                    yield self.finding(
                        sf, item,
                        f"{node.name}.estimate() is not decorated with "
                        "@cached_estimate, bypassing the estimate cache "
                        "and the integrity screen",
                        hint="from repro.arch.component import "
                        "cached_estimate and decorate the method",
                    )


#: Builtin exception types model layers must not raise directly.
_BARE_EXCEPTIONS = {
    "ValueError": "ConfigurationError",
    "RuntimeError": "NeuroMeterError",
}


class BareBuiltinException(Rule):
    """NM202: ``raise ValueError``/``RuntimeError`` in a model layer."""

    id = "NM202"
    severity = SEVERITY_ERROR
    title = "bare builtin exception raised in a model layer"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            replacement = _BARE_EXCEPTIONS.get(name)
            if replacement is not None:
                yield self.finding(
                    sf, node,
                    f"model layer raises bare {name}; callers catch "
                    "repro.errors.NeuroMeterError at the API boundary "
                    "and will miss this",
                    hint=f"raise repro.errors.{replacement} instead",
                )


class PositionalEstimateFields(Rule):
    """NM203: ``Estimate(...)`` built with positional numeric fields.

    ``Estimate("x", a, b, c)`` hides which value is area and which is
    power; the unit-suffixed keywords (``area_mm2=``, ``dynamic_w=``, ...)
    are the convention — and they are what lets NM102 check the units.
    """

    id = "NM203"
    severity = SEVERITY_WARNING
    title = "Estimate constructed with positional (unit-less) fields"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "Estimate":
                continue
            if len(node.args) > 1:
                yield self.finding(
                    sf, node,
                    f"Estimate(...) built with {len(node.args)} positional "
                    "arguments; the numeric fields lose their unit-"
                    "suffixed names",
                    hint="pass area_mm2=/dynamic_w=/leakage_w=/"
                    "cycle_time_ns= as keywords (name may stay "
                    "positional)",
                )


MODEL_RULES = (
    UncachedEstimate(),
    BareBuiltinException(),
    PositionalEstimateFields(),
)
