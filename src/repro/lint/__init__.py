"""``neurometer lint``: static dimensional-consistency and convention checks.

A self-contained AST analyzer (stdlib only) for the conventions the
modeling code lives by:

* **NM1xx** — the canonical-unit convention of :mod:`repro.units`
  (suffix-typed names, explicit converters);
* **NM2xx** — model conventions (``cached_estimate`` on every component
  ``estimate()``, typed :mod:`repro.errors` exceptions, keyword-built
  :class:`~repro.arch.component.Estimate` nodes);
* **NM3xx** — determinism and numerics (ordered iteration on cache/journal
  paths, no wall-clock or unseeded entropy in models, no float ``==``);
* **NM4xx** — concurrency and I/O safety (no blocking calls reachable
  from ``async def`` handlers, consistent lock discipline, crash-safe
  durable writes, fork-safe worker spawns), built on the interprocedural
  call-graph/effect core in :mod:`repro.lint.flow`.

Pre-existing violations are ratcheted through the committed
``lint_baseline.json`` (see :mod:`repro.lint.baseline`); anything new
exits 2, and any finding can be exempted inline with
``# lint: allow(NMxxx): <reason>``.  See ``docs/lint.md`` for the rule
catalog and the baseline workflow.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import (
    Finding,
    LintReport,
    Rule,
    SourceFile,
    all_rules,
    check_source,
    rule_catalog,
    run_lint,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "all_rules",
    "check_source",
    "load_baseline",
    "rule_catalog",
    "run_lint",
    "save_baseline",
]
