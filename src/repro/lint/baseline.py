"""The lint baseline: a ratchet for pre-existing findings.

A baseline entry suppresses exactly one finding, identified by a
*fingerprint* that is stable under unrelated edits: the hash covers the
rule ID, the file path, the stripped text of the offending line, the
message, and an occurrence counter for identical lines — **not** the line
number, so inserting code above a baselined finding does not invalidate
it.  Changing the offending line itself (or fixing it) does.

The committed ``lint_baseline.json`` is the project's debt register:
every entry carries an optional one-line ``justification`` explaining why
the finding is suppressed rather than fixed.  ``neurometer lint
--update-baseline`` rewrites the register from the current findings,
keeping the justifications of entries that survive and dropping entries
whose findings are gone (the ratchet only ever tightens by default).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

BASELINE_VERSION = 1

#: Default file name, resolved against the lint root.
DEFAULT_BASELINE_NAME = "lint_baseline.json"


def fingerprint(rule: str, path: str, line_text: str, message: str,
                occurrence: int) -> str:
    """Stable identity for one finding (line-number independent)."""
    blob = "\x1f".join(
        (rule, path, line_text.strip(), message, str(occurrence))
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def fingerprint_findings(findings: Sequence, sources: Dict) -> List[str]:
    """Fingerprints for a sorted finding list.

    ``sources`` maps relpath to the parsed
    :class:`~repro.lint.engine.SourceFile` (or ``None`` for unparsable
    files); line text comes from there.  Findings that share rule, path,
    line text, and message are disambiguated by an occurrence counter in
    source order.
    """
    counters: Dict[tuple, int] = {}
    prints = []
    for finding in findings:
        source = sources.get(finding.path)
        line_text = source.line_text(finding.line) if source else ""
        key = (finding.rule, finding.path, line_text.strip(), finding.message)
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        prints.append(fingerprint(
            finding.rule, finding.path, line_text, finding.message, occurrence
        ))
    return prints


def load_baseline(path) -> Dict[str, dict]:
    """``fingerprint -> entry`` from a baseline file; ``{}`` if absent."""
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"baseline file {path} is unreadable: {error}"
        ) from error
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ConfigurationError(
            f"baseline file {path} has no 'entries' list"
        )
    entries = {}
    for entry in payload["entries"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ConfigurationError(
                f"baseline file {path} has a malformed entry: {entry!r}"
            )
        entries[entry["fingerprint"]] = entry
    return entries


def save_baseline(path, findings: Sequence, fingerprints: Sequence[str],
                  previous: Optional[Dict[str, dict]] = None) -> None:
    """Write the baseline for the current findings.

    Justifications from ``previous`` entries whose fingerprints survive
    are carried over; new entries get an empty justification for a human
    to fill in.
    """
    previous = previous or {}
    entries = []
    for finding, print_ in zip(findings, fingerprints):
        kept = previous.get(print_, {})
        entries.append({
            "fingerprint": print_,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "justification": kept.get("justification", ""),
        })
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
