"""Shared AST-visit/dataflow core for the interprocedural lint passes.

Two layers live here:

* :class:`DataflowWalker` — the generic scoped statement/expression
  traversal (an abstract-value environment threaded through assignments,
  function/class scopes, loops, and comprehensions).  The unit-inference
  pass (:class:`repro.lint.units_pass.UnitInference`) subclasses it and
  overrides the value hooks; future passes get the traversal for free.

* :class:`ModuleFlow` — a lightweight module-level call graph with
  per-function *effect* inference, built once per file and cached on the
  :class:`~repro.lint.engine.SourceFile`.  Effects are conservative
  name-and-shape heuristics, not types:

  - ``blocking`` — the function directly performs work that stalls the
    calling thread: ``time.sleep``, sync file I/O (``open``,
    ``Path.write_text``/``read_text``, ``os.fsync``), ``subprocess``,
    pool/queue/future ``.get``/``.join``/``.wait``/``.result``, or a
    journaled (flushed + fsynced) log write such as
    ``self.request_log.record(...)``.
  - ``fsync`` / ``replace`` — the function calls ``os.fsync`` /
    ``os.replace`` (the atoms of the durable-write pattern).
  - ``touches-loop`` — the function drives an asyncio event loop
    (``get_event_loop``, ``run_until_complete``, ...), which does not
    survive a ``fork()``.
  - ``uses-lock`` — the function enters a ``with <...lock...>:`` block.

  :meth:`ModuleFlow.effects` closes these transitively over the local
  call graph (``self.method(...)``, bare local/nested functions), so a
  blocking call three helpers deep is still attributed to the ``async
  def`` that reaches it.  Function *references* (e.g. the callable
  handed to ``loop.run_in_executor`` or ``asyncio.to_thread``) create no
  call edge — which is exactly why hopping to an executor is the
  sanctioned fix for NM401.

The module also hosts the class-level lock-discipline analysis behind
NM402 (:func:`analyze_lock_discipline`): per class, every mutation of a
``self.<attr>`` is classified as under-lock (lexically inside ``with
self._lock:``, or inside a private helper that is only ever called from
under the lock) or lock-free; an attribute mutated both ways is the
exact shape of the historical ``CircuitBreaker`` half-open bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DataflowWalker",
    "FunctionInfo",
    "LockViolation",
    "ModuleFlow",
    "SpawnSite",
    "WriteOpen",
    "analyze_lock_discipline",
]


# ---------------------------------------------------------------------------
# The generic scoped walker (subclassed by units_pass.UnitInference)
# ---------------------------------------------------------------------------


class DataflowWalker:
    """Scoped AST traversal threading an abstract-value environment.

    ``env`` maps local names to pass-specific abstract values (``None``
    meaning unknown).  Subclasses override the three hooks:

    * :meth:`eval_expr` — infer the abstract value of one expression
      (call ``super().eval_expr`` for the generic child walk);
    * :meth:`bind` — record a binding of ``target`` to a value;
    * :meth:`on_aug_assign` — handle ``+=``-style statements.

    The traversal itself — statement dispatch, function/class/loop/
    comprehension scoping, and the generic fallbacks that keep the
    walker total over any parseable module — lives here and is shared
    by every pass.
    """

    # -- entry point ---------------------------------------------------------

    def walk_module(self, tree: ast.Module) -> None:
        self.exec_body(tree.body, {})

    # -- hooks ---------------------------------------------------------------

    def eval_expr(self, node: ast.expr, env: Dict[str, object]) -> object:
        """Infer ``node``'s abstract value; default walks children."""
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            inner = dict(env)
            for comp in node.generators:
                self.eval_expr(comp.iter, inner)
                for name in self.bound_names(comp.target):
                    inner.pop(name, None)
                for cond in comp.ifs:
                    self.eval_expr(cond, inner)
            if isinstance(node, ast.DictComp):
                self.eval_expr(node.key, inner)
                self.eval_expr(node.value, inner)
            else:
                self.eval_expr(node.elt, inner)
            return None
        if isinstance(node, ast.Lambda):
            self.eval_expr(node.body, dict(env))
            return None
        if isinstance(node, ast.NamedExpr):
            value = self.eval_expr(node.value, env)
            self.bind(node.target, value, node, env)
            return value
        # Generic fallback (Subscript, Tuple, List, Dict, JoinedStr, ...):
        # walk children for events, infer no value.
        for _, item in ast.iter_fields(node):
            if isinstance(item, ast.expr):
                self.eval_expr(item, env)
            elif isinstance(item, list):
                for child in item:
                    if isinstance(child, ast.expr):
                        self.eval_expr(child, env)
                    elif isinstance(child, ast.AST):
                        self.exec_fragment(child, env)
            elif isinstance(item, ast.AST):
                self.exec_fragment(item, env)
        return None

    def bind(self, target: ast.expr, value: object, stmt: ast.AST,
             env: Dict[str, object]) -> None:
        """Record ``target = value``; default tracks plain names only."""
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for name in self.bound_names(target):
                env[name] = None

    def on_aug_assign(self, stmt: ast.AugAssign,
                      env: Dict[str, object]) -> None:
        self.eval_expr(stmt.value, env)

    # -- statements ----------------------------------------------------------

    def exec_body(self, body: Iterable[ast.stmt],
                  env: Dict[str, object]) -> None:
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, object]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, value, stmt, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval_expr(stmt.value, env)
                self.bind(stmt.target, value, stmt, env)
        elif isinstance(stmt, ast.AugAssign):
            self.on_aug_assign(stmt, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in list(stmt.args.defaults) + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                self.eval_expr(default, env)
            for decorator in stmt.decorator_list:
                self.eval_expr(decorator, env)
            self.exec_body(stmt.body, dict(env))
        elif isinstance(stmt, ast.ClassDef):
            for base in stmt.bases:
                self.eval_expr(base, env)
            self.exec_body(stmt.body, dict(env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval_expr(stmt.iter, env)
            for name in self.bound_names(stmt.target):
                env.pop(name, None)
            self.exec_body(stmt.body, env)
            self.exec_body(stmt.orelse, env)
        else:
            # Generic statement: infer every embedded expression, execute
            # every embedded body.  Covers If/While/With/Try/Return/Expr/
            # Raise/Assert/Match/... without enumerating them.
            for _, item in ast.iter_fields(stmt):
                if isinstance(item, ast.expr):
                    self.eval_expr(item, env)
                elif isinstance(item, list):
                    if item and isinstance(item[0], ast.stmt):
                        self.exec_body(item, env)
                    else:
                        for child in item:
                            if isinstance(child, ast.expr):
                                self.eval_expr(child, env)
                            elif isinstance(child, ast.stmt):
                                self.exec_stmt(child, env)
                            elif isinstance(child, ast.AST):
                                self.exec_fragment(child, env)
                elif isinstance(item, ast.AST):
                    self.exec_fragment(item, env)

    def exec_fragment(self, node: ast.AST, env: Dict[str, object]) -> None:
        """Handle odd AST containers (withitem, excepthandler, ...)."""
        for _, item in ast.iter_fields(node):
            if isinstance(item, ast.expr):
                self.eval_expr(item, env)
            elif isinstance(item, list):
                for child in item:
                    if isinstance(child, ast.stmt):
                        self.exec_stmt(child, env)
                    elif isinstance(child, ast.expr):
                        self.eval_expr(child, env)
                    elif isinstance(child, ast.AST):
                        self.exec_fragment(child, env)
            elif isinstance(item, ast.AST):
                self.exec_fragment(item, env)

    # -- helpers -------------------------------------------------------------

    def bound_names(self, target: ast.expr) -> List[str]:
        return [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]


# ---------------------------------------------------------------------------
# Effect vocabulary and call-shape heuristics
# ---------------------------------------------------------------------------

EFFECT_BLOCKING = "blocking"
EFFECT_FSYNC = "fsync"
EFFECT_REPLACE = "replace"
EFFECT_TOUCHES_LOOP = "touches-loop"
EFFECT_USES_LOCK = "uses-lock"

#: ``module.attr`` calls that block the calling thread outright.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep()",
    ("os", "fsync"): "os.fsync()",
    ("os", "fdatasync"): "os.fdatasync()",
    ("os", "system"): "os.system()",
    ("os", "popen"): "os.popen()",
    ("os", "wait"): "os.wait()",
    ("socket", "create_connection"): "socket.create_connection()",
}

#: ``pathlib.Path`` methods that are sync file I/O whoever the receiver is.
_PATH_IO_METHODS = {
    "write_text", "write_bytes", "read_text", "read_bytes",
}

#: ``.get``/``.join``/``.wait``/``.result`` block when the receiver looks
#: like a pool, queue, process, thread, or future.
_SYNC_WAIT_METHODS = frozenset({"get", "join", "wait", "result"})
_SYNC_WAIT_RECEIVERS = frozenset({
    "pool", "queue", "proc", "process", "thread", "future", "worker",
})

#: A ``.record``/``.write``/``.flush`` on a journal-shaped receiver is a
#: durable (flushed + fsynced) write: blocking even though the callee
#: lives in another module the local call graph cannot see.
_DURABLE_LOG_METHODS = frozenset({"record", "write", "flush"})
_DURABLE_LOG_RECEIVERS = frozenset({"log", "journal", "lease", "manifest"})

#: asyncio APIs that capture or drive an event loop (fork-hostile).
_LOOP_API_NAMES = frozenset({
    "get_event_loop", "get_running_loop", "new_event_loop",
    "run_until_complete", "run_coroutine_threadsafe",
})

#: Name fragments marking a with-item as a lock.
_LOCK_TOKENS = ("lock", "mutex")

#: Identifier tokens that mark a fork-spawn argument as a concurrency
#: primitive that must not cross ``fork()``.
_FORK_HAZARD_TOKENS = frozenset({
    "lock", "rlock", "mutex", "thread", "loop", "executor",
    "semaphore", "condition", "barrier",
})

#: Methods whose dunder-free receiver they mutate in place (for NM402).
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "pop", "popitem",
    "remove", "discard", "clear", "setdefault",
})

#: Methods where lock-free ``self`` mutation is by construction safe:
#: the object is not shared yet (or is being torn down by its owner).
_LOCK_EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__post_init__", "__del__",
})

#: open() modes that truncate/create (need fsync *and* os.replace) vs
#: append (fsync alone matches the journal pattern).
_TRUNCATE_MODES = ("w", "x", "+")

#: Path/name fragments that mark a file as durable state: the journals,
#: leases, manifests, and checkpoint/log files that crash recovery and
#: the bit-identical merge depend on.
_DURABLE_FILE_TOKENS = (
    "journal", "lease", "manifest", "heartbeat", "checkpoint", "log",
)


def dotted_path(func: ast.expr) -> Tuple[str, ...]:
    """``a.b.c(...)`` -> ``("a", "b", "c")``; best effort, ``()`` if odd."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")  # chained call / subscript receiver
    else:
        return ()
    return tuple(reversed(parts))


def _identifier_tokens(node: ast.AST) -> List[str]:
    """Lower-cased ``_``-split tokens of every identifier in ``node``."""
    tokens: List[str] = []
    for child in ast.walk(node):
        name = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.arg):
            name = child.arg
        if name:
            tokens.extend(part for part in name.lower().split("_") if part)
    return tokens


def _string_fragments(node: ast.AST) -> List[str]:
    return [
        child.value.lower()
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    ]


# ---------------------------------------------------------------------------
# Per-function facts
# ---------------------------------------------------------------------------


@dataclass
class WriteOpen:
    """One file-write site (``open(..., "w")`` / ``Path.write_text``)."""

    node: ast.AST
    kind: str        # "open" | "write_text" | "write_bytes"
    mode: str        # the open() mode string ("" for write_text/bytes)
    durable: bool    # path/name context mentions a durable-file token
    what: str        # human description of the written file


@dataclass
class SpawnSite:
    """One ``Process(target=...)`` fork spawn."""

    node: ast.AST
    target_name: str
    target_qualname: Optional[str]           # resolved local target
    hazardous_args: Tuple[str, ...] = ()     # lock/thread/loop-ish names


@dataclass
class FunctionInfo:
    """One function (or method, or nested def) and its direct facts."""

    qualname: str
    name: str
    node: ast.AST
    is_async: bool
    class_name: Optional[str]
    parent: Optional[str]  # enclosing function qualname, if nested
    direct_effects: set = field(default_factory=set)
    #: direct blocking call sites: ``(call node, description)``.
    blocking_sites: List[Tuple[ast.AST, str]] = field(default_factory=list)
    #: resolved local call edges: ``(call node, callee qualname)``.
    calls: List[Tuple[ast.AST, str]] = field(default_factory=list)
    write_opens: List[WriteOpen] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)


# ---------------------------------------------------------------------------
# NM402 lock-discipline analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LockViolation:
    """One lock-free mutation of an attribute that is elsewhere locked."""

    node: ast.AST
    class_name: str
    attr: str
    lock_name: str
    method: str
    locked_methods: Tuple[str, ...]


def _lock_name_of(node: ast.expr) -> Optional[str]:
    """The lock a with-item enters, if its name says it is one."""
    target = node
    if isinstance(target, ast.Call):  # with self._lock.acquire_timeout(...)
        target = target.func
        if isinstance(target, ast.Attribute):
            target = target.value
    if isinstance(target, ast.Attribute) and any(
        token in target.attr.lower() for token in _LOCK_TOKENS
    ):
        return target.attr
    if isinstance(target, ast.Name) and any(
        token in target.id.lower() for token in _LOCK_TOKENS
    ):
        return target.id
    return None


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """The attribute directly on ``self`` under subscripts/attributes."""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


@dataclass
class _MethodFacts:
    name: str
    #: ``(attr, node, under_lock)`` for every ``self.<attr>`` mutation.
    mutations: List[Tuple[str, ast.AST, bool]] = field(default_factory=list)
    #: ``callee method name -> [under_lock at each call site]``.
    self_calls: Dict[str, List[bool]] = field(default_factory=dict)
    lock_names: List[str] = field(default_factory=list)


def _scan_method(method: ast.AST) -> _MethodFacts:
    facts = _MethodFacts(name=method.name)

    def visit(node: ast.AST, under: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = under
            for item in node.items:
                lock = _lock_name_of(item.context_expr)
                if lock is not None:
                    inner = True
                    facts.lock_names.append(lock)
                visit(item.context_expr, under)
                if item.optional_vars is not None:
                    visit(item.optional_vars, under)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _self_attr_root(target)
                if attr is not None and not any(
                    token in attr.lower() for token in _LOCK_TOKENS
                ):
                    facts.mutations.append((attr, node, under))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if isinstance(func.value, ast.Name) \
                        and func.value.id == "self":
                    facts.self_calls.setdefault(func.attr, []).append(under)
                elif func.attr in _MUTATING_METHODS:
                    attr = _self_attr_root(func.value)
                    if attr is not None:
                        facts.mutations.append((attr, node, under))
        for child in ast.iter_child_nodes(node):
            visit(child, under)

    for stmt in method.body:
        visit(stmt, False)
    return facts


def analyze_lock_discipline(tree: ast.Module) -> List[LockViolation]:
    """Find attributes mutated both under a class lock and lock-free.

    Per class: mutation sites of ``self.<attr>`` are *under-lock* when
    lexically inside ``with self._lock:`` (any with-item whose name
    contains ``lock``/``mutex``), or inside a private helper method whose
    every intra-class call site is under the lock (the sanctioned
    ``_foo_locked`` helper pattern).  ``__init__``-family methods are
    exempt lock-free — the object is not shared yet.  An attribute with
    mutations in both classes of site is reported at each lock-free one.
    """
    violations: List[LockViolation] = []
    for classdef in ast.walk(tree):
        if not isinstance(classdef, ast.ClassDef):
            continue
        methods = [
            item for item in classdef.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scans = [_scan_method(method) for method in methods]
        lock_names = sorted({
            name for scan in scans for name in scan.lock_names
        })
        if not lock_names:
            continue  # no lock discipline to be inconsistent about
        # Private helpers whose every intra-class call site holds the lock.
        call_sites: Dict[str, List[bool]] = {}
        for scan in scans:
            for callee, unders in scan.self_calls.items():
                call_sites.setdefault(callee, []).extend(unders)
        locked_helpers = {
            name for name, unders in call_sites.items()
            if name.startswith("_") and unders and all(unders)
        }
        # attr -> (locked sites, free sites)
        by_attr: Dict[str, Tuple[list, list]] = {}
        for scan in scans:
            helper_locked = scan.name in locked_helpers
            for attr, node, under in scan.mutations:
                locked, free = by_attr.setdefault(attr, ([], []))
                if under or helper_locked:
                    locked.append((scan.name, node))
                elif scan.name not in _LOCK_EXEMPT_METHODS:
                    free.append((scan.name, node))
        for attr, (locked, free) in sorted(by_attr.items()):
            if not locked or not free:
                continue
            locked_methods = tuple(sorted({name for name, _ in locked}))
            for method_name, node in free:
                violations.append(LockViolation(
                    node=node,
                    class_name=classdef.name,
                    attr=attr,
                    lock_name=lock_names[0],
                    method=method_name,
                    locked_methods=locked_methods,
                ))
    return violations


# ---------------------------------------------------------------------------
# The module-level call graph + effect inference
# ---------------------------------------------------------------------------


class _FunctionCollector:
    """Index every def in a module with a dotted qualname."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: enclosing-function qualname (or None) -> {bare name: qualname}
        self.children: Dict[Optional[str], Dict[str, str]] = {}
        #: (class name, method name) -> qualname
        self.methods: Dict[Tuple[str, str], str] = {}

    def collect(self, tree: ast.Module) -> None:
        self._walk(tree.body, class_name=None, parent=None, prefix="")

    def _walk(self, body: Sequence[ast.stmt], class_name: Optional[str],
              parent: Optional[str], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + stmt.name
                if qualname in self.functions:  # redefinition: keep first
                    continue
                info = FunctionInfo(
                    qualname=qualname,
                    name=stmt.name,
                    node=stmt,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_name=class_name,
                    parent=parent,
                )
                self.functions[qualname] = info
                self.children.setdefault(parent, {})[stmt.name] = qualname
                if class_name is not None and parent is None:
                    self.methods.setdefault(
                        (class_name, stmt.name), qualname
                    )
                self._walk(
                    stmt.body, class_name=None, parent=qualname,
                    prefix=qualname + ".",
                )
            elif isinstance(stmt, ast.ClassDef):
                self._walk(
                    stmt.body, class_name=stmt.name, parent=parent,
                    prefix=prefix + stmt.name + ".",
                )
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        self._walk(
                            [child], class_name=class_name, parent=parent,
                            prefix=prefix,
                        )


def _blocking_description(call: ast.Call) -> Optional[str]:
    """Why this call blocks the calling thread, or ``None``."""
    path = dotted_path(call.func)
    if not path:
        return None
    if path == ("open",):
        return "sync file I/O (open())"
    if len(path) >= 2:
        tail = path[-2:]
        if tail in _BLOCKING_MODULE_CALLS:
            return _BLOCKING_MODULE_CALLS[tail]
        if path[0] == "subprocess" or (
            len(path) >= 2 and path[-2] == "subprocess"
        ):
            return f"subprocess.{path[-1]}()"
    method = path[-1]
    if method in _PATH_IO_METHODS:
        return f"sync file I/O (.{method}())"
    if isinstance(call.func, ast.Attribute):
        receiver_tokens = set(_identifier_tokens(call.func.value))
        if method in _SYNC_WAIT_METHODS \
                and receiver_tokens & _SYNC_WAIT_RECEIVERS:
            return f"worker-pool/queue .{method}()"
        if method in _DURABLE_LOG_METHODS \
                and receiver_tokens & _DURABLE_LOG_RECEIVERS:
            return f"journaled (fsynced) .{method}() write"
    return None


def _write_open_of(call: ast.Call) -> Optional[Tuple[str, str, ast.expr]]:
    """``(kind, mode, path expr)`` if this call writes a file."""
    path = dotted_path(call.func)
    if path == ("open",) and call.args:
        mode = ""
        if len(call.args) >= 2:
            mode_node = call.args[1]
            if isinstance(mode_node, ast.Constant) \
                    and isinstance(mode_node.value, str):
                mode = mode_node.value
            else:
                return None  # dynamic mode: assume the caller knows
        for keyword in call.keywords:
            if keyword.arg == "mode":
                if isinstance(keyword.value, ast.Constant) \
                        and isinstance(keyword.value.value, str):
                    mode = keyword.value.value
                else:
                    return None
        if any(flag in mode for flag in ("w", "a", "x", "+")):
            return ("open", mode, call.args[0])
        return None
    if path and path[-1] in ("write_text", "write_bytes") \
            and isinstance(call.func, ast.Attribute):
        return (path[-1], "", call.func.value)
    return None


def _durable_context(info: FunctionInfo, path_expr: ast.expr) -> bool:
    context = [info.name.lower()]
    if info.class_name:
        context.append(info.class_name.lower())
    context.extend(_identifier_tokens(path_expr))
    context.extend(_string_fragments(path_expr))
    blob = " ".join(context)
    return any(token in blob for token in _DURABLE_FILE_TOKENS)


def _spawn_site(call: ast.Call) -> Optional[Tuple[str, List[ast.expr]]]:
    """``(target name, arg exprs)`` if this is ``Process(target=...)``."""
    path = dotted_path(call.func)
    if not path or path[-1] != "Process":
        return None
    target_name = None
    arg_exprs: List[ast.expr] = []
    for keyword in call.keywords:
        if keyword.arg == "target":
            target = keyword.value
            if isinstance(target, ast.Name):
                target_name = target.id
            elif isinstance(target, ast.Attribute):
                target_name = target.attr
        elif keyword.arg in ("args", "kwargs"):
            arg_exprs.append(keyword.value)
    if target_name is None:
        return None
    return target_name, arg_exprs


class _EffectScanner:
    """Extract one function's direct effects, edges, writes, and spawns."""

    def __init__(self, info: FunctionInfo, flow: "ModuleFlow") -> None:
        self.info = info
        self.flow = flow

    def scan(self) -> None:
        for stmt in self.info.node.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        # Nested defs are separate FunctionInfos; lambdas are opaque
        # (their bodies run later, usually on an executor or a worker).
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(
                _lock_name_of(item.context_expr) is not None
                for item in node.items
            ):
                self.info.direct_effects.add(EFFECT_USES_LOCK)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            # An awaited call yields a coroutine/future: by definition
            # it does not block the loop, whatever its name looks like
            # (``await queue.get()`` is the asyncio.Queue protocol).
            self._visit_call(node.value, awaited=True)
            for child in ast.iter_child_nodes(node.value):
                self._visit(child)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_call(self, call: ast.Call, awaited: bool = False) -> None:
        info = self.info
        path = dotted_path(call.func)
        description = None if awaited else _blocking_description(call)
        if description is not None:
            info.direct_effects.add(EFFECT_BLOCKING)
            info.blocking_sites.append((call, description))
        if path[-2:] in (("os", "fsync"), ("os", "fdatasync")):
            info.direct_effects.add(EFFECT_FSYNC)
        if path[-2:] in (("os", "replace"), ("os", "rename")):
            info.direct_effects.add(EFFECT_REPLACE)
        if path and path[-1] in _LOOP_API_NAMES:
            info.direct_effects.add(EFFECT_TOUCHES_LOOP)
        write = _write_open_of(call)
        if write is not None:
            kind, mode, path_expr = write
            info.write_opens.append(WriteOpen(
                node=call,
                kind=kind,
                mode=mode,
                durable=_durable_context(info, path_expr),
                what=ast.unparse(path_expr) if hasattr(ast, "unparse")
                else "<path>",
            ))
        spawn = _spawn_site(call)
        if spawn is not None:
            target_name, arg_exprs = spawn
            hazards = []
            for expr in arg_exprs:
                for child in ast.walk(expr):
                    name = None
                    if isinstance(child, ast.Name):
                        name = child.id
                    elif isinstance(child, ast.Attribute):
                        name = child.attr
                    if name and set(
                        part for part in name.lower().split("_") if part
                    ) & _FORK_HAZARD_TOKENS:
                        hazards.append(name)
            info.spawns.append(SpawnSite(
                node=call,
                target_name=target_name,
                target_qualname=self.flow.resolve(info, target_name),
                hazardous_args=tuple(dict.fromkeys(hazards)),
            ))
        callee = self._resolve_call(call)
        if callee is not None:
            info.calls.append((call, callee))

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self.flow.resolve(self.info, func.id)
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in ("self", "cls"):
            return self.flow.resolve_method(self.info, func.attr)
        return None


class ModuleFlow:
    """The per-module call graph, effect closure, and NM402 lock report."""

    def __init__(self, tree: ast.Module) -> None:
        collector = _FunctionCollector()
        collector.collect(tree)
        self.functions = collector.functions
        self._children = collector.children
        self._methods = collector.methods
        self._effects_memo: Dict[str, frozenset] = {}
        for info in self.functions.values():
            _EffectScanner(info, self).scan()
        self.lock_violations = analyze_lock_discipline(tree)

    # -- name resolution -----------------------------------------------------

    def resolve(self, caller: FunctionInfo, name: str) -> Optional[str]:
        """A bare name: sibling nested def, else module-level function."""
        scope: Optional[str] = caller.qualname
        while True:
            found = self._children.get(scope, {}).get(name)
            if found is not None and found != caller.qualname:
                return found
            if scope is None:
                return None
            scope = self.functions[scope].parent if scope in self.functions \
                else None

    def resolve_method(self, caller: FunctionInfo,
                       name: str) -> Optional[str]:
        """``self.name(...)`` inside a method of the same class."""
        class_name = caller.class_name
        if class_name is None and caller.parent is not None:
            enclosing = self.functions.get(caller.parent)
            class_name = enclosing.class_name if enclosing else None
        if class_name is None:
            return None
        return self._methods.get((class_name, name))

    # -- effect closure ------------------------------------------------------

    def effects(self, qualname: str) -> frozenset:
        """Direct + transitive effects over the local call graph."""
        memo = self._effects_memo
        if qualname in memo:
            return memo[qualname]
        seen: set = set()
        effects: set = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.functions.get(current)
            if info is None:
                continue
            effects |= info.direct_effects
            for _, callee in info.calls:
                stack.append(callee)
        result = frozenset(effects)
        memo[qualname] = result
        return result

    def blocking_chain(self, qualname: str) -> Tuple[List[str], str]:
        """Shortest call chain from ``qualname`` to a direct blocking site.

        Returns ``(chain of function names, blocking description)``;
        the chain starts at ``qualname`` itself.  Falls back to a bare
        chain if the effect came from an unreachable memo state.
        """
        start = self.functions.get(qualname)
        if start is None:
            return ([qualname], "a blocking call")
        queue: List[Tuple[str, List[str]]] = [(qualname, [start.name])]
        seen = {qualname}
        while queue:
            current, names = queue.pop(0)
            info = self.functions.get(current)
            if info is None:
                continue
            if info.blocking_sites:
                return (names, info.blocking_sites[0][1])
            for _, callee in info.calls:
                if callee not in seen:
                    seen.add(callee)
                    callee_info = self.functions.get(callee)
                    callee_name = (
                        callee_info.name if callee_info else callee
                    )
                    queue.append((callee, names + [callee_name]))
        return ([start.name], "a blocking call")
