"""NM1xx: dimensional-consistency rules.

All four rules share one :class:`~repro.lint.units_pass.UnitInference`
pass per file (cached on the :class:`~repro.lint.engine.SourceFile`);
NM101/NM102/NM104 translate its events into findings and NM103 does its
own literal walk.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import (
    Finding,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SourceFile,
)
from repro.lint.units_pass import dimension_of


def _unit_relation(left: str, right: str) -> str:
    if dimension_of(left) == dimension_of(right):
        return (
            f"both are {dimension_of(left)} units at different scales"
        )
    return (
        f"{dimension_of(left) or 'unknown'} vs "
        f"{dimension_of(right) or 'unknown'} dimensions"
    )


class MixedUnitArithmetic(Rule):
    """NM101: ``+``/``-``/comparison across two different inferred units."""

    id = "NM101"
    severity = SEVERITY_ERROR
    title = "mixed-unit addition, subtraction, or comparison"

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for event in sf.unit_events:
            if event.kind == "mixed-arith":
                yield self.finding(
                    sf, event.node,
                    f"mixed units in '{event.detail}': "
                    f"*_{event.left} vs *_{event.right} "
                    f"({_unit_relation(event.left, event.right)})",
                    hint="convert one operand with a repro.units "
                    "converter before combining",
                )
            elif event.kind == "mixed-compare":
                yield self.finding(
                    sf, event.node,
                    f"comparison '{event.detail}' across units: "
                    f"*_{event.left} vs *_{event.right} "
                    f"({_unit_relation(event.left, event.right)})",
                    hint="compare quantities in one canonical unit",
                )


class MismatchedUnitAssignment(Rule):
    """NM102: suffixed target assigned a value of a different inferred unit."""

    id = "NM102"
    severity = SEVERITY_ERROR
    title = "unit-suffixed name bound to a mismatched-unit expression"

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for event in sf.unit_events:
            if event.kind == "assign-mismatch":
                yield self.finding(
                    sf, event.node,
                    f"{event.detail} declares *_{event.left} but the "
                    f"expression carries *_{event.right} "
                    f"({_unit_relation(event.left, event.right)})",
                    hint=f"pass the value through a *_{event.right}-to-"
                    f"*_{event.left} converter (see repro.units) or fix "
                    "the name",
                )


#: Scale-factor magnitudes that almost always encode a unit conversion.
_SCALE_FACTOR_VALUES = frozenset({
    1e-15, 1e-12, 1e-9, 1e-6, 1e-3,
    1e3, 1e6, 1e9, 1e12, 1e15,
    1024, 1024**2, 1024**3,
})

#: value -> the named constant or converter that should replace it.
_SCALE_SUGGESTIONS = {
    1e-3: "KILO (inverse) or a *_to_* converter (ps_to_ns, fj_to_pj, "
    "mw_to_w, nm_to_um)",
    1e3: "KILO",
    1e-6: "a *_to_* converter (um2_to_mm2) or OHM_FF_TO_NS",
    1e6: "MEGA or mm2_to_um2",
    1e-9: "a *_to_* converter (nw_to_w, ns_to_s)",
    1e9: "GIGA or ghz_to_hz",
    1e-12: "pj_to_j",
    1e12: "TERA",
    1024: "KiB",
    1024**2: "MiB",
    1024**3: "GiB",
}


def _is_constant_def(node: ast.stmt) -> bool:
    """Module-level ``_ALL_CAPS = ...`` constant definitions are the
    sanctioned home for a named scale factor."""
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Name) \
                and target.id.lstrip("_").isupper():
            return True
    return False


class RawScaleFactorLiteral(Rule):
    """NM103: a bare scale-factor literal used as a multiplier/divisor."""

    id = "NM103"
    severity = SEVERITY_WARNING
    title = "raw scale-factor literal where a units constant/converter exists"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_scale_literal_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        constant_def_lines = {
            stmt.lineno for stmt in sf.tree.body if _is_constant_def(stmt)
        }
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.BinOp) \
                    or not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            operands = [node.right] if isinstance(node.op, ast.Div) \
                else [node.left, node.right]
            for operand in operands:
                if not isinstance(operand, ast.Constant):
                    continue
                value = operand.value
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                if float(value) not in _SCALE_FACTOR_VALUES:
                    continue
                if operand.lineno in constant_def_lines:
                    continue  # defining a named constant is the fix
                suggestion = _SCALE_SUGGESTIONS.get(float(value), "")
                yield self.finding(
                    sf, operand,
                    f"raw scale factor {value!r} in unit arithmetic",
                    hint=f"use {suggestion} from repro.units"
                    if suggestion else "name the factor in repro.units",
                )


class ConverterInputMismatch(Rule):
    """NM104: an ``x_to_y`` converter applied to a non-``x`` value."""

    id = "NM104"
    severity = SEVERITY_ERROR
    title = "units converter applied to a value of the wrong input unit"

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for event in sf.unit_events:
            if event.kind == "converter-mismatch":
                yield self.finding(
                    sf, event.node,
                    f"{event.detail}() expects *_{event.left} but the "
                    f"argument carries *_{event.right}",
                    hint="pick the converter matching the argument's "
                    "unit, or fix the argument's name",
                )


UNIT_RULES = (
    MixedUnitArithmetic(),
    MismatchedUnitAssignment(),
    RawScaleFactorLiteral(),
    ConverterInputMismatch(),
)
