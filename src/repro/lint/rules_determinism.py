"""NM3xx: determinism and numerics rules.

The estimate cache, the sweep journal, and the validation snapshots all
depend on bit-identical reruns; these rules catch the classic ways a
Python codebase silently loses that property.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.engine import (
    Finding,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SourceFile,
)


def _call_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if _call_name(node) in {"set", "frozenset"}:
        return True
    if _call_name(node) == "keys":
        return True  # dict.keys(): ordered, but order is incidental state
    return False


class UnorderedIteration(Rule):
    """NM301: iterating a set (or ``.keys()``) where order feeds cache keys
    or journal rows.

    ``set`` iteration order varies across processes (hash randomization),
    so anything derived from it — a cache key, a journal line, a resident
    ordering — is unreproducible.  ``sorted(...)`` is the fix and is not
    flagged.
    """

    id = "NM301"
    severity = SEVERITY_ERROR
    title = "unordered set/keys iteration in a determinism-critical module"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_determinism_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        sorted_args = set()
        for node in ast.walk(sf.tree):
            if _call_name(node) in {"sorted", "len", "any", "all"}:
                for arg in node.args:
                    sorted_args.add(id(arg))
        for node in ast.walk(sf.tree):
            iter_expr = None
            context = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr, context = node.iter, "for loop"
            elif isinstance(node, ast.comprehension):
                iter_expr, context = node.iter, "comprehension"
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in {"list", "tuple", "join", "enumerate"} \
                        and node.args:
                    iter_expr, context = node.args[0], f"{name}()"
            if iter_expr is None or id(iter_expr) in sorted_args:
                continue
            if _is_set_expr(iter_expr):
                yield self.finding(
                    sf, iter_expr,
                    f"unordered iteration over a set/keys view in a "
                    f"{context}; iteration order here can leak into "
                    "cache keys or journal rows",
                    hint="wrap the iterable in sorted(...)",
                )


#: module attribute calls that inject wall-clock or entropy into a model.
_NONDETERMINISTIC_CALLS = {
    ("random", "random"), ("random", "randint"), ("random", "randrange"),
    ("random", "uniform"), ("random", "choice"), ("random", "choices"),
    ("random", "shuffle"), ("random", "sample"), ("random", "gauss"),
    ("random", "seed"),
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("np", "rand"), ("np", "randn"), ("numpy", "rand"), ("numpy", "randn"),
}


class NondeterministicSource(Rule):
    """NM302: wall-clock or unseeded randomness inside model code.

    Seeded generators (``random.Random(seed)``,
    ``np.random.default_rng(0)``) and timers used only for measurement
    (``time.perf_counter``, ``time.monotonic``) stay legal.

    This rule honors the inline allow pragma: a line carrying
    ``# lint: allow(NM302): <reason>`` is exempt.  This exists for the
    rare *legitimate* wall-clock reads in determinism scope — shard
    lease heartbeats must be comparable across machines, which no
    monotonic clock can do — and the mandatory reason keeps each
    exemption justified at the call site instead of growing the
    baseline file.
    """

    id = "NM302"
    severity = SEVERITY_ERROR
    title = "wall-clock or unseeded randomness in model code"

    def applies(self, sf: SourceFile) -> bool:
        return sf.is_model_layer or sf.in_determinism_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name):
                pair = (func.value.id, func.attr)
                if sf.has_allow_pragma(self.id, node.lineno):
                    continue
                if pair in _NONDETERMINISTIC_CALLS:
                    yield self.finding(
                        sf, node,
                        f"{pair[0]}.{pair[1]}() makes the model "
                        "nondeterministic: reruns, cache keys, and "
                        "journal replays will disagree",
                        hint="thread a seeded random.Random/"
                        "np.random.default_rng(seed) or a timestamp "
                        "argument through instead",
                    )
                elif func.attr == "default_rng" and not node.args \
                        and not node.keywords:
                    yield self.finding(
                        sf, node,
                        "default_rng() without a seed draws OS entropy",
                        hint="pass an explicit seed",
                    )


class FloatEquality(Rule):
    """NM303: ``==``/``!=`` against a float literal outside tests.

    Analytical results are floats; exact equality against a literal is
    either a latent bug (rounding) or an exact sentinel that deserves a
    baseline entry documenting why it is safe.
    """

    id = "NM303"
    severity = SEVERITY_WARNING
    title = "float equality comparison outside tests"

    def applies(self, sf: SourceFile) -> bool:
        return not sf.is_test

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparators = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                sides = (comparators[index], comparators[index + 1])
                if any(
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    for side in sides
                ):
                    yield self.finding(
                        sf, node,
                        "exact float equality against a literal",
                        hint="use a tolerance (math.isclose / <=) or "
                        "baseline it if the value is an exact sentinel",
                    )
                    break


DETERMINISM_RULES = (
    UnorderedIteration(),
    NondeterministicSource(),
    FloatEquality(),
)
