"""NM4xx: concurrency and durable-I/O safety rules.

The daemon (:mod:`repro.serve`) runs request handlers on one asyncio
event loop, journals every request with an fsynced append, shares a
warm cache across threads, and forks worker pools (:mod:`repro.dse`)
that reclaim crashed shards off lease files.  Each of those mechanisms
has one classic way to rot:

* a blocking call sneaks onto the event loop and stalls every in-flight
  request (NM401);
* an attribute guarded by ``with self._lock:`` in one method gets
  mutated lock-free in another — the exact shape of the historical
  ``CircuitBreaker`` half-open race (NM402);
* a journal/lease/manifest file is written without the
  ``write-tmp → flush → fsync → os.replace`` discipline that makes a
  crash recoverable (NM403);
* a lock, thread, or event loop is captured into a forked child, where
  it is either permanently held or silently broken (NM404).

All four rules run on the shared interprocedural facts built by
:class:`repro.lint.flow.ModuleFlow` (cached per file as
``SourceFile.flow``): a module-level call graph with per-function
*effects*, so a blocking call is caught whether it sits in the ``async
def`` itself or three sync helpers down the call chain.  Handing the
callable to an executor (``loop.run_in_executor(...)``,
``asyncio.to_thread(...)``) passes a function *reference*, which creates
no call edge — the sanctioned fix is invisible to the rule by
construction, not by special case.

The rules are scoped to the durable/concurrent layers
(``serve``/``dse``/``cache``); model-layer math and tests are exempt.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import (
    Finding,
    Rule,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    SourceFile,
)
from repro.lint.flow import EFFECT_BLOCKING, EFFECT_FSYNC, EFFECT_REPLACE, \
    EFFECT_TOUCHES_LOOP


class BlockingInAsync(Rule):
    """NM401: a blocking call reachable from an ``async def``.

    Flags direct blocking work (``time.sleep``, sync file I/O,
    ``subprocess``, pool/queue ``.get``/``.join``, journaled log writes)
    inside an ``async def``, and calls from an ``async def`` into a
    *sync* local function whose transitive effects include blocking —
    the call graph carries the effect up, so hiding the ``sleep`` in a
    helper does not hide the stall.  Async callees are not re-flagged at
    the call site; they get their own finding at their own definition.
    """

    id = "NM401"
    severity = SEVERITY_ERROR
    title = "blocking call reachable from an async function"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_durable_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        flow = sf.flow
        for info in flow.functions.values():
            if not info.is_async:
                continue
            for node, description in info.blocking_sites:
                yield self.finding(
                    sf, node,
                    f"async def {info.name}() performs {description} "
                    "directly on the event loop; every other in-flight "
                    "request stalls behind it",
                    hint="hop to the executor: await "
                    "loop.run_in_executor(None, fn, ...) or "
                    "asyncio.to_thread(fn, ...)",
                )
            for node, callee in info.calls:
                target = flow.functions.get(callee)
                if target is None or target.is_async:
                    continue
                if EFFECT_BLOCKING not in flow.effects(callee):
                    continue
                chain, description = flow.blocking_chain(callee)
                via = " -> ".join(f"{name}()" for name in chain)
                yield self.finding(
                    sf, node,
                    f"async def {info.name}() reaches {description} "
                    f"through {via}; the blocking work runs on the "
                    "event loop",
                    hint="await the chain through the executor instead "
                    "of calling it inline",
                )


class InconsistentLockDiscipline(Rule):
    """NM402: an attribute mutated both under a class lock and lock-free.

    Within one class, if any method mutates ``self.<attr>`` inside
    ``with self._lock:`` and another mutates the same attribute without
    the lock, the lock is not actually protecting the invariant — one
    path can observe (or destroy) a half-updated state.  ``__init__``
    and friends are exempt (the object is not shared yet), and a private
    helper whose every intra-class call site holds the lock counts as
    under-lock (the ``_foo_locked`` pattern).
    """

    id = "NM402"
    severity = SEVERITY_ERROR
    title = "inconsistent lock discipline on a shared attribute"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_durable_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        for violation in sf.flow.lock_violations:
            locked = ", ".join(
                f"{name}()" for name in violation.locked_methods
            )
            yield self.finding(
                sf, violation.node,
                f"{violation.class_name}.{violation.method}() mutates "
                f"self.{violation.attr} without holding "
                f"self.{violation.lock_name}, but {locked} mutate(s) it "
                "under the lock; concurrent callers can observe a "
                "half-updated state",
                hint=f"wrap the mutation in `with self."
                f"{violation.lock_name}:` (or move it into a helper "
                "called only under the lock)",
            )


class NonAtomicDurableWrite(Rule):
    """NM403: a journal/lease/manifest written without crash-safe I/O.

    Durable files — anything whose name or context says journal, lease,
    manifest, heartbeat, checkpoint, or log — are what ``--resume`` and
    shard reclaim trust after a crash.  A truncating write must follow
    the ``write-tmp → flush → fsync → os.replace`` pattern (a crash
    mid-write otherwise leaves a torn file at the real path); an append
    must at least reach ``os.fsync`` (the journal pattern).  The fsync/
    replace may live in a helper — the check is against the writing
    function's *transitive* effects.  ``Path.write_text`` has no handle
    to fsync, so it can never be made atomic and is always flagged.
    """

    id = "NM403"
    severity = SEVERITY_ERROR
    title = "non-atomic write to a durable file"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_durable_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        flow = sf.flow
        for info in flow.functions.values():
            for write in info.write_opens:
                if not write.durable:
                    continue
                effects = flow.effects(info.qualname)
                if write.kind in ("write_text", "write_bytes"):
                    yield self.finding(
                        sf, write.node,
                        f"{info.name}() writes durable file "
                        f"{write.what} via .{write.kind}(), which "
                        "cannot flush+fsync; a crash mid-write leaves "
                        "a torn file",
                        hint="open a temp file, write, flush, "
                        "os.fsync, then os.replace onto the real path",
                    )
                elif "a" in write.mode:
                    if EFFECT_FSYNC not in effects:
                        yield self.finding(
                            sf, write.node,
                            f"{info.name}() appends to durable file "
                            f"{write.what} without os.fsync; the entry "
                            "can vanish in a crash after the caller "
                            "was told it was recorded",
                            hint="flush then os.fsync(fh.fileno()) "
                            "before reporting success",
                        )
                else:
                    if EFFECT_FSYNC not in effects \
                            or EFFECT_REPLACE not in effects:
                        yield self.finding(
                            sf, write.node,
                            f"{info.name}() rewrites durable file "
                            f"{write.what} in place (mode "
                            f"{write.mode!r}) without the "
                            "flush+fsync+os.replace pattern; a crash "
                            "mid-write corrupts it",
                            hint="write to a sibling temp file, flush, "
                            "os.fsync, then os.replace onto the path",
                        )


class ForkUnsafeCapture(Rule):
    """NM404: a lock/thread/event-loop captured into a forked child.

    ``fork()`` clones a held lock as held-forever and an event loop as
    unusable.  Flags ``Process(target=...)`` spawns that either pass a
    lock/thread/loop-shaped object through ``args=``/``kwargs=``, or
    whose (locally resolvable) target function transitively drives an
    event loop.
    """

    id = "NM404"
    severity = SEVERITY_WARNING
    title = "lock/thread/event-loop captured into a forked worker"

    def applies(self, sf: SourceFile) -> bool:
        return sf.in_durable_scope

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        flow = sf.flow
        for info in flow.functions.values():
            for spawn in info.spawns:
                hazards = list(spawn.hazardous_args)
                if spawn.target_qualname is not None and \
                        EFFECT_TOUCHES_LOOP in flow.effects(
                            spawn.target_qualname):
                    hazards.append(
                        f"{spawn.target_name}() drives an event loop"
                    )
                if not hazards:
                    continue
                yield self.finding(
                    sf, spawn.node,
                    f"{info.name}() forks Process(target="
                    f"{spawn.target_name}) capturing "
                    f"{', '.join(hazards)}; locks fork as held-forever "
                    "and event loops do not survive fork()",
                    hint="pass plain data (pipes/queues) to the child "
                    "and rebuild locks/loops inside it",
                )


CONCURRENCY_RULES = (
    BlockingInAsync(),
    InconsistentLockDiscipline(),
    NonAtomicDurableWrite(),
    ForkUnsafeCapture(),
)
