"""The lint engine: file discovery, rule dispatch, and the findings pipeline.

``run_lint`` walks the requested paths, parses every Python file once,
hands the parsed :class:`SourceFile` to each registered rule, and folds the
findings through the committed baseline (see :mod:`repro.lint.baseline`):
pre-existing violations are *ratcheted* — suppressed but counted — while
anything new fails the run.

Rule IDs are grouped by family:

=========  ==================================================
``NM000``  file does not parse (internal)
``NM1xx``  unit consistency (:mod:`repro.lint.rules_units`)
``NM2xx``  model conventions (:mod:`repro.lint.rules_model`)
``NM3xx``  determinism / numerics
           (:mod:`repro.lint.rules_determinism`)
``NM4xx``  concurrency & I/O safety
           (:mod:`repro.lint.rules_concurrency`)
=========  ==================================================

Any finding can be exempted inline with ``# lint: allow(NMxxx): <reason>``
on the flagged line; the reason is mandatory and the exemption is
enforced centrally in :func:`_check_file`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Inline exemption pragma: ``# lint: allow(NM302): why this is safe``.
#: The trailing reason is required — see SourceFile.has_allow_pragma.
_ALLOW_PRAGMA = re.compile(
    r"#\s*lint:\s*allow\((NM\d{3})\)\s*:\s*\S"
)

#: Directory names never descended into.
SKIPPED_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks",
    "node_modules", ".venv", "venv",
})

#: Directory names whose files are "model layers": the analytical models
#: whose conventions (canonical units, typed errors, cached estimates) the
#: NM2xx rules enforce.
MODEL_LAYER_DIRS = frozenset({
    "arch", "circuit", "tech", "perf", "power", "timing", "sparse",
    "workloads",
})

#: Model-layer subset where raw scale-factor literals (NM103) are flagged:
#: the layers that do unit arithmetic on physical quantities.
SCALE_LITERAL_DIRS = frozenset({"arch", "circuit", "tech"})

#: Directories where iteration order feeds cache keys or journal rows, so
#: unordered iteration (NM301) is a reproducibility hazard.
DETERMINISM_DIRS = frozenset({"cache", "dse", "integrity"})

#: Directories holding the vectorized batch backend, where per-element
#: Python loops over design-point arrays (NM204) defeat the whole point.
BATCH_DIRS = frozenset({"batch"})

#: Fault-tolerance layers (the daemon, the sweep engine, and the batch
#: backend's classification/fallback paths), where a silently swallowed
#: exception (NM205) hides exactly the failures the machinery exists to
#: surface.
ROBUSTNESS_DIRS = frozenset({"serve", "dse", "batch"})

#: Layers that own durable on-disk state (request journals, shard
#: leases/manifests, the on-disk cache) and the concurrency machinery
#: around it — the NM4xx rules audit these.
DURABLE_DIRS = frozenset({"serve", "dse", "cache"})

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # posix-style path relative to the lint root
    line: int
    col: int
    message: str
    hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        text = f"{self.location}: {self.rule} {self.severity}: {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


class SourceFile:
    """One parsed Python file plus the path classification rules key on."""

    def __init__(self, relpath: str, text: str, tree: ast.Module):
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.parts = tuple(Path(relpath).parts)
        self._unit_events = None
        self._flow = None

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def has_allow_pragma(self, rule_id: str, line: int) -> bool:
        """Is ``line`` exempted from ``rule_id`` by an inline pragma?

        The pragma form is ``# lint: allow(NMxxx): <reason>`` on the
        flagged line itself.  The reason is *mandatory* — a bare
        ``allow(NMxxx)`` exempts nothing, so every exemption carries
        its justification next to the code it excuses (unlike the
        baseline file, which records findings without saying why they
        are acceptable).  The engine honors the pragma for every rule
        (see :func:`_check_file`); the pragma must name the exact rule
        it exempts.
        """
        match = _ALLOW_PRAGMA.search(self.line_text(line))
        return bool(match and match.group(1) == rule_id)

    # -- classification ------------------------------------------------------

    @property
    def is_test(self) -> bool:
        name = self.parts[-1] if self.parts else ""
        return (
            "tests" in self.parts
            or name.startswith("test_")
            or name == "conftest.py"
        )

    def in_dirs(self, names: frozenset) -> bool:
        return any(part in names for part in self.parts[:-1])

    @property
    def is_model_layer(self) -> bool:
        if self.is_test:
            return False
        if self.parts and self.parts[-1] == "units.py":
            return True
        return self.in_dirs(MODEL_LAYER_DIRS)

    @property
    def in_scale_literal_scope(self) -> bool:
        return not self.is_test and self.in_dirs(SCALE_LITERAL_DIRS)

    @property
    def in_determinism_scope(self) -> bool:
        return not self.is_test and self.in_dirs(DETERMINISM_DIRS)

    @property
    def in_batch_scope(self) -> bool:
        return not self.is_test and self.in_dirs(BATCH_DIRS)

    @property
    def in_robustness_scope(self) -> bool:
        return not self.is_test and self.in_dirs(ROBUSTNESS_DIRS)

    @property
    def in_durable_scope(self) -> bool:
        return not self.is_test and self.in_dirs(DURABLE_DIRS)

    # -- shared passes -------------------------------------------------------

    @property
    def unit_events(self):
        """Unit-inference events, computed once and shared by the NM1xx rules."""
        if self._unit_events is None:
            from repro.lint.units_pass import UnitInference

            self._unit_events = UnitInference().run(self.tree)
        return self._unit_events

    @property
    def flow(self):
        """The module call graph + effects, shared by the NM4xx rules."""
        if self._flow is None:
            from repro.lint.flow import ModuleFlow

            self._flow = ModuleFlow(self.tree)
        return self._flow


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`severity`, and :attr:`title`, and
    implement :meth:`check`; :meth:`applies` narrows the rule to the file
    classes it is meant for.
    """

    id: str = "NM?"
    severity: str = SEVERITY_WARNING
    title: str = ""

    def applies(self, sf: SourceFile) -> bool:
        return True

    def check(self, sf: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, node: ast.AST, message: str,
                hint: str = "") -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=sf.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=hint,
        )


def all_rules() -> List[Rule]:
    """Every registered rule, NM1xx through NM4xx, in catalog order."""
    from repro.lint.rules_concurrency import CONCURRENCY_RULES
    from repro.lint.rules_determinism import DETERMINISM_RULES
    from repro.lint.rules_model import MODEL_RULES
    from repro.lint.rules_units import UNIT_RULES

    return [*UNIT_RULES, *MODEL_RULES, *DETERMINISM_RULES,
            *CONCURRENCY_RULES]


def rule_catalog() -> dict:
    """``rule id -> (severity, title)`` for docs and ``--rule`` validation."""
    return {rule.id: (rule.severity, rule.title) for rule in all_rules()}


@dataclass
class LintReport:
    """The outcome of one lint run, after baseline folding."""

    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale: List[dict] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 2 if self.new else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.new]
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{len(self.new)} new finding(s), "
            f"{len(self.suppressed)} baselined"
        )
        if self.stale:
            summary += f", {len(self.stale)} stale baseline entr(y/ies)"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "new": [finding.to_dict() for finding in self.new],
                "suppressed": [
                    finding.to_dict() for finding in self.suppressed
                ],
                "stale_baseline": self.stale,
                "exit_code": self.exit_code,
            },
            indent=2,
        )

    def render_sarif(self) -> str:
        """SARIF 2.1.0 — what CI uploads so code hosts annotate PRs.

        New findings are plain results; baselined ones are included but
        marked ``suppressed`` (kind ``external``: the suppression lives
        in ``lint_baseline.json``, not the source), so viewers show the
        ratchet state honestly without failing the run twice.
        """
        catalog = rule_catalog()
        rule_ids = sorted(catalog)
        rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
        # NM000 (parse failure) is synthesized by the engine, not a
        # registered rule; give it an entry so its results resolve.
        if any(f.rule == "NM000" for f in self.new + self.suppressed):
            rule_index.setdefault("NM000", len(rule_ids))
            if "NM000" not in catalog:
                catalog["NM000"] = (SEVERITY_ERROR, "file does not parse")
                rule_ids = rule_ids + ["NM000"]

        def result(finding: Finding, suppressed: bool) -> dict:
            entry = {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error" if finding.severity == SEVERITY_ERROR
                else "warning",
                "message": {
                    "text": finding.message + (
                        f"  [{finding.hint}]" if finding.hint else ""
                    )
                },
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "ROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }],
            }
            if suppressed:
                entry["suppressions"] = [{"kind": "external"}]
            return entry

        sarif = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "neurometer-lint",
                        "informationUri": "docs/lint.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": catalog[rule_id][1]
                                },
                                "defaultConfiguration": {
                                    "level": "error"
                                    if catalog[rule_id][0] == SEVERITY_ERROR
                                    else "warning"
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": (
                    [result(f, suppressed=False) for f in self.new]
                    + [result(f, suppressed=True) for f in self.suppressed]
                ),
            }],
        }
        return json.dumps(sarif, indent=2)


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        if not any(part in SKIPPED_DIRS for part in candidate.parts):
            yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        import os

        rel = Path(os.path.relpath(path.resolve(), root.resolve()))
    return rel.as_posix()


def parse_source(relpath: str, text: str) -> "SourceFile | Finding":
    """Parse one file; a syntax error becomes an NM000 finding."""
    try:
        tree = ast.parse(text)
    except (SyntaxError, ValueError) as error:
        return Finding(
            rule="NM000",
            severity=SEVERITY_ERROR,
            path=relpath,
            line=getattr(error, "lineno", 1) or 1,
            col=(getattr(error, "offset", 1) or 1),
            message=f"file does not parse: {getattr(error, 'msg', error)}",
        )
    return SourceFile(relpath, text, tree)


def check_source(text: str, relpath: str = "<memory>.py",
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one in-memory source blob (fixture tests, property tests)."""
    parsed = parse_source(relpath, text)
    if isinstance(parsed, Finding):
        return [parsed]
    return _check_file(parsed, list(rules) if rules is not None else all_rules())


def _check_file(sf: SourceFile, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies(sf):
            for finding in rule.check(sf):
                # Central pragma enforcement: a justified inline
                # `# lint: allow(NMxxx): reason` on the flagged line
                # exempts that finding for every rule family.
                if sf.has_allow_pragma(finding.rule, finding.line):
                    continue
                findings.append(finding)
    return findings


def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if not rule_ids:
        return rules
    known = {rule.id for rule in rules}
    unknown = sorted(set(rule_ids) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown lint rule(s) {unknown}; choose from {sorted(known)}"
        )
    wanted = set(rule_ids)
    return [rule for rule in rules if rule.id in wanted]


def run_lint(
    paths: Sequence,
    root: "Path | str | None" = None,
    rules: Optional[Sequence[str]] = None,
    baseline_path: "Path | str | None" = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint ``paths`` and fold the findings through the baseline.

    Args:
        paths: Files or directories to lint (recursively).
        root: Directory findings paths are reported relative to (and the
            directory baseline fingerprints are anchored at).  Defaults to
            the current working directory.
        rules: Rule IDs to run (default: all).
        baseline_path: Ratchet file; findings whose fingerprints appear in
            it are suppressed, not reported.  A missing file means no
            baseline.
        update_baseline: Rewrite ``baseline_path`` from the current
            findings (keeping the justifications of entries that survive)
            instead of failing on them.
    """
    from repro.lint.baseline import (
        fingerprint_findings,
        load_baseline,
        save_baseline,
    )

    root = Path(root) if root is not None else Path.cwd()
    selected = _select_rules(rules)

    findings: List[Finding] = []
    sources: dict = {}
    files_checked = 0
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        for file_path in _iter_python_files(path):
            relpath = _relpath(file_path, root)
            if relpath in sources:
                continue  # overlapping path arguments
            try:
                text = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as error:
                findings.append(Finding(
                    rule="NM000",
                    severity=SEVERITY_ERROR,
                    path=relpath,
                    line=1,
                    col=1,
                    message=f"file is unreadable: {error}",
                ))
                sources[relpath] = None
                continue
            files_checked += 1
            parsed = parse_source(relpath, text)
            if isinstance(parsed, Finding):
                findings.append(parsed)
                sources[relpath] = None
                continue
            sources[relpath] = parsed
            findings.extend(_check_file(parsed, selected))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    fingerprints = fingerprint_findings(findings, sources)

    report = LintReport(findings=findings, files_checked=files_checked)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    seen = set()
    for finding, fingerprint in zip(findings, fingerprints):
        if fingerprint in baseline:
            seen.add(fingerprint)
            report.suppressed.append(finding)
        else:
            report.new.append(finding)
    report.stale = [
        entry for fingerprint, entry in baseline.items()
        if fingerprint not in seen
    ]

    if update_baseline:
        if baseline_path is None:
            raise ConfigurationError(
                "--update-baseline requires a baseline path"
            )
        save_baseline(baseline_path, findings, fingerprints, baseline)
        # After an update the ratchet matches reality by construction.
        report.new = []
        report.suppressed = list(findings)
        report.stale = []
    return report
