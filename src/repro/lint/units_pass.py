"""Suffix-based unit inference over a module AST.

The modeling code encodes its unit convention in names: ``area_mm2`` is
square millimetres, ``energy_pj`` picojoules, ``freq_ghz`` gigahertz (see
:mod:`repro.units`).  This pass recovers those units statically and
propagates them through assignments, arithmetic, and calls, so the unit
rules (NM101/NM102/NM104) can flag the places where two units meet without
a converter.

The traversal itself — scoped statement execution, environment threading,
comprehension/lambda scoping — lives in the shared
:class:`repro.lint.flow.DataflowWalker`; this pass supplies only the
unit-specific value semantics via the ``eval_expr``/``bind``/
``on_aug_assign`` hooks.

The inference is deliberately conservative: a unit is only propagated when
the convention makes the result unambiguous —

* a name or attribute with a recognised suffix carries that unit
  (``_mm2``, ``_pj``, ...; names containing ``_per_`` carry a *derived*
  unit and are treated as unknown);
* ``+``/``-`` of two like units keeps the unit; mixing units is an event;
* ``*``/``/`` by a bare numeric constant (or one of the ``repro.units``
  scale constants ``KILO``/``GiB``/...) keeps the unit, because a scale
  factor cannot change a quantity's label — that is exactly the silent
  conversion the rules exist to catch; any other product is a derived
  quantity and becomes unknown;
* a call to an ``x_to_y`` converter returns ``y`` (and its argument had
  better be an ``x``); a call to any function or method whose name carries
  a unit suffix (``area_mm2(tech)``, ``cycle_time_ns(...)``) returns that
  unit; ``min``/``max``/``abs``/``sum``/``round`` are unit-transparent.

Everything else infers to ``None`` (unknown), which never produces a
finding.  The pass records :class:`UnitEvent` objects instead of findings;
the rules in :mod:`repro.lint.rules_units` translate events into findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.lint.flow import DataflowWalker

#: unit token -> physical dimension.  Tokens are name suffixes (after the
#: last underscore).  Single letters that would be too noisy as suffixes
#: ("f", "b") are deliberately absent.
SUFFIX_DIMENSIONS: Dict[str, str] = {
    # area
    "mm2": "area", "um2": "area", "nm2": "area",
    # length
    "mm": "length", "um": "length", "nm": "length",
    # time
    "s": "time", "ms": "time", "us": "time", "ns": "time", "ps": "time",
    # frequency
    "hz": "frequency", "mhz": "frequency", "ghz": "frequency",
    # energy
    "j": "energy", "mj": "energy", "uj": "energy", "nj": "energy",
    "pj": "energy", "fj": "energy",
    # power
    "w": "power", "kw": "power", "mw": "power", "uw": "power",
    "nw": "power",
    # capacitance / resistance / voltage
    "pf": "capacitance", "ff": "capacitance",
    "ohm": "resistance", "kohm": "resistance",
    "v": "voltage", "mv": "voltage",
    # bandwidth / throughput
    "gbps": "bandwidth", "mbps": "bandwidth",
    "tops": "throughput", "gops": "throughput", "fps": "throughput",
    # capacity
    "bytes": "capacity", "kib": "capacity", "mib": "capacity",
    "gib": "capacity",
}

#: Tokens distinctive enough to count as a unit when they are the *whole*
#: name (``result.fps``), not just a suffix.
WHOLE_NAME_UNITS = frozenset({"fps", "tops", "gbps", "mm2", "um2"})

#: ``repro.units`` scale-prefix constants: multiplying by one of these keeps
#: the operand's unit label, exactly like a bare literal.
SCALE_CONSTANT_NAMES = frozenset(
    {"KILO", "MEGA", "GIGA", "TERA", "KiB", "MiB", "GiB", "OHM_FF_TO_NS"}
)

#: Builtins that return the same unit as their (uniform) arguments.
UNIT_TRANSPARENT_CALLS = frozenset({"min", "max", "abs", "sum", "round"})

_CONVERTER_RE = re.compile(r"^([a-z][a-z0-9]*)_to_([a-z][a-z0-9]*)$")


def unit_of_name(name: str) -> Optional[str]:
    """The unit token a name declares via its suffix, if any."""
    lowered = name.lower()
    if lowered in WHOLE_NAME_UNITS:
        return lowered
    if "_per_" in lowered or "_for_" in lowered:
        # A ratio ("energy_per_cycle_pj" is fine, but "cost_per_mm2" is
        # not an area) or a relation ("frequency_for_tops" returns GHz):
        # the trailing suffix is not the value's unit.
        return None
    prefix, _, suffix = lowered.rpartition("_")
    if prefix and suffix in SUFFIX_DIMENSIONS:
        return suffix
    return None


def dimension_of(unit: str) -> Optional[str]:
    """The physical dimension of a unit token."""
    return SUFFIX_DIMENSIONS.get(unit)


def converter_units(name: str) -> Optional[tuple]:
    """``(input_unit, output_unit)`` if ``name`` is an ``x_to_y`` converter."""
    match = _CONVERTER_RE.match(name)
    if match and match.group(1) in SUFFIX_DIMENSIONS \
            and match.group(2) in SUFFIX_DIMENSIONS:
        return match.group(1), match.group(2)
    return None


@dataclass(frozen=True)
class UnitEvent:
    """One place where the inferred units disagree.

    Attributes:
        kind: ``mixed-arith`` (``a_um2 + b_mm2``), ``mixed-compare``
            (``a_pj < b_w``), ``assign-mismatch`` (``area_mm2 = x_um2``,
            including augmented assignment and suffixed keyword
            arguments), or ``converter-mismatch`` (``um2_to_mm2(x_mm2)``).
        node: The AST node the event anchors to.
        left: Unit on the left/target/declared side.
        right: Unit on the right/value/actual side.
        detail: Extra context for the message (operator, target name,
            converter name).
    """

    kind: str
    node: ast.AST
    left: str
    right: str
    detail: str = ""


_OP_NAMES = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


def _callable_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UnitInference(DataflowWalker):
    """Run unit inference over one module and collect :class:`UnitEvent`s.

    The abstract values threaded through the walker's environment are
    unit tokens (``"mm2"``, ``"pj"``, ...) or ``None`` for unknown.
    """

    def __init__(self) -> None:
        self.events: List[UnitEvent] = []

    # -- entry points --------------------------------------------------------

    def run(self, tree: ast.Module) -> List[UnitEvent]:
        self.walk_module(tree)
        return self.events

    def infer(self, node: ast.expr,
              env: Optional[Dict[str, Optional[str]]] = None) -> Optional[str]:
        """Infer the unit of one expression (used directly by tests)."""
        return self.eval_expr(node, {} if env is None else env)

    # -- walker hooks --------------------------------------------------------

    def on_aug_assign(self, stmt: ast.AugAssign,
                      env: Dict[str, Optional[str]]) -> None:
        target_unit = self._target_unit(stmt.target, env)
        value_unit = self.eval_expr(stmt.value, env)
        if isinstance(stmt.op, (ast.Add, ast.Sub)) and target_unit \
                and value_unit and target_unit != value_unit:
            self.events.append(UnitEvent(
                kind="assign-mismatch",
                node=stmt,
                left=target_unit,
                right=value_unit,
                detail=f"augmented ({_OP_NAMES[type(stmt.op)]}=) "
                f"{self._target_name(stmt.target)}",
            ))

    def bind(self, target: ast.expr, value_unit: Optional[str],
             stmt: ast.AST, env: Dict[str, Optional[str]]) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            if declared is not None:
                if value_unit is not None and value_unit != declared:
                    self.events.append(UnitEvent(
                        kind="assign-mismatch",
                        node=stmt,
                        left=declared,
                        right=value_unit,
                        detail=target.id,
                    ))
            else:
                env[target.id] = value_unit
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            if declared is not None and value_unit is not None \
                    and value_unit != declared:
                self.events.append(UnitEvent(
                    kind="assign-mismatch",
                    node=stmt,
                    left=declared,
                    right=value_unit,
                    detail=target.attr,
                ))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for name in self.bound_names(target):
                if unit_of_name(name) is None:
                    env[name] = None
        # Subscript / Starred targets: nothing to track.

    # -- binding helpers -----------------------------------------------------

    def _target_name(self, target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return "<target>"

    def _target_unit(self, target: ast.expr,
                     env: Dict[str, Optional[str]]) -> Optional[str]:
        if isinstance(target, ast.Name):
            return unit_of_name(target.id) or env.get(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of_name(target.attr)
        return None

    # -- expressions ---------------------------------------------------------

    def _is_scale_constant(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) \
                and not isinstance(node.value, bool)
        if isinstance(node, ast.Name):
            return node.id in SCALE_CONSTANT_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in SCALE_CONSTANT_NAMES
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self._is_scale_constant(node.operand)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow,
                      ast.LShift)
        ):
            return self._is_scale_constant(node.left) \
                and self._is_scale_constant(node.right)
        return False

    def eval_expr(self, node: ast.expr,
                  env: Dict[str, Optional[str]]) -> Optional[str]:
        if isinstance(node, ast.Name):
            return unit_of_name(node.id) or env.get(node.id)
        if isinstance(node, ast.Attribute):
            self.eval_expr(node.value, env)
            return unit_of_name(node.attr)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            unit = self.eval_expr(node.operand, env)
            return unit if isinstance(node.op, (ast.USub, ast.UAdd)) else None
        if isinstance(node, ast.Compare):
            self._infer_compare(node, env)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, env)
            left = self.eval_expr(node.body, env)
            right = self.eval_expr(node.orelse, env)
            return left if left == right else None
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value, env)
        # Comprehension/Lambda/NamedExpr scoping plus the generic child
        # walk come from the shared base.
        return super().eval_expr(node, env)

    def _infer_binop(self, node: ast.BinOp,
                     env: Dict[str, Optional[str]]) -> Optional[str]:
        left = self.eval_expr(node.left, env)
        right = self.eval_expr(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left and right:
                if left != right:
                    self.events.append(UnitEvent(
                        kind="mixed-arith",
                        node=node,
                        left=left,
                        right=right,
                        detail=_OP_NAMES[type(node.op)],
                    ))
                    return None
                return left
            return left or right
        if isinstance(node.op, ast.Mult):
            if left and right:
                return None  # derived quantity (e.g. pJ * GHz)
            if left and self._is_scale_constant(node.right):
                return self._capacity_product(left, node.right)
            if right and self._is_scale_constant(node.left):
                return self._capacity_product(right, node.left)
            return None
        if isinstance(node.op, ast.Div):
            if left and not right and self._is_scale_constant(node.right):
                capacity = self._capacity_unit_name(node.right)
                if capacity is not None:
                    # bytes / MiB *is* the conversion to MiB.
                    return capacity if left == "bytes" else None
                return left
            return None
        return None

    def _capacity_unit_name(self, node: ast.expr) -> Optional[str]:
        """``KiB``/``MiB``/``GiB`` used as a factor names a capacity unit."""
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in ("KiB", "MiB", "GiB"):
            return name.lower()
        return None

    def _capacity_product(self, unit: str, factor: ast.expr) -> Optional[str]:
        capacity = self._capacity_unit_name(factor)
        if capacity is None:
            return unit  # plain scale factor keeps the label
        # x_mib * MiB is bytes; scaling any other unit by KiB/... is odd
        # enough that we stop inferring.
        return "bytes" if unit == capacity else None

    def _infer_compare(self, node: ast.Compare,
                       env: Dict[str, Optional[str]]) -> None:
        units = [self.eval_expr(node.left, env)]
        units += [self.eval_expr(comp, env) for comp in node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE,
                                   ast.Gt, ast.GtE)):
                continue
            left, right = units[index], units[index + 1]
            if left and right and left != right:
                self.events.append(UnitEvent(
                    kind="mixed-compare",
                    node=node,
                    left=left,
                    right=right,
                    detail=_OP_NAMES[type(op)],
                ))

    def _infer_call(self, node: ast.Call,
                    env: Dict[str, Optional[str]]) -> Optional[str]:
        name = _callable_name(node.func)
        if isinstance(node.func, ast.Attribute):
            self.eval_expr(node.func.value, env)
        arg_units = [self.eval_expr(arg, env) for arg in node.args]
        for keyword in node.keywords:
            value_unit = self.eval_expr(keyword.value, env)
            declared = unit_of_name(keyword.arg) if keyword.arg else None
            if declared is not None and value_unit is not None \
                    and value_unit != declared:
                self.events.append(UnitEvent(
                    kind="assign-mismatch",
                    node=keyword.value,
                    left=declared,
                    right=value_unit,
                    detail=f"keyword argument {keyword.arg}",
                ))
        if name is None:
            return None
        conversion = converter_units(name)
        if conversion is not None:
            expected, produced = conversion
            if len(node.args) == 1 and arg_units[0] is not None \
                    and arg_units[0] != expected:
                self.events.append(UnitEvent(
                    kind="converter-mismatch",
                    node=node,
                    left=expected,
                    right=arg_units[0],
                    detail=name,
                ))
            return produced
        if name in UNIT_TRANSPARENT_CALLS:
            known = {unit for unit in arg_units if unit is not None}
            if len(known) == 1 and all(
                unit is not None or isinstance(arg, ast.Constant)
                for unit, arg in zip(arg_units, node.args)
            ):
                return next(iter(known))
            return None
        return unit_of_name(name)
