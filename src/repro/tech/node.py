"""Technology-node parameter tables and inter-node scaling.

The tables below are representative planar/FinFET bulk-CMOS values assembled
from public sources (ITRS roadmaps, CACTI/McPAT technology files, and the
per-operation energy survey of Horowitz, ISSCC 2014).  They are the
reproduction's substitute for the FreePDK-based backends the paper uses; see
DESIGN.md for the substitution rationale.  All downstream case-study results
depend on *ratios* between designs at a fixed node, which these tables
preserve.

Canonical units follow :mod:`repro.units` (fJ, fF, ohm, um^2, nW, ps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import TechnologyError


@dataclass(frozen=True)
class TechNode:
    """Device and memory-cell parameters for one technology node.

    Attributes:
        feature_nm: Drawn feature size in nanometres (65, 45, 28, 16, 7).
        vdd_v: Nominal supply voltage.
        fo4_ps: Fanout-of-4 inverter delay, the canonical logic-speed unit.
        gate_area_um2: Area of one NAND2-equivalent standard-cell gate.
        gate_cap_ff: Input capacitance of a minimum-size inverter.
        gate_energy_fj: Switching energy of one gate-equivalent per toggle
            at nominal Vdd.
        gate_leak_nw: Average leakage power per gate-equivalent (mix of
            threshold flavours typical of a power-constrained accelerator).
        sram_cell_um2: 6T SRAM bit-cell area.
        sram_cell_cap_ff: Bit-cell drain load presented to the bitline.
        sram_bit_leak_nw: Leakage per SRAM bit (low-leak array flavour).
        edram_cell_um2: 1T1C eDRAM bit-cell area.
        edram_refresh_nw_per_bit: Average refresh power per eDRAM bit.
        dff_area_um2: Standard-cell D-flip-flop area per bit.
        dff_energy_fj: D-flip-flop energy per clock edge per bit.
        dff_leak_nw: D-flip-flop leakage per bit.
    """

    feature_nm: float
    vdd_v: float
    fo4_ps: float
    gate_area_um2: float
    gate_cap_ff: float
    gate_energy_fj: float
    gate_leak_nw: float
    sram_cell_um2: float
    sram_cell_cap_ff: float
    sram_bit_leak_nw: float
    edram_cell_um2: float
    edram_refresh_nw_per_bit: float
    dff_area_um2: float
    dff_energy_fj: float
    dff_leak_nw: float

    def __post_init__(self) -> None:
        for field_name in (
            "feature_nm",
            "vdd_v",
            "fo4_ps",
            "gate_area_um2",
            "gate_cap_ff",
            "gate_energy_fj",
            "sram_cell_um2",
            "dff_area_um2",
        ):
            if getattr(self, field_name) <= 0:
                raise TechnologyError(
                    f"{field_name} must be positive for a technology node"
                )

    @property
    def name(self) -> str:
        """Human-readable node name, e.g. ``'28nm'``."""
        if float(self.feature_nm).is_integer():
            return f"{int(self.feature_nm)}nm"
        return f"{self.feature_nm:g}nm"

    def at_voltage(self, vdd_v: float) -> "TechNode":
        """Return a copy operating at a different supply voltage.

        Dynamic energy scales with ``V^2``; gate delay scales roughly with
        the alpha-power law (alpha ~= 1.3 near nominal); leakage scales
        linearly with ``V`` (a first-order DIBL-free approximation).
        """
        if vdd_v <= 0:
            raise TechnologyError(f"vdd must be positive, got {vdd_v}")
        ratio = vdd_v / self.vdd_v
        energy = ratio**2
        delay = 1.0 / (ratio**1.3)
        leak = ratio
        return replace(
            self,
            vdd_v=vdd_v,
            fo4_ps=self.fo4_ps * delay,
            gate_energy_fj=self.gate_energy_fj * energy,
            gate_leak_nw=self.gate_leak_nw * leak,
            sram_bit_leak_nw=self.sram_bit_leak_nw * leak,
            edram_refresh_nw_per_bit=self.edram_refresh_nw_per_bit * leak,
            dff_energy_fj=self.dff_energy_fj * energy,
            dff_leak_nw=self.dff_leak_nw * leak,
        )

    def energy_scale_from(self, reference: "TechNode") -> float:
        """Dynamic-energy ratio of this node relative to ``reference``.

        Used by the empirical MAC model, whose coefficients are anchored at
        45 nm, to scale energies with ``C * V^2`` (capacitance tracks the
        gate-energy tables directly).
        """
        return self.gate_energy_fj / reference.gate_energy_fj

    def area_scale_from(self, reference: "TechNode") -> float:
        """Logic-area ratio of this node relative to ``reference``."""
        return self.gate_area_um2 / reference.gate_area_um2

    def delay_scale_from(self, reference: "TechNode") -> float:
        """Logic-delay ratio of this node relative to ``reference``."""
        return self.fo4_ps / reference.fo4_ps


# Calibrated parameter tables.  Sources noted in the module docstring; the
# gate/DFF leakage entries are tuned so whole-chip leakage lands in the
# 10-20%-of-TDP band typical of the validation chips.
_NODE_TABLE = {
    65: TechNode(
        feature_nm=65,
        vdd_v=1.1,
        fo4_ps=25.0,
        gate_area_um2=1.80,
        gate_cap_ff=1.8,
        gate_energy_fj=3.20,
        gate_leak_nw=10.0,
        sram_cell_um2=0.525,
        sram_cell_cap_ff=0.050,
        sram_bit_leak_nw=4.0,
        edram_cell_um2=0.21,
        edram_refresh_nw_per_bit=0.012,
        dff_area_um2=13.0,
        dff_energy_fj=18.0,
        dff_leak_nw=30.0,
    ),
    45: TechNode(
        feature_nm=45,
        vdd_v=1.0,
        fo4_ps=17.0,
        gate_area_um2=0.90,
        gate_cap_ff=1.1,
        gate_energy_fj=1.70,
        gate_leak_nw=7.0,
        sram_cell_um2=0.245,
        sram_cell_cap_ff=0.035,
        sram_bit_leak_nw=3.0,
        edram_cell_um2=0.10,
        edram_refresh_nw_per_bit=0.009,
        dff_area_um2=6.5,
        dff_energy_fj=10.0,
        dff_leak_nw=21.0,
    ),
    28: TechNode(
        feature_nm=28,
        vdd_v=0.90,
        fo4_ps=11.0,
        gate_area_um2=0.45,
        gate_cap_ff=0.70,
        gate_energy_fj=0.85,
        gate_leak_nw=5.0,
        sram_cell_um2=0.127,
        sram_cell_cap_ff=0.025,
        sram_bit_leak_nw=2.0,
        edram_cell_um2=0.050,
        edram_refresh_nw_per_bit=0.006,
        dff_area_um2=3.2,
        dff_energy_fj=5.0,
        dff_leak_nw=15.0,
    ),
    16: TechNode(
        feature_nm=16,
        vdd_v=0.80,
        fo4_ps=7.5,
        gate_area_um2=0.20,
        gate_cap_ff=0.45,
        gate_energy_fj=0.42,
        gate_leak_nw=3.0,
        sram_cell_um2=0.074,
        sram_cell_cap_ff=0.018,
        sram_bit_leak_nw=1.2,
        edram_cell_um2=0.028,
        edram_refresh_nw_per_bit=0.004,
        dff_area_um2=1.6,
        dff_energy_fj=2.6,
        dff_leak_nw=9.0,
    ),
    7: TechNode(
        feature_nm=7,
        vdd_v=0.70,
        fo4_ps=4.5,
        gate_area_um2=0.080,
        gate_cap_ff=0.28,
        gate_energy_fj=0.18,
        gate_leak_nw=1.8,
        sram_cell_um2=0.032,
        sram_cell_cap_ff=0.012,
        sram_bit_leak_nw=0.7,
        edram_cell_um2=0.014,
        edram_refresh_nw_per_bit=0.0025,
        dff_area_um2=0.70,
        dff_energy_fj=1.2,
        dff_leak_nw=5.4,
    ),
}

#: The node the empirical MAC coefficients are anchored at (Horowitz '14).
REFERENCE_NODE_NM = 45


def available_nodes() -> tuple[int, ...]:
    """Technology nodes with first-class parameter tables."""
    return tuple(sorted(_NODE_TABLE, reverse=True))


def node(feature_nm: float) -> TechNode:
    """Look up (or interpolate) the parameters for a technology node.

    Tabulated nodes (65/45/28/16/7 nm) are returned directly.  Intermediate
    feature sizes are produced by log-log interpolation between the two
    bracketing tabulated nodes, which matches the roughly geometric scaling
    of all tabulated quantities.
    """
    if feature_nm in _NODE_TABLE:
        return _NODE_TABLE[int(feature_nm)]
    nodes = sorted(_NODE_TABLE)
    if not nodes[0] <= feature_nm <= nodes[-1]:
        raise TechnologyError(
            f"technology node {feature_nm} nm is outside the supported "
            f"range [{nodes[0]}, {nodes[-1]}] nm"
        )
    lo = max(n for n in nodes if n < feature_nm)
    hi = min(n for n in nodes if n > feature_nm)
    return _interpolate(_NODE_TABLE[lo], _NODE_TABLE[hi], feature_nm)


def _interpolate(lo: TechNode, hi: TechNode, feature_nm: float) -> TechNode:
    """Log-log interpolate every numeric field between two tabulated nodes."""
    frac = (math.log(feature_nm) - math.log(lo.feature_nm)) / (
        math.log(hi.feature_nm) - math.log(lo.feature_nm)
    )

    def mix(a: float, b: float) -> float:
        return math.exp(math.log(a) * (1 - frac) + math.log(b) * frac)

    fields = {
        name: mix(getattr(lo, name), getattr(hi, name))
        for name in TechNode.__dataclass_fields__
        if name != "feature_nm"
    }
    return TechNode(feature_nm=feature_nm, **fields)
