"""Hierarchical wire models: per-layer R/C, repeaters, and wire energy.

NeuroMeter abstracts every interconnect (inner-TU links, the central data
bus, NoC links) into RC wire segments on one of three metal-stack layers.
This module supplies the per-millimetre electrical parameters and the two
standard results the architecture layer needs:

* the delay of an optimally repeated wire (used for cycle-time checks and
  for deciding how many pipeline stages a long bus needs), and
* the switching energy per bit per millimetre (wire capacitance plus the
  repeaters that drive it).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, TechnologyError
from repro.tech.node import TechNode
from repro.units import OHM_FF_TO_NS, fj_to_pj, nm_to_um, ps_to_ns


class WireType(enum.Enum):
    """Metal-stack layer a wire is routed on."""

    LOCAL = "local"
    INTERMEDIATE = "intermediate"
    GLOBAL = "global"


@dataclass(frozen=True)
class WireParams:
    """Per-millimetre electrical parameters of one wire layer."""

    wire_type: WireType
    r_ohm_per_mm: float
    c_ff_per_mm: float
    pitch_um: float

    @property
    def rc_ns_per_mm2(self) -> float:
        """Distributed RC product in ns/mm^2 (ohm * fF = 1e-15 s -> 1e-6 ns)."""
        return self.r_ohm_per_mm * self.c_ff_per_mm * OHM_FF_TO_NS


# Resistance grows as wires shrink with the node; capacitance per length is
# nearly node-independent.  Values bracket published 65 nm-7 nm data.
_RESISTANCE_TABLE = {
    # feature_nm: (local, intermediate, global) ohm/mm
    65: (1500.0, 600.0, 150.0),
    45: (2500.0, 1000.0, 250.0),
    28: (4500.0, 2000.0, 450.0),
    16: (9000.0, 4000.0, 900.0),
    7: (25000.0, 10000.0, 2000.0),
}

_CAPACITANCE_FF_PER_MM = {
    WireType.LOCAL: 180.0,
    WireType.INTERMEDIATE: 200.0,
    WireType.GLOBAL: 240.0,
}

# Wire pitch relative to the feature size (local wires at tight pitch,
# global wires much coarser).
_PITCH_FACTOR = {
    WireType.LOCAL: 2.5,
    WireType.INTERMEDIATE: 4.0,
    WireType.GLOBAL: 12.0,
}

#: Repeater energy overhead on top of the bare wire capacitance.
_REPEATER_ENERGY_FACTOR = 1.3


def wire_params(tech: TechNode, wire_type: WireType) -> WireParams:
    """Electrical parameters of ``wire_type`` at technology node ``tech``.

    Resistance is log-log interpolated between tabulated nodes the same way
    :func:`repro.tech.node.node` interpolates device parameters.
    """
    resistances = _resistance_at(tech.feature_nm)
    index = {
        WireType.LOCAL: 0,
        WireType.INTERMEDIATE: 1,
        WireType.GLOBAL: 2,
    }[wire_type]
    return WireParams(
        wire_type=wire_type,
        r_ohm_per_mm=resistances[index],
        c_ff_per_mm=_CAPACITANCE_FF_PER_MM[wire_type],
        pitch_um=nm_to_um(_PITCH_FACTOR[wire_type] * tech.feature_nm),
    )


def _resistance_at(feature_nm: float) -> tuple[float, float, float]:
    if feature_nm in _RESISTANCE_TABLE:
        return _RESISTANCE_TABLE[int(feature_nm)]
    nodes = sorted(_RESISTANCE_TABLE)
    if not nodes[0] <= feature_nm <= nodes[-1]:
        raise TechnologyError(
            f"no wire parameters for {feature_nm} nm (supported range "
            f"[{nodes[0]}, {nodes[-1]}] nm)"
        )
    lo = max(n for n in nodes if n < feature_nm)
    hi = min(n for n in nodes if n > feature_nm)
    frac = (math.log(feature_nm) - math.log(lo)) / (math.log(hi) - math.log(lo))

    def mix(a: float, b: float) -> float:
        return math.exp(math.log(a) * (1 - frac) + math.log(b) * frac)

    a, b = _RESISTANCE_TABLE[lo], _RESISTANCE_TABLE[hi]
    return (mix(a[0], b[0]), mix(a[1], b[1]), mix(a[2], b[2]))


def unrepeated_wire_delay_ns(
    tech: TechNode, wire: WireParams, length_mm: float
) -> float:
    """Elmore delay of a bare (distributed RC) wire of ``length_mm``.

    The distributed-RC Elmore delay is ``0.5 * R * C``; appropriate for the
    short intra-unit wires that never warrant repeaters.
    """
    if length_mm < 0:
        raise ConfigurationError(
            f"wire length must be non-negative, got {length_mm}"
        )
    return 0.5 * wire.rc_ns_per_mm2 * length_mm**2


def repeated_wire_delay_ns(
    tech: TechNode, wire: WireParams, length_mm: float
) -> float:
    """Delay of an optimally repeated wire of ``length_mm``.

    With repeaters of delay ``t_buf`` inserted every ``L_opt =
    sqrt(2 t_buf / rc)``, total delay grows linearly with length at
    ``sqrt(2 t_buf rc)`` per mm.  Wires shorter than one optimal segment
    fall back to the bare Elmore delay, whichever is smaller.
    """
    if length_mm < 0:
        raise ConfigurationError(
            f"wire length must be non-negative, got {length_mm}"
        )
    t_buf_ns = ps_to_ns(2.0 * tech.fo4_ps)
    rc = wire.rc_ns_per_mm2
    optimal_segment_mm = math.sqrt(2.0 * t_buf_ns / rc)
    if length_mm <= optimal_segment_mm:
        return min(
            unrepeated_wire_delay_ns(tech, wire, length_mm)
            + (t_buf_ns if length_mm > 0 else 0.0),
            math.sqrt(2.0 * t_buf_ns * rc) * length_mm + t_buf_ns,
        )
    return math.sqrt(2.0 * t_buf_ns * rc) * length_mm


def wire_energy_pj_per_bit(
    tech: TechNode, wire: WireParams, length_mm: float
) -> float:
    """Switching energy to move one bit over ``length_mm`` of wire.

    Charges the full wire capacitance plus a repeater overhead at Vdd^2;
    activity factors are applied by the caller.
    """
    if length_mm < 0:
        raise ConfigurationError(
            f"wire length must be non-negative, got {length_mm}"
        )
    energy_fj = (
        _REPEATER_ENERGY_FACTOR * wire.c_ff_per_mm * length_mm * tech.vdd_v**2
    )
    return fj_to_pj(energy_fj)


def wire_pipeline_stages(
    tech: TechNode, wire: WireParams, length_mm: float, cycle_time_ns: float
) -> int:
    """Pipeline registers needed for a wire to meet the clock period.

    NeuroMeter pipelines long buses (e.g. the CDB) when their repeated-wire
    delay exceeds the cycle time; the result is at least 1 (every bus has a
    launch register).
    """
    if cycle_time_ns <= 0:
        raise ConfigurationError(
            f"cycle time must be positive, got {cycle_time_ns}"
        )
    delay = repeated_wire_delay_ns(tech, wire, length_mm)
    return max(1, math.ceil(delay / cycle_time_ns))
