"""Technology backend: per-node device, memory-cell, and wire parameters.

This package plays the role FreePDK/ITRS tables play for CACTI and McPAT:
it supplies the voltage, capacitance, resistance, cell-size, and leakage
numbers that the circuit-level models in :mod:`repro.circuit` consume.
"""

from repro.tech.node import TechNode, available_nodes, node
from repro.tech.wire import WireParams, WireType, repeated_wire_delay_ns

__all__ = [
    "TechNode",
    "WireParams",
    "WireType",
    "available_nodes",
    "node",
    "repeated_wire_delay_ns",
]
