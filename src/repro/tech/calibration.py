"""Global calibration constants.

NeuroMeter's arithmetic models are *empirical*: the paper fits them to
Design Compiler synthesis of Berkeley HardFloat RTL on FreePDK backends
(Sec. II-B).  Without an EDA flow, this reproduction anchors the same
coefficient tables on published per-operation numbers (Horowitz, ISSCC 2014,
45 nm) and then calibrates the handful of global factors below so that the
chip-level validation targets of Sec. II-C (TPU-v1, TPU-v2, Eyeriss) land
inside the paper's quoted error bands.  The factors are deliberately few and
physically interpretable; everything else in the model is analytical.
"""

from __future__ import annotations

#: Multiplier on all dynamic energy to account for the clock network, which
#: the paper amortizes into each component instead of modeling separately.
CLOCK_NETWORK_OVERHEAD = 1.25

#: Ratio of synthesized (timing-closed, wire-loaded) arithmetic energy/area
#: to the optimistic datapath-only anchor numbers.  This is the single
#: empirical fit factor standing in for the paper's Design Compiler runs.
SYNTHESIS_ENERGY_MARGIN = 2.5
SYNTHESIS_AREA_MARGIN = 1.6

#: Address/control distribution overhead on every SRAM access, on top of
#: the modeled decode/wordline/bitline/H-tree path.
SRAM_ACCESS_OVERHEAD = 1.30

#: Chip-level TDP guardband (worst-case voltage/temperature corner) applied
#: uniformly when converting modeled peak power into a thermal design point.
CHIP_TDP_MARGIN = 1.25

#: Routing/placement area overhead inside datapath arrays (systolic cells,
#: vector lanes) on top of raw standard-cell area.
DATAPATH_ROUTING_OVERHEAD = 1.45

#: Additional float-unit energy/area overhead (normalization, rounding)
#: applied when deriving non-tabulated float formats from integer fits.
FLOAT_MULT_OVERHEAD = 3.0
FLOAT_ADD_OVERHEAD = 10.0

#: Extra synthesis margin for floating-point MACs beyond the integer one:
#: timing closure of FMA normalize/round paths costs disproportionate
#: sizing (calibrated on the TPU-v2 MXU).
FLOAT_SYNTHESIS_ENERGY_EXTRA = 3.9
FLOAT_SYNTHESIS_AREA_EXTRA = 2.0

#: Per-cell wiring/clock-spine overhead that grows with the systolic array
#: span (operand distribution across a 256x256 array costs far more track
#: per cell than across a 14x12 one).
ARRAY_SPAN_WIRING_COEF = 0.0008

#: Operand-delivery energy grows with the array span too (longer spines,
#: more repeaters, stronger clock drivers): per-cell energy is scaled by
#: ``FLOOR + (1 - FLOOR) * span / 512``, normalized at the TPU-v1 anchor
#: (span = 256 + 256).  This is the mechanism behind the paper's "energy
#: consumption of systolic arrays scales quadratically with the length of
#: the TU" observation in Sec. III-B.
ARRAY_SPAN_ENERGY_FLOOR = 0.55
ARRAY_SPAN_ENERGY_NORM = 512.0

#: SRAM global-routing/redundancy overhead growth per doubling of capacity
#: beyond 1 MiB (CACTI's H-tree area grows superlinearly with capacity).
SRAM_CAPACITY_ROUTING_COEF = 0.08

#: Thermal-design-point activity factors: the fraction of peak switching
#: assumed when converting per-op energies into TDP (McPAT uses a similar
#: "max realistic activity" convention).
TDP_ACTIVITY = {
    "compute": 1.00,
    "memory": 0.75,
    "interconnect": 0.60,
    "control": 0.50,
}

#: Fraction of the die reserved as white space / unknown blocks, matching the
#: ~21% "unknown components" share the paper carries for TPU-v1 and TPU-v2.
WHITESPACE_FRACTION = 0.21
