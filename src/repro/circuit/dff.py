"""D-flip-flop banks: pipeline registers, FIFOs, and DFF-based buffers.

Systolic-cell local buffers, TU I/O FIFOs, reduction-tree pipeline stages,
and bus pipeline registers are all banks of standard-cell flip-flops.  The
energy model separates the clock-pin energy (paid every cycle the bank is
clocked, unless clock gated) from the data-toggle energy (paid only when
stored bits change).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.node import TechNode
from repro.units import fj_to_pj, nw_to_w, ps_to_ns, um2_to_mm2

#: Fraction of DFF energy drawn by the clock pins (the rest is data path).
CLOCK_ENERGY_FRACTION = 0.4

#: Average fraction of data bits toggling per write.
DEFAULT_DATA_ACTIVITY = 0.5


@dataclass(frozen=True)
class DffBank:
    """A bank of D flip-flops.

    Attributes:
        name: Label used in breakdown reports.
        bits: Number of flip-flops.
        data_activity: Fraction of bits that toggle on an active cycle.
        clock_gated: Whether the clock tree into the bank is gated when the
            bank is idle (ML accelerators commonly gate large FIFOs).
    """

    name: str
    bits: int
    data_activity: float = DEFAULT_DATA_ACTIVITY
    clock_gated: bool = True

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ConfigurationError(
                f"negative bit count in DFF bank {self.name!r}"
            )
        if not 0.0 <= self.data_activity <= 1.0:
            raise ConfigurationError(
                f"data activity must be in [0, 1], got {self.data_activity}"
            )

    def area_mm2(self, tech: TechNode) -> float:
        """Placed bank area (cell area only; routing is the parent's)."""
        return um2_to_mm2(self.bits * tech.dff_area_um2)

    def energy_per_active_cycle_pj(self, tech: TechNode) -> float:
        """Energy on a cycle where the bank is clocked and written."""
        per_bit_fj = tech.dff_energy_fj * (
            CLOCK_ENERGY_FRACTION
            + (1.0 - CLOCK_ENERGY_FRACTION) * self.data_activity
        )
        return fj_to_pj(self.bits * per_bit_fj)

    def energy_per_idle_cycle_pj(self, tech: TechNode) -> float:
        """Energy on a cycle where the bank holds its value.

        Clock-gated banks pay nothing; otherwise the clock pins still toggle.
        """
        if self.clock_gated:
            return 0.0
        return fj_to_pj(
            self.bits * tech.dff_energy_fj * CLOCK_ENERGY_FRACTION
        )

    def leakage_w(self, tech: TechNode) -> float:
        """Static power of the bank."""
        return nw_to_w(self.bits * tech.dff_leak_nw)

    def setup_plus_clk_to_q_ns(self, tech: TechNode) -> float:
        """Sequencing overhead a pipeline stage pays for this register."""
        return ps_to_ns(2.0 * tech.fo4_ps)
