"""Regular-logic model: blocks of standard-cell gates.

McPAT-style "regular logic" (decoders, control FSMs, dependency checkers,
FIFO control) is modeled as a count of NAND2-equivalent gates with an
average switching activity.  Delay through a gate chain uses the FO4 unit
from the technology node; driving large loads uses a classic geometric
buffer chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.node import TechNode
from repro.units import fj_to_pj, nw_to_w, ps_to_ns, um2_to_mm2

#: Area margin for intra-block routing on top of raw cell area.
ROUTING_OVERHEAD = 1.25

#: Fraction of gates that toggle on an average active cycle.
DEFAULT_ACTIVITY = 0.10


@dataclass(frozen=True)
class LogicBlock:
    """A block of regular logic characterized by its gate count.

    Attributes:
        name: Label used in breakdown reports.
        gate_count: NAND2-equivalent gates in the block.
        activity: Fraction of gates toggling per active cycle.
        logic_depth: Gate levels on the block's critical path, used for the
            cycle-time contribution.
    """

    name: str
    gate_count: int
    activity: float = DEFAULT_ACTIVITY
    logic_depth: int = 12

    def __post_init__(self) -> None:
        if self.gate_count < 0:
            raise ConfigurationError(
                f"negative gate count in block {self.name!r}"
            )
        if not 0.0 <= self.activity <= 1.0:
            raise ConfigurationError(
                f"activity must be in [0, 1], got {self.activity} "
                f"in block {self.name!r}"
            )
        if self.logic_depth < 1:
            raise ConfigurationError(
                f"logic depth must be >= 1 in {self.name!r}"
            )

    def area_mm2(self, tech: TechNode) -> float:
        """Placed-and-routed block area."""
        return um2_to_mm2(
            self.gate_count * tech.gate_area_um2 * ROUTING_OVERHEAD
        )

    def energy_per_cycle_pj(self, tech: TechNode) -> float:
        """Dynamic energy per active cycle at the block's activity."""
        return fj_to_pj(
            self.gate_count * self.activity * tech.gate_energy_fj
        )

    def leakage_w(self, tech: TechNode) -> float:
        """Static power of the block."""
        return nw_to_w(self.gate_count * tech.gate_leak_nw)

    def delay_ns(self, tech: TechNode) -> float:
        """Critical-path delay through the block's gate levels."""
        return ps_to_ns(self.logic_depth * tech.fo4_ps)


def buffer_chain_delay_ns(tech: TechNode, load_ff: float) -> float:
    """Delay of a geometric buffer chain driving ``load_ff``.

    Stages of fanout 4 are inserted until the last stage sees at most a
    fanout-of-4 load relative to a minimum inverter; each stage costs one
    FO4 delay.  A load at or below FO4 costs a single stage.
    """
    if load_ff < 0:
        raise ConfigurationError(f"negative load: {load_ff} fF")
    if load_ff == 0:
        return 0.0
    fanout = load_ff / tech.gate_cap_ff
    stages = max(1, math.ceil(math.log(max(fanout, 1.0001)) / math.log(4.0)))
    return ps_to_ns(stages * tech.fo4_ps)


def buffer_chain_energy_pj(tech: TechNode, load_ff: float) -> float:
    """Switching energy of the buffer chain plus the load itself.

    The geometric chain's internal capacitance sums to ~1/3 of the load, so
    the total charged capacitance is ~4/3 of the load.
    """
    if load_ff < 0:
        raise ConfigurationError(f"negative load: {load_ff} fF")
    return fj_to_pj((4.0 / 3.0) * load_ff * tech.vdd_v**2)


def decoder_gate_count(address_bits: int) -> int:
    """NAND2-equivalent gates of an ``address_bits``-input row decoder.

    Predecode plus a final NOR stage: roughly two gates per output word line
    plus the predecoder, the standard CACTI first-order count.
    """
    if address_bits < 0:
        raise ConfigurationError(f"negative address width: {address_bits}")
    if address_bits == 0:
        return 1
    outputs = 2**address_bits
    predecode = 4 * address_bits
    return predecode + 2 * outputs
