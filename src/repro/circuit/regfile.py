"""Multiported register-file model.

Vector register files (VReg) and the scalar unit's integer register file are
small, heavily ported arrays.  Port count dominates their cost: every extra
port adds a word line and a bit-line pair, growing the cell pitch in both
dimensions — the classic reason NeuroMeter caps the number of TUs sharing a
VReg (Sec. III-A: eight 4x4 TUs per core push the VReg to 12.7% of core area
and 24.9% of core power).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.gates import LogicBlock, decoder_gate_count
from repro.errors import ConfigurationError
from repro.tech.node import TechNode
from repro.units import fj_to_pj, nw_to_w, ps_to_ns, um2_to_mm2

#: A 2-port register cell is ~4x a 6T SRAM cell.
BASE_CELL_SRAM_RATIO = 4.0

#: Linear pitch growth per port beyond the second, in each dimension.
PORT_PITCH_GROWTH = 0.25

#: Peripheral (decoder/driver/mux) overhead on top of the cell array.
PERIPHERY_OVERHEAD = 1.35


@dataclass(frozen=True)
class RegisterFile:
    """A register file of ``entries`` words of ``word_bits`` bits.

    Attributes:
        entries: Number of architectural registers.
        word_bits: Width of each register in bits.
        read_ports: Simultaneous read ports.
        write_ports: Simultaneous write ports.
    """

    entries: int
    word_bits: int
    read_ports: int
    write_ports: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.word_bits <= 0:
            raise ConfigurationError("register file needs entries and width")
        if self.read_ports < 1 or self.write_ports < 1:
            raise ConfigurationError(
                "register file needs at least one read and one write port"
            )

    @property
    def total_ports(self) -> int:
        return self.read_ports + self.write_ports

    @property
    def bits(self) -> int:
        return self.entries * self.word_bits

    def _cell_area_um2(self, tech: TechNode) -> float:
        growth = 1.0 + PORT_PITCH_GROWTH * max(0, self.total_ports - 2)
        return tech.sram_cell_um2 * BASE_CELL_SRAM_RATIO * growth**2

    def area_mm2(self, tech: TechNode) -> float:
        """Array plus per-port decoders and drivers."""
        cells = self.bits * self._cell_area_um2(tech)
        decoder = LogicBlock(
            "rf-decode",
            decoder_gate_count(_log2_int(self.entries)) * self.total_ports,
        )
        periph = decoder.gate_count * tech.gate_area_um2
        return um2_to_mm2((cells + periph) * PERIPHERY_OVERHEAD)

    def read_energy_pj(self, tech: TechNode) -> float:
        """Energy of one full-width read on one port."""
        growth = 1.0 + PORT_PITCH_GROWTH * max(0, self.total_ports - 2)
        per_bit_fj = tech.dff_energy_fj * 0.30 * growth
        decode = LogicBlock(
            "rf-decode", decoder_gate_count(_log2_int(self.entries))
        ).energy_per_cycle_pj(tech)
        return fj_to_pj(self.word_bits * per_bit_fj) + decode

    def write_energy_pj(self, tech: TechNode) -> float:
        """Energy of one full-width write on one port."""
        growth = 1.0 + PORT_PITCH_GROWTH * max(0, self.total_ports - 2)
        per_bit_fj = tech.dff_energy_fj * 0.55 * growth
        decode = LogicBlock(
            "rf-decode", decoder_gate_count(_log2_int(self.entries))
        ).energy_per_cycle_pj(tech)
        return fj_to_pj(self.word_bits * per_bit_fj) + decode

    def leakage_w(self, tech: TechNode) -> float:
        """Static power of cells and periphery."""
        growth = 1.0 + PORT_PITCH_GROWTH * max(0, self.total_ports - 2)
        cell_leak = nw_to_w(
            self.bits * tech.sram_bit_leak_nw * 2.0 * growth
        )
        periph_gates = decoder_gate_count(_log2_int(self.entries)) * (
            self.total_ports
        )
        return cell_leak + nw_to_w(periph_gates * tech.gate_leak_nw)

    def access_latency_ns(self, tech: TechNode) -> float:
        """Decode + word line + small bitline; register files are fast."""
        levels = 3 + _log2_int(self.entries)
        return ps_to_ns(levels * tech.fo4_ps)


def _log2_int(value: int) -> int:
    return max(1, int(math.ceil(math.log2(max(value, 2)))))
