"""Empirical multiply-accumulate (MAC) model.

A MAC is a multiplier in the input data type feeding an accumulator adder in
a (usually wider) accumulation type — int8 x int8 into int32 for TPU-v1-like
inference arrays, bf16 x bf16 into fp32 for TPU-v2-like training MXUs.
Multiplier coefficients are anchored at 45 nm on the same published survey
as :mod:`repro.circuit.adder` and scaled by node, mirroring the paper's
synthesis-fit methodology for "complex structures that have custom layouts".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.adder import AdderModel
from repro.datatypes import INT32, DataType
from repro.tech import calibration
from repro.tech.node import REFERENCE_NODE_NM, TechNode, node
from repro.units import nw_to_w, ps_to_ns

# (energy_pj, area_um2) of one multiply at the 45 nm anchor.
_MULT_TABLE = {
    "int8": (0.200, 282.0),
    "int16": (0.650, 990.0),
    "int32": (3.100, 3495.0),
    "fp16": (1.100, 1640.0),
    "bf16": (0.690, 1150.0),
    "fp32": (3.700, 7700.0),
}

#: Multiplier arrays grow roughly quadratically with operand width (the
#: exponents reproduce the int8 -> int32 anchor ratios).
_MULT_ENERGY_EXPONENT = 2.0
_MULT_AREA_EXPONENT = 1.8


def _int_mult_anchor(bits: int) -> tuple[float, float]:
    base_e, base_a = _MULT_TABLE["int8"]
    scale = bits / 8.0
    return (
        base_e * scale**_MULT_ENERGY_EXPONENT,
        base_a * scale**_MULT_AREA_EXPONENT,
    )


def _mult_anchor(dtype: DataType) -> tuple[float, float]:
    if dtype.name in _MULT_TABLE:
        return _MULT_TABLE[dtype.name]
    if not dtype.is_float:
        return _int_mult_anchor(dtype.bits)
    energy, area = _int_mult_anchor(dtype.multiplier_width)
    return (
        energy * calibration.FLOAT_MULT_OVERHEAD,
        area * calibration.FLOAT_MULT_OVERHEAD,
    )


@dataclass(frozen=True)
class MacModel:
    """One multiply-accumulate unit.

    Attributes:
        input_dtype: Data type of the two multiplication operands.
        accum_dtype: Data type of the accumulator adder; defaults to int32
            for integer inputs and fp32 for float inputs, the common choices
            in the validated chips.
    """

    input_dtype: DataType
    accum_dtype: DataType = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.accum_dtype is None:
            from repro.datatypes import FP32

            default = FP32 if self.input_dtype.is_float else INT32
            object.__setattr__(self, "accum_dtype", default)

    @property
    def accumulator(self) -> AdderModel:
        """The accumulation adder as a standalone model."""
        return AdderModel(self.accum_dtype)

    @property
    def _float_energy_extra(self) -> float:
        if self.input_dtype.is_float:
            return calibration.FLOAT_SYNTHESIS_ENERGY_EXTRA
        return 1.0

    @property
    def _float_area_extra(self) -> float:
        if self.input_dtype.is_float:
            return calibration.FLOAT_SYNTHESIS_AREA_EXTRA
        return 1.0

    def multiply_energy_pj(self, tech: TechNode) -> float:
        """Dynamic energy of the multiply alone (synthesis-calibrated)."""
        energy, _ = _mult_anchor(self.input_dtype)
        return (
            energy
            * calibration.SYNTHESIS_ENERGY_MARGIN
            * self._float_energy_extra
            * tech.energy_scale_from(_reference())
        )

    def energy_per_mac_pj(self, tech: TechNode) -> float:
        """Dynamic energy of one multiply + one accumulate."""
        accumulate = self.accumulator.energy_per_op_pj(tech) * (
            self._float_energy_extra
        )
        return self.multiply_energy_pj(tech) + accumulate

    def area_um2(self, tech: TechNode) -> float:
        """Standard-cell area of multiplier plus accumulator adder."""
        _, area = _mult_anchor(self.input_dtype)
        mult_area = (
            area
            * calibration.SYNTHESIS_AREA_MARGIN
            * tech.area_scale_from(_reference())
        )
        return (
            mult_area + self.accumulator.area_um2(tech)
        ) * self._float_area_extra

    def delay_ns(self, tech: TechNode) -> float:
        """Critical path of the multiply feeding the accumulate."""
        width = self.input_dtype.multiplier_width
        levels = 4.0 * math.log2(max(width, 2)) + 6.0
        if self.input_dtype.is_float:
            levels *= 1.5
        mult_ns = ps_to_ns(levels * tech.fo4_ps)
        return mult_ns + self.accumulator.delay_ns(tech)

    def leakage_w(self, tech: TechNode) -> float:
        """Static power of the full MAC."""
        gates = self.area_um2(tech) / tech.gate_area_um2
        return nw_to_w(gates * tech.gate_leak_nw)


def _reference() -> TechNode:
    return node(REFERENCE_NODE_NM)
