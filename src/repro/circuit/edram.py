"""eDRAM array model.

NeuroMeter's on-chip Mem can select DFF, SRAM, or eDRAM cells (Sec. II-A).
The eDRAM model reuses the full SRAM organization machinery (banks,
subarrays, periphery, H-tree) with 1T1C cell parameters substituted, and
adds the refresh power that logic-process eDRAM retention requires.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuit.sram import SramArray
from repro.tech.node import TechNode
from repro.units import nw_to_w

#: eDRAM destructive reads + write-back lengthen the bank cycle.
_CYCLE_PENALTY = 1.5

#: eDRAM cell leakage relative to an SRAM bit (no cross-coupled inverters).
_CELL_LEAK_RATIO = 0.2


def _edram_view(tech: TechNode) -> TechNode:
    """A technology view whose 'SRAM' cell parameters describe eDRAM cells."""
    return replace(
        tech,
        sram_cell_um2=tech.edram_cell_um2,
        sram_cell_cap_ff=tech.sram_cell_cap_ff * 2.0,  # storage cap on BL
        sram_bit_leak_nw=tech.sram_bit_leak_nw * _CELL_LEAK_RATIO,
    )


@dataclass(frozen=True)
class EdramArray:
    """An eDRAM array with the same organization knobs as :class:`SramArray`."""

    organization: SramArray

    def area_mm2(self, tech: TechNode) -> float:
        """Array area with 1T1C cells."""
        return self.organization.area_mm2(_edram_view(tech))

    def read_energy_pj(self, tech: TechNode) -> float:
        """Read energy including the write-back of the destructive read."""
        view = _edram_view(tech)
        return self.organization.read_energy_pj(
            view
        ) + 0.5 * self.organization.write_energy_pj(view)

    def write_energy_pj(self, tech: TechNode) -> float:
        """Write energy of one block."""
        return self.organization.write_energy_pj(_edram_view(tech))

    def leakage_w(self, tech: TechNode) -> float:
        """Static power: low cell leakage plus periodic refresh."""
        view = _edram_view(tech)
        refresh = nw_to_w(
            self.organization.capacity_bytes
            * 8
            * tech.edram_refresh_nw_per_bit
        )
        return self.organization.leakage_w(view) + refresh

    def access_latency_ns(self, tech: TechNode) -> float:
        """Random read latency."""
        return self.organization.access_latency_ns(_edram_view(tech))

    def random_cycle_ns(self, tech: TechNode) -> float:
        """Bank cycle including write-back."""
        return (
            self.organization.random_cycle_ns(_edram_view(tech))
            * _CYCLE_PENALTY
        )
