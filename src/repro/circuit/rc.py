"""RC networks and the Elmore delay engine.

The paper computes component-level timing with the Elmore delay model
(Elmore, 1948): for an RC tree driven at its root, the delay to a node *k*
is ``sum_i R_i * C_i(downstream)`` over every resistor *i* on the path from
the root to *k*, where ``C_i(downstream)`` is the total capacitance in the
subtree fed through resistor *i*.

Interconnect segments are abstracted into the standard pi-RC model
(Fig. 2(d) of the paper): a distributed wire of total resistance ``R`` and
capacitance ``C`` becomes ``C/2 -- R -- C/2``.

Units: resistance in ohm, capacitance in fF, delay in ns
(``ohm * fF = 1e-6 ns``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.units import OHM_FF_TO_NS


@dataclass
class RCTree:
    """One node of an RC tree.

    Attributes:
        name: Label used when reporting the critical path.
        resistance_ohm: Resistance between this node and its parent (for the
            root this is the driver's output resistance).
        capacitance_ff: Lumped capacitance at this node.
        children: Downstream subtrees.
    """

    name: str
    resistance_ohm: float
    capacitance_ff: float
    children: list["RCTree"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.resistance_ohm < 0:
            raise ConfigurationError(
                f"negative resistance at node {self.name!r}"
            )
        if self.capacitance_ff < 0:
            raise ConfigurationError(
                f"negative capacitance at node {self.name!r}"
            )

    def add(self, child: "RCTree") -> "RCTree":
        """Attach ``child`` and return it (for fluent tree construction)."""
        self.children.append(child)
        return child

    def subtree_capacitance_ff(self) -> float:
        """Total capacitance of this node and everything downstream."""
        return self.capacitance_ff + sum(
            child.subtree_capacitance_ff() for child in self.children
        )

    def nodes(self) -> Iterator["RCTree"]:
        """Yield every node in the tree, depth first, root first."""
        yield self
        for child in self.children:
            yield from child.nodes()


def elmore_delay_ns(root: RCTree, sink: Optional[str] = None) -> float:
    """Elmore delay from the driver at ``root`` to ``sink``.

    Args:
        root: The driven RC tree.  The root's own resistance models the
            driver's output resistance.
        sink: Name of the target node.  ``None`` returns the worst-case
            delay over all leaves (the critical sink).

    Raises:
        KeyError: ``sink`` names no node in the tree.
    """
    delays = elmore_delays_ns(root)
    if sink is None:
        return max(delays.values())
    if sink not in delays:
        raise KeyError(f"no node named {sink!r} in RC tree {root.name!r}")
    return delays[sink]


def elmore_delays_ns(root: RCTree) -> dict[str, float]:
    """Elmore delay from the root driver to every node, keyed by node name."""
    delays: dict[str, float] = {}

    def walk(tree: RCTree, upstream_ns: float) -> None:
        here = upstream_ns + (
            tree.resistance_ohm * tree.subtree_capacitance_ff() * OHM_FF_TO_NS
        )
        delays[tree.name] = here
        for child in tree.children:
            walk(child, here)

    walk(root, 0.0)
    return delays


def pi_segment(
    name: str, resistance_ohm: float, capacitance_ff: float
) -> RCTree:
    """A distributed wire segment abstracted into the pi-RC model.

    Half the wire capacitance lands before the lumped resistance and half
    after, which reproduces the distributed wire's ``0.5 * R * C`` Elmore
    delay when driven directly.
    """
    near = RCTree(f"{name}.near", 0.0, capacitance_ff / 2.0)
    far = RCTree(f"{name}.far", resistance_ohm, capacitance_ff / 2.0)
    near.add(far)
    return near


def rc_ladder(
    name: str,
    segments: int,
    total_resistance_ohm: float,
    total_capacitance_ff: float,
    load_ff: float = 0.0,
) -> RCTree:
    """A uniform RC ladder of ``segments`` stages plus an optional end load.

    Models a wire discretized into equal segments; as ``segments`` grows the
    ladder converges to the distributed-wire Elmore delay
    ``R * C / 2 + R * C_load``.
    """
    if segments < 1:
        raise ConfigurationError(
            f"ladder needs at least one segment, got {segments}"
        )
    r_seg = total_resistance_ohm / segments
    c_seg = total_capacitance_ff / segments
    root = RCTree(f"{name}.0", 0.0, c_seg / 2.0)
    tail = root
    for index in range(1, segments + 1):
        cap = c_seg if index < segments else c_seg / 2.0 + load_ff
        tail = tail.add(RCTree(f"{name}.{index}", r_seg, cap))
    return root


def ladder_delay_ns(
    total_resistance_ohm: float,
    total_capacitance_ff: float,
    load_ff: float = 0.0,
    driver_ohm: float = 0.0,
) -> float:
    """Closed-form Elmore delay of a distributed wire with driver and load.

    ``t = R_drv * (C_wire + C_load) + R_wire * (C_wire / 2 + C_load)`` — the
    limit of :func:`rc_ladder` with infinitely many segments.  Used by the
    array and interconnect models, which only need the scalar delay.
    """
    delay_ohm_ff = driver_ohm * (total_capacitance_ff + load_ff) + (
        total_resistance_ohm * (total_capacitance_ff / 2.0 + load_ff)
    )
    return delay_ohm_ff * OHM_FF_TO_NS


def chain(name: str, stages: Iterable[tuple[float, float]]) -> RCTree:
    """Build a linear RC chain from ``(resistance_ohm, capacitance_ff)`` pairs."""
    stage_list = list(stages)
    if not stage_list:
        raise ConfigurationError("an RC chain needs at least one stage")
    root = RCTree(f"{name}.0", *stage_list[0])
    tail = root
    for index, (res, cap) in enumerate(stage_list[1:], start=1):
        tail = tail.add(RCTree(f"{name}.{index}", res, cap))
    return root
