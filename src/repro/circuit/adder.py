"""Empirical adder model, anchored at 45 nm and scaled by technology node.

The coefficient table reproduces the published per-operation survey numbers
(Horowitz, ISSCC 2014, 45 nm / 0.9 V) for the tabulated formats; other
integer widths use a power-law fit, and other float formats are derived from
the integer fit of their mantissa datapath with a calibrated float overhead.
This mirrors the paper's synthesis-based curve-fit methodology (Sec. II-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datatypes import DataType
from repro.tech import calibration
from repro.tech.node import REFERENCE_NODE_NM, TechNode, node
from repro.units import nw_to_w, ps_to_ns

# (energy_pj, area_um2) at the 45 nm anchor.
_ADD_TABLE = {
    "int8": (0.030, 36.0),
    "int16": (0.055, 67.0),
    "int32": (0.100, 137.0),
    "fp16": (0.400, 1360.0),
    "bf16": (0.300, 1050.0),
    "fp32": (0.900, 4184.0),
}

#: Integer adder scaling exponents (energy ~linear, area ~linear in width).
_INT_ENERGY_EXPONENT = 1.0
_INT_AREA_EXPONENT = 1.0


def _int_add_anchor(bits: int) -> tuple[float, float]:
    """Power-law fit of the integer rows of the anchor table."""
    base_e, base_a = _ADD_TABLE["int8"]
    scale = bits / 8.0
    return (
        base_e * scale**_INT_ENERGY_EXPONENT,
        base_a * scale**_INT_AREA_EXPONENT,
    )


def _anchor(dtype: DataType) -> tuple[float, float]:
    if dtype.name in _ADD_TABLE:
        return _ADD_TABLE[dtype.name]
    if not dtype.is_float:
        return _int_add_anchor(dtype.bits)
    energy, area = _int_add_anchor(dtype.multiplier_width)
    return (
        energy * calibration.FLOAT_ADD_OVERHEAD,
        area * calibration.FLOAT_ADD_OVERHEAD,
    )


@dataclass(frozen=True)
class AdderModel:
    """Area/energy/delay/leakage of one adder of a given data type."""

    dtype: DataType

    def energy_per_op_pj(self, tech: TechNode) -> float:
        """Dynamic energy of one addition (synthesis-calibrated)."""
        energy, _ = _anchor(self.dtype)
        return (
            energy
            * calibration.SYNTHESIS_ENERGY_MARGIN
            * tech.energy_scale_from(_reference())
        )

    def area_um2(self, tech: TechNode) -> float:
        """Standard-cell area of the adder (synthesis-calibrated)."""
        _, area = _anchor(self.dtype)
        return (
            area
            * calibration.SYNTHESIS_AREA_MARGIN
            * tech.area_scale_from(_reference())
        )

    def delay_ns(self, tech: TechNode) -> float:
        """Critical-path delay (carry-lookahead class adder)."""
        levels = 2.0 * math.log2(max(self.dtype.bits, 2)) + 4.0
        if self.dtype.is_float:
            levels *= 1.5
        return ps_to_ns(levels * tech.fo4_ps)

    def leakage_w(self, tech: TechNode) -> float:
        """Static power, proportional to gate-equivalent count."""
        gates = self.area_um2(tech) / tech.gate_area_um2
        return nw_to_w(gates * tech.gate_leak_nw)


def _reference() -> TechNode:
    return node(REFERENCE_NODE_NM)
