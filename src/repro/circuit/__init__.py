"""Circuit-level building blocks.

NeuroMeter maps architectural components onto four kinds of circuit models
(Sec. II-B of the paper): computing arrays, memory arrays, interconnects,
and regular logic.  This package provides those models:

* :mod:`repro.circuit.rc` — RC ladders/trees and the Elmore delay engine.
* :mod:`repro.circuit.gates` — logical-effort gate area/energy/delay.
* :mod:`repro.circuit.dff` — flip-flop banks (pipeline registers, FIFOs).
* :mod:`repro.circuit.adder` / :mod:`repro.circuit.mac` — empirical,
  synthesis-anchored arithmetic models per data type.
* :mod:`repro.circuit.sram` — the CACTI-style array model with the internal
  bank/port optimizer.
* :mod:`repro.circuit.edram` — the eDRAM variant of the array model.
* :mod:`repro.circuit.regfile` — multiported register files.
"""

from repro.circuit.rc import RCTree, elmore_delay_ns, pi_segment, rc_ladder
from repro.circuit.gates import LogicBlock
from repro.circuit.dff import DffBank
from repro.circuit.adder import AdderModel
from repro.circuit.mac import MacModel
from repro.circuit.sram import SramArray, SramRequirements
from repro.circuit.edram import EdramArray
from repro.circuit.regfile import RegisterFile

__all__ = [
    "AdderModel",
    "DffBank",
    "EdramArray",
    "LogicBlock",
    "MacModel",
    "RCTree",
    "RegisterFile",
    "SramArray",
    "SramRequirements",
    "elmore_delay_ns",
    "pi_segment",
    "rc_ladder",
]
