"""CACTI-style SRAM array model with an internal organization optimizer.

NeuroMeter asks the user only for high-level memory parameters — capacity,
block size, target latency, target throughput — and "automatically set[s]
the low-level parameters (such as the number of banks, the number of the
read/write ports) via its internal optimizer" (Sec. II).  This module
implements both halves:

* :class:`SramArray` — the analytical area/energy/latency/leakage model of a
  concrete organization (banks x subarrays x multi-port cells, with
  decoders, bitlines, sense amps, and an H-tree output network), and
* :func:`optimize_sram` — the search over banks, ports, and subarray shape
  that satisfies :class:`SramRequirements` at minimum area.

Units follow :mod:`repro.units` (mm^2, pJ, ns, W).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.circuit.gates import LogicBlock, decoder_gate_count
from repro.circuit.rc import ladder_delay_ns
from repro.tech import calibration
from repro.errors import ConfigurationError, OptimizationError
from repro.tech.node import TechNode
from repro.tech.wire import (
    WireType,
    repeated_wire_delay_ns,
    wire_energy_pj_per_bit,
    wire_params,
)
from repro.units import (
    MiB,
    fj_to_pj,
    mm2_to_um2,
    nw_to_w,
    ps_to_ns,
    um2_to_mm2,
    um_to_mm,
)

#: Redundancy + ECC storage overhead on top of the logical capacity.
ECC_REDUNDANCY_FACTOR = 1.20

#: Linear cell-pitch growth per port beyond the first (extra word/bit lines).
PORT_PITCH_GROWTH = 0.35

#: Area margin for inter-subarray and inter-bank routing.
ARRAY_ROUTING_OVERHEAD = 1.30

#: Read bitline swing as a fraction of Vdd (sense-amp assisted small swing).
READ_SWING = 0.25

#: Sense-amplifier energy per sensed bit at the 45 nm anchor, scaled by node.
SENSE_ENERGY_FJ_45NM = 5.0

#: SRAM cell pull-down resistance used for the bitline Elmore delay.
CELL_ON_RESISTANCE_OHM = 12_000.0

#: Word-line driver output resistance for the Elmore delay.
WORDLINE_DRIVER_OHM = 2_000.0

#: Per-subarray control gates beyond the row decoder.
SUBARRAY_CONTROL_GATES = 400

#: Gate energy (fJ) of the 45 nm anchor node the sense-amp energy scales by.
SENSE_ANCHOR_GATE_ENERGY_FJ = 1.70

#: Aspect ratio (width / height) of a 6T cell.
CELL_ASPECT = 1.45

SUBARRAY_ROW_CHOICES = (64, 128, 256, 512)
MAX_SUBARRAY_COLS = 512
MAX_BANKS = 4096


@dataclass(frozen=True)
class SramRequirements:
    """High-level memory requirements, as a NeuroMeter user supplies them.

    Attributes:
        capacity_bytes: Logical capacity.
        block_bytes: Bytes delivered per port per access.
        target_latency_ns: Access-latency bound; ``None`` means one clock
            cycle at ``freq_ghz``.
        target_read_bandwidth_gbps: Aggregate read throughput the memory
            must sustain (GB/s).
        target_write_bandwidth_gbps: Aggregate write throughput (GB/s).
        freq_ghz: Clock the memory is accessed at.
    """

    capacity_bytes: int
    block_bytes: int
    freq_ghz: float
    target_latency_ns: Optional[float] = None
    target_read_bandwidth_gbps: float = 0.0
    target_write_bandwidth_gbps: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("memory capacity must be positive")
        if self.block_bytes <= 0:
            raise ConfigurationError("memory block size must be positive")
        if self.block_bytes * 8 > self.capacity_bytes * 8:
            raise ConfigurationError("block size exceeds capacity")
        if self.freq_ghz <= 0:
            raise ConfigurationError("memory clock must be positive")

    @property
    def latency_bound_ns(self) -> float:
        """Effective latency target (one cycle when not given explicitly)."""
        if self.target_latency_ns is not None:
            return self.target_latency_ns
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class SramArray:
    """A concrete multi-bank, multi-port SRAM organization.

    Attributes:
        capacity_bytes: Logical capacity of the whole array.
        block_bytes: Bytes per access per port.
        banks: Independently addressable banks.
        read_ports: Read ports per bank.
        write_ports: Write ports per bank.
        subarray_rows: Word lines per subarray.
    """

    capacity_bytes: int
    block_bytes: int
    banks: int = 1
    read_ports: int = 1
    write_ports: int = 1
    subarray_rows: int = 256

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ConfigurationError("bank count must be >= 1")
        if self.read_ports < 1 or self.write_ports < 0:
            raise ConfigurationError("need >= 1 read port and >= 0 write ports")
        if self.subarray_rows < 8:
            raise ConfigurationError("subarray needs at least 8 rows")
        if self.capacity_bytes < self.banks * self.block_bytes:
            raise ConfigurationError(
                "capacity too small for the requested banking"
            )

    # -- geometry ------------------------------------------------------------

    @property
    def total_ports(self) -> int:
        return self.read_ports + self.write_ports

    @property
    def bank_bits(self) -> float:
        """Stored bits per bank including ECC/redundancy."""
        logical = self.capacity_bytes * 8 / self.banks
        return logical * ECC_REDUNDANCY_FACTOR

    @property
    def subarray_cols(self) -> int:
        """Bit lines per subarray (wide blocks split across subarrays)."""
        return min(max(self.block_bytes * 8, 32), MAX_SUBARRAY_COLS)

    @property
    def activated_subarrays(self) -> int:
        """Subarrays accessed in parallel to deliver one block."""
        return max(1, math.ceil(self.block_bytes * 8 / self.subarray_cols))

    @property
    def subarrays_per_bank(self) -> int:
        per_subarray = self.subarray_rows * self.subarray_cols
        return max(
            self.activated_subarrays,
            math.ceil(self.bank_bits / per_subarray),
        )

    def _cell_dims_um(self, tech: TechNode) -> tuple[float, float]:
        """(width, height) of one multi-port cell in um."""
        growth = 1.0 + PORT_PITCH_GROWTH * (self.total_ports - 1)
        area = tech.sram_cell_um2 * growth**2
        height = math.sqrt(area / CELL_ASPECT)
        return (CELL_ASPECT * height, height)

    # -- area ------------------------------------------------------------------

    def _subarray_area_um2(self, tech: TechNode) -> float:
        """One subarray: cells plus row/column periphery."""
        cell_w, cell_h = self._cell_dims_um(tech)
        rows, cols = self.subarray_rows, self.subarray_cols
        cell_area = rows * cols * cell_w * cell_h
        # Column periphery (sense amps, write drivers, precharge, mux) per
        # port pair: ~18 cell-heights tall under every column.
        column_periph = cols * cell_w * (18.0 * cell_h) * max(
            1, self.total_ports
        )
        # Row periphery (decoder + word-line drivers): ~12 cell-widths wide.
        row_periph = rows * cell_h * (12.0 * cell_w)
        control = LogicBlock(
            "subarray-ctrl",
            decoder_gate_count(_log2_int(rows)) + SUBARRAY_CONTROL_GATES,
        )
        return cell_area + column_periph + row_periph + control.gate_count * (
            tech.gate_area_um2
        )

    def _global_routing_factor(self) -> float:
        """Capacity-dependent global routing / redundancy overhead.

        Large arrays spend a growing area fraction on the H-tree spine,
        repeater farms, and redundancy blocks; small arrays do not.
        """
        capacity_mib = self.capacity_bytes / MiB
        if capacity_mib <= 1.0:
            return 1.0
        return 1.0 + calibration.SRAM_CAPACITY_ROUTING_COEF * math.log2(
            capacity_mib
        )

    def area_mm2(self, tech: TechNode) -> float:
        """Total array area including inter-bank routing overhead."""
        per_bank = self.subarrays_per_bank * self._subarray_area_um2(tech)
        total_um2 = (
            self.banks
            * per_bank
            * ARRAY_ROUTING_OVERHEAD
            * self._global_routing_factor()
        )
        return um2_to_mm2(total_um2)

    def bank_area_mm2(self, tech: TechNode) -> float:
        """Area of a single bank (for wire-length estimates)."""
        return self.area_mm2(tech) / self.banks

    # -- energy ------------------------------------------------------------------

    def _bitline_cap_ff(self, tech: TechNode) -> float:
        _, cell_h = self._cell_dims_um(tech)
        length_mm = um_to_mm(self.subarray_rows * cell_h)
        wire = wire_params(tech, WireType.LOCAL)
        return (
            self.subarray_rows * tech.sram_cell_cap_ff
            + length_mm * wire.c_ff_per_mm
        )

    def _wordline_energy_pj(self, tech: TechNode) -> float:
        cell_w, _ = self._cell_dims_um(tech)
        wire = wire_params(tech, WireType.LOCAL)
        length_mm = um_to_mm(self.subarray_cols * cell_w)
        cap_ff = (
            self.subarray_cols * tech.gate_cap_ff * 0.5
            + length_mm * wire.c_ff_per_mm
        )
        return fj_to_pj(cap_ff * tech.vdd_v**2)

    def _htree_energy_pj(self, tech: TechNode, bits: int) -> float:
        """Moving a block between the bank edge and the subarray.

        The average access traverses most of the bank span (data plus the
        address/select fan-out travelling the other way).
        """
        wire = wire_params(tech, WireType.INTERMEDIATE)
        length_mm = 0.9 * math.sqrt(self.bank_area_mm2(tech))
        return bits * wire_energy_pj_per_bit(tech, wire, length_mm)

    def read_energy_pj(self, tech: TechNode) -> float:
        """Dynamic energy of one block read from one bank."""
        bits = self.block_bytes * 8
        bitline = fj_to_pj(
            bits
            * self._bitline_cap_ff(tech)
            * tech.vdd_v
            * (READ_SWING * tech.vdd_v)
        )
        sense = fj_to_pj(
            bits
            * SENSE_ENERGY_FJ_45NM
            * tech.gate_energy_fj
            / SENSE_ANCHOR_GATE_ENERGY_FJ
        )
        decode = self.activated_subarrays * LogicBlock(
            "decode", decoder_gate_count(_log2_int(self.subarray_rows))
            + SUBARRAY_CONTROL_GATES
        ).energy_per_cycle_pj(tech)
        return (
            bitline
            + sense
            + self.activated_subarrays * self._wordline_energy_pj(tech)
            + decode
            + self._htree_energy_pj(tech, bits)
        ) * calibration.SRAM_ACCESS_OVERHEAD

    def write_energy_pj(self, tech: TechNode) -> float:
        """Dynamic energy of one block write (full bitline swing)."""
        bits = self.block_bytes * 8
        bitline = fj_to_pj(
            bits * self._bitline_cap_ff(tech) * tech.vdd_v**2
        )
        decode = self.activated_subarrays * LogicBlock(
            "decode", decoder_gate_count(_log2_int(self.subarray_rows))
            + SUBARRAY_CONTROL_GATES
        ).energy_per_cycle_pj(tech)
        return (
            bitline
            + self.activated_subarrays * self._wordline_energy_pj(tech)
            + decode
            + self._htree_energy_pj(tech, bits)
        ) * calibration.SRAM_ACCESS_OVERHEAD

    def leakage_w(self, tech: TechNode) -> float:
        """Static power: cells (with port growth) plus periphery gates."""
        stored_bits = self.capacity_bytes * 8 * ECC_REDUNDANCY_FACTOR
        port_growth = 1.0 + 0.5 * PORT_PITCH_GROWTH * (self.total_ports - 1)
        cell_leak = nw_to_w(
            stored_bits * tech.sram_bit_leak_nw * port_growth
        )
        periph_area_um2 = (
            mm2_to_um2(self.area_mm2(tech))
            - stored_bits * tech.sram_cell_um2 * port_growth
        )
        periph_gates = max(periph_area_um2, 0.0) / tech.gate_area_um2
        # Periphery is mostly idle wire/drivers; count a third as leaky gates.
        periph_leak = nw_to_w(periph_gates * tech.gate_leak_nw) / 3.0
        return cell_leak + periph_leak

    # -- timing ------------------------------------------------------------------

    def access_latency_ns(self, tech: TechNode) -> float:
        """Random-access read latency: decode + word line + bit line + output."""
        rows, cols = self.subarray_rows, self.subarray_cols
        decode_ns = ps_to_ns((2 + _log2_int(rows)) * tech.fo4_ps)

        cell_w, cell_h = self._cell_dims_um(tech)
        wire = wire_params(tech, WireType.LOCAL)
        wl_len_mm = um_to_mm(cols * cell_w)
        wordline_ns = ladder_delay_ns(
            total_resistance_ohm=wl_len_mm * wire.r_ohm_per_mm,
            total_capacitance_ff=wl_len_mm * wire.c_ff_per_mm
            + cols * tech.gate_cap_ff * 0.5,
            driver_ohm=WORDLINE_DRIVER_OHM,
        )

        bl_len_mm = um_to_mm(rows * cell_h)
        bitline_ns = ladder_delay_ns(
            total_resistance_ohm=bl_len_mm * wire.r_ohm_per_mm,
            total_capacitance_ff=self._bitline_cap_ff(tech),
            driver_ohm=CELL_ON_RESISTANCE_OHM,
        ) * READ_SWING  # sense amps fire at the small-swing point

        sense_ns = ps_to_ns(2.0 * tech.fo4_ps)
        htree = wire_params(tech, WireType.INTERMEDIATE)
        output_ns = repeated_wire_delay_ns(
            tech, htree, 0.5 * math.sqrt(self.bank_area_mm2(tech))
        )
        return decode_ns + wordline_ns + bitline_ns + sense_ns + output_ns

    def random_cycle_ns(self, tech: TechNode) -> float:
        """Minimum time between two accesses to the same bank."""
        # Precharge overlaps the output H-tree; cycle ~= core access path.
        return self.access_latency_ns(tech) * 1.1

    # -- bandwidth ----------------------------------------------------------------

    def read_bandwidth_gbps(self, freq_ghz: float) -> float:
        """Peak aggregate read bandwidth (GB/s) at ``freq_ghz``."""
        return self.banks * self.read_ports * self.block_bytes * freq_ghz

    def write_bandwidth_gbps(self, freq_ghz: float) -> float:
        """Peak aggregate write bandwidth (GB/s) at ``freq_ghz``."""
        effective = self.write_ports if self.write_ports else self.read_ports
        return self.banks * effective * self.block_bytes * freq_ghz


def optimize_sram(requirements: SramRequirements, tech: TechNode) -> SramArray:
    """Search bank/port/subarray organizations and return the smallest one.

    Mirrors NeuroMeter's internal optimizer: every candidate must meet the
    latency bound and both bandwidth targets; ties in area break toward
    lower read energy.  Raises :class:`OptimizationError` when no candidate
    is feasible (e.g. an unreachable latency target).
    """
    best: Optional[tuple[float, float, SramArray]] = None
    for candidate in candidate_organizations(requirements):
        latency = candidate.access_latency_ns(tech)
        if latency > requirements.latency_bound_ns:
            continue
        if (
            candidate.read_bandwidth_gbps(requirements.freq_ghz)
            < requirements.target_read_bandwidth_gbps
        ):
            continue
        if (
            candidate.write_bandwidth_gbps(requirements.freq_ghz)
            < requirements.target_write_bandwidth_gbps
        ):
            continue
        key = (candidate.area_mm2(tech), candidate.read_energy_pj(tech))
        if best is None or key < best[:2]:
            best = (key[0], key[1], candidate)
    if best is None:
        raise OptimizationError(
            f"no SRAM organization meets latency "
            f"{requirements.latency_bound_ns:.3f} ns and bandwidth "
            f"{requirements.target_read_bandwidth_gbps:.1f}R/"
            f"{requirements.target_write_bandwidth_gbps:.1f}W GB/s for "
            f"{requirements.capacity_bytes} bytes"
        )
    return best[2]


def candidate_organizations(
    requirements: SramRequirements,
) -> Iterator[SramArray]:
    """The fixed bank/port/subarray lattice the optimizer searches.

    Public so alternative estimation backends (e.g. the vectorized batch
    kernels) can replicate the search over exactly the same candidates in
    exactly the same order — first-wins tie-breaking depends on the order.
    """
    banks = 1
    while banks <= MAX_BANKS:
        if requirements.capacity_bytes >= banks * requirements.block_bytes:
            for read_ports in (1, 2, 4):
                for write_ports in (1, 2):
                    for rows in SUBARRAY_ROW_CHOICES:
                        yield SramArray(
                            capacity_bytes=requirements.capacity_bytes,
                            block_bytes=requirements.block_bytes,
                            banks=banks,
                            read_ports=read_ports,
                            write_ports=write_ports,
                            subarray_rows=rows,
                        )
        banks *= 2


def _log2_int(value: int) -> int:
    return max(1, int(math.ceil(math.log2(max(value, 2)))))
