"""Text rendering of breakdowns and study tables.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.arch.component import Estimate


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    columns = [
        [str(header)] + [str(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def breakdown_table(
    estimate: Estimate, depth: int = 2, indent: str = "  "
) -> str:
    """Per-component area/power table of an estimate tree."""
    rows: list[list[object]] = []

    def visit(node: Estimate, level: int) -> None:
        rows.append(
            [
                indent * level + node.name,
                f"{node.area_mm2:.2f}",
                f"{node.dynamic_w:.2f}",
                f"{node.leakage_w:.3f}",
                f"{node.cycle_time_ns:.3f}",
            ]
        )
        if level < depth:
            for child in node.children:
                visit(child, level + 1)

    visit(estimate, 0)
    return format_table(
        ["component", "area (mm^2)", "dynamic (W)", "leakage (W)", "cycle (ns)"],
        rows,
    )


def share_ring(
    estimate: Estimate, metric: str = "area", top: Optional[int] = None
) -> str:
    """The paper's ring-chart content as a text list of shares."""
    if metric == "area":
        shares = estimate.area_shares()
    elif metric == "power":
        shares = estimate.power_shares()
    else:
        raise ValueError(f"unknown metric {metric!r} (use 'area'/'power')")
    ordered = sorted(shares.items(), key=lambda item: -item[1])
    if top is not None:
        ordered = ordered[:top]
    return "\n".join(
        f"  {name:<28s} {share:6.1%}" for name, share in ordered
    )


def comparison_table(
    label: str,
    modeled: dict[str, float],
    published: dict[str, float],
    unit: str = "",
) -> str:
    """Modeled-vs-published rows with relative errors."""
    rows = []
    for key in modeled:
        model_value = modeled[key]
        pub_value = published.get(key)
        if pub_value in (None, 0):
            rows.append([key, f"{model_value:.3g}{unit}", "n/a", "n/a"])
        else:
            error = (model_value - pub_value) / pub_value
            rows.append(
                [
                    key,
                    f"{model_value:.3g}{unit}",
                    f"{pub_value:.3g}{unit}",
                    f"{error:+.1%}",
                ]
            )
    return f"{label}\n" + format_table(
        ["quantity", "modeled", "published", "error"], rows
    )
