"""Plain-text reporting of estimate trees and study tables."""

from repro.report.tables import (
    breakdown_table,
    comparison_table,
    format_table,
    share_ring,
)

__all__ = [
    "breakdown_table",
    "comparison_table",
    "format_table",
    "share_ring",
]
