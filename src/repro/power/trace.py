"""External activity-trace interface.

The paper stresses that NeuroMeter "decouples the performance simulation
from the architecture modeling, so that it can be flexibly paired with any
external performance simulation framework" — runtime statistics flow in,
runtime power flows out.  This module is that interface: it parses
activity traces (JSON documents or plain dicts, one record per execution
phase) produced by *any* external simulator, and reduces them to the
activity factors and average power NeuroMeter's runtime model consumes.

Trace schema (one record per phase)::

    {"phases": [
        {"name": "conv1", "duration_s": 1.2e-4,
         "tu_utilization": 0.8, "mem_read_gbps": 300.0, ...},
        ...
    ]}

Unknown keys are rejected (catching schema typos); missing keys take the
:class:`~repro.power.runtime.ActivityFactors` defaults.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.errors import ConfigurationError
from repro.power.runtime import (
    ActivityFactors,
    RuntimePowerReport,
    runtime_power,
)

_ACTIVITY_FIELDS = {
    field.name for field in dataclasses.fields(ActivityFactors)
}


@dataclass(frozen=True)
class TracePhase:
    """One phase of an external trace: how long, and how busy.

    Attributes:
        name: Phase label (layer, kernel, ...).
        duration_s: Wall-clock duration of the phase.
        activity: Per-component activity during the phase.
    """

    name: str
    duration_s: float
    activity: ActivityFactors

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"phase {self.name!r} needs a positive duration"
            )


def parse_trace(
    document: Union[str, Mapping, Path]
) -> list[TracePhase]:
    """Parse a trace document into phases.

    Accepts a JSON string, a pre-parsed mapping, or a path to a JSON file.
    """
    if isinstance(document, Path):
        document = document.read_text()
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"trace is not valid JSON: {error}"
            ) from error
    if not isinstance(document, Mapping) or "phases" not in document:
        raise ConfigurationError(
            "a trace document needs a top-level 'phases' list"
        )
    phases = []
    for index, record in enumerate(document["phases"]):
        if "duration_s" not in record:
            raise ConfigurationError(
                f"trace phase #{index} is missing 'duration_s'"
            )
        name = record.get("name", f"phase{index}")
        activity_keys = {
            key: value
            for key, value in record.items()
            if key not in ("name", "duration_s")
        }
        unknown = set(activity_keys) - _ACTIVITY_FIELDS
        if unknown:
            raise ConfigurationError(
                f"trace phase {name!r} has unknown fields: "
                f"{sorted(unknown)}"
            )
        phases.append(
            TracePhase(
                name=name,
                duration_s=float(record["duration_s"]),
                activity=ActivityFactors(**activity_keys),
            )
        )
    if not phases:
        raise ConfigurationError("trace contains no phases")
    return phases


def average_activity(phases: Sequence[TracePhase]) -> ActivityFactors:
    """Time-weighted average of the phases' activity factors."""
    if not phases:
        raise ConfigurationError("cannot average an empty trace")
    total = sum(phase.duration_s for phase in phases)

    def mean(field_name: str) -> float:
        return (
            sum(
                getattr(phase.activity, field_name) * phase.duration_s
                for phase in phases
            )
            / total
        )

    return ActivityFactors(
        **{name: mean(name) for name in _ACTIVITY_FIELDS}
    )


def trace_power(
    chip: Chip,
    ctx: ModelContext,
    phases: Sequence[TracePhase],
) -> tuple[RuntimePowerReport, dict[str, float]]:
    """Average runtime power over a trace, plus per-phase totals.

    Returns:
        The time-weighted average report, and a per-phase map of total
        watts (for phase-level energy accounting).
    """
    per_phase = {
        phase.name: runtime_power(chip, ctx, phase.activity).total_w
        for phase in phases
    }
    average = runtime_power(chip, ctx, average_activity(phases))
    return average, per_phase


def trace_energy_j(
    chip: Chip, ctx: ModelContext, phases: Sequence[TracePhase]
) -> float:
    """Total energy of the traced execution."""
    return sum(
        runtime_power(chip, ctx, phase.activity).total_w * phase.duration_s
        for phase in phases
    )
