"""Runtime power: chip power while running a specific workload.

TDP answers "what must the package dissipate in the worst case"; runtime
power answers "what does this model burn on this chip".  NeuroMeter takes
per-component activity factors (from an external performance simulator —
our :mod:`repro.perf` — or from published measurements, as in the Eyeriss
validation of Fig. 5(c-d)) and combines them with the per-access energies
of the architectural models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w

#: Fraction of rated DRAM device power drawn with no traffic (refresh,
#: clocking, background).
_DRAM_IDLE_FRACTION = 0.2

#: Fraction of full-array energy burned per occupied-but-useless MAC-cycle
#: (pipeline fill/drain: operands move, results are not yet valid).
_FILL_ENERGY_FRACTION = 0.6


@dataclass(frozen=True)
class ActivityFactors:
    """Workload activity, as a performance simulator reports it.

    All ``*_utilization`` values are the fraction of peak activity over the
    measured window (compute: active MACs / total MACs / cycle); traffic is
    in GB/s sustained over the window.

    Attributes:
        tu_utilization: Systolic-array MAC utilization in [0, 1].
        tu_occupancy: Fraction of cycles the TU is clocked at all (idle
            cycles below this are clock gated).
        rt_utilization / vu_utilization: Same for RT and VU.
        su_activity: Scalar-unit issue rate.
        mem_read_gbps / mem_write_gbps: Aggregate on-chip Mem traffic.
        noc_gbps: Aggregate traffic crossing the NoC.
        offchip_gbps: Off-chip DRAM traffic.
        vreg_utilization: VReg port activity; defaults to the TU/VU max.
    """

    tu_utilization: float = 0.0
    tu_occupancy: float = 1.0
    rt_utilization: float = 0.0
    vu_utilization: float = 0.0
    su_activity: float = 0.3
    mem_read_gbps: float = 0.0
    mem_write_gbps: float = 0.0
    noc_gbps: float = 0.0
    offchip_gbps: float = 0.0
    vreg_utilization: float = -1.0

    def __post_init__(self) -> None:
        for name in (
            "tu_utilization",
            "tu_occupancy",
            "rt_utilization",
            "vu_utilization",
            "su_activity",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        for name in (
            "mem_read_gbps",
            "mem_write_gbps",
            "noc_gbps",
            "offchip_gbps",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def effective_vreg_utilization(self) -> float:
        if self.vreg_utilization >= 0:
            return min(self.vreg_utilization, 1.0)
        return max(self.tu_utilization, self.vu_utilization)


@dataclass(frozen=True)
class RuntimePowerReport:
    """Per-component runtime power in watts.

    Attributes:
        components: Dynamic watts per component label.
        leakage_w: Whole-chip static power.
    """

    components: dict[str, float] = field(default_factory=dict)
    leakage_w: float = 0.0

    @property
    def dynamic_w(self) -> float:
        return sum(self.components.values())

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w

    def share(self, component: str) -> float:
        """Fraction of total power drawn by one component."""
        if self.total_w <= 0:
            return 0.0
        return self.components.get(component, 0.0) / self.total_w


def runtime_power(
    chip: Chip, ctx: ModelContext, activity: ActivityFactors
) -> RuntimePowerReport:
    """Runtime power of ``chip`` under ``activity``.

    Clock-network overhead is amortized into each component (the paper does
    the same, Sec. II-C); leakage is counted once for the whole chip from
    the TDP estimate tree.
    """
    core = chip.core
    cfg = chip.config
    overhead = calibration.CLOCK_NETWORK_OVERHEAD
    components: dict[str, float] = {}

    if core.tensor_unit is not None:
        per_tu = core.tensor_unit.energy_per_active_cycle_pj(ctx)
        count = cfg.cores * cfg.core.tensor_units
        active = dynamic_power_w(per_tu, ctx.freq_ghz) * (
            activity.tu_utilization
        )
        # Fill/drain and stall cycles still clock the array with operands
        # in flight — the energy waste that grows with TU length.
        fill = (
            dynamic_power_w(per_tu, ctx.freq_ghz)
            * _FILL_ENERGY_FRACTION
            * max(activity.tu_occupancy - activity.tu_utilization, 0.0)
        )
        components["tensor units"] = count * (active + fill)

    if core.reduction_tree is not None:
        per_rt = core.reduction_tree.energy_per_active_cycle_pj(ctx)
        count = cfg.cores * cfg.core.reduction_trees
        components["reduction trees"] = (
            count
            * dynamic_power_w(per_rt, ctx.freq_ghz)
            * activity.rt_utilization
        )

    per_vu = core.vector_unit.energy_per_active_cycle_pj(ctx)
    components["vector units"] = (
        cfg.cores
        * dynamic_power_w(per_vu, ctx.freq_ghz)
        * activity.vu_utilization
    )

    per_vreg = core.vreg.energy_per_active_cycle_pj(ctx)
    components["vector register files"] = (
        cfg.cores
        * dynamic_power_w(per_vreg, ctx.freq_ghz)
        * activity.effective_vreg_utilization
    )

    if core.scalar_unit is not None:
        per_su = core.scalar_unit.energy_per_active_cycle_pj(ctx)
        components["scalar units"] = (
            cfg.cores
            * dynamic_power_w(per_su, ctx.freq_ghz)
            * activity.su_activity
        )

    memory = core.memory(ctx)
    block = memory.config.block_bytes
    read_rate_ghz = activity.mem_read_gbps / block  # block accesses / ns
    write_rate_ghz = activity.mem_write_gbps / block
    components["on-chip memory"] = (
        read_rate_ghz * memory.read_energy_pj(ctx)
        + write_rate_ghz * memory.write_energy_pj(ctx)
    ) * 1e-3 * overhead
    for name, extra_cfg in cfg.core.extra_memories:
        # Extra memories see traffic proportional to their configured
        # bandwidth targets relative to the main Mem.
        components.setdefault(name, 0.0)

    if cfg.cores > 1:
        noc = chip.noc(ctx)
        components["network-on-chip"] = (
            activity.noc_gbps * noc.energy_per_byte_pj(ctx) * 1e-3
        )

    leakage = chip.estimate(ctx).leakage_w
    controller = chip.memory_controller()
    if controller is not None:
        interface_w = (
            activity.offchip_gbps * controller.energy_per_byte_pj() * 1e-3
        )
        # DRAM device power scales with traffic on top of an idle floor;
        # the rated (worst-case) draw only enters the TDP.
        device_rated = controller.device_power_w()
        if device_rated > 0:
            peak_gbps = max(chip.config.offchip_bandwidth_gbps, 1e-9)
            duty = min(activity.offchip_gbps / peak_gbps, 1.0)
            interface_w += device_rated * (
                _DRAM_IDLE_FRACTION
                + (1.0 - _DRAM_IDLE_FRACTION) * duty
            )
            leakage -= device_rated  # rated draw was carried as static
        components["off-chip interface"] = interface_w

    return RuntimePowerReport(
        components=components, leakage_w=max(leakage, 0.0)
    )
