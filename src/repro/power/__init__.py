"""Runtime power analysis from workload activity factors."""

from repro.power.runtime import (
    ActivityFactors,
    RuntimePowerReport,
    runtime_power,
)
from repro.power.trace import (
    TracePhase,
    average_activity,
    parse_trace,
    trace_energy_j,
    trace_power,
)

__all__ = [
    "ActivityFactors",
    "RuntimePowerReport",
    "TracePhase",
    "average_activity",
    "parse_trace",
    "runtime_power",
    "trace_energy_j",
    "trace_power",
]
