"""Stable, content-addressed cache keys for model configs and contexts.

A cache key must satisfy three properties the built-in ``hash()`` does not:

* **Content addressing** — two structurally equal configs produce the same
  key even when they are distinct objects built in different processes.
* **Determinism across restarts** — no reliance on ``PYTHONHASHSEED``,
  ``id()``, or dict insertion order.
* **Invalidation on version change** — keys are salted with the package
  version, so a model change (which ships as a version bump) never reuses
  stale on-disk entries.

:func:`canonicalize` lowers an object graph — dataclasses, enums, containers,
and plain model objects — into nested tuples of primitives;
:func:`stable_hash` serializes that structure and hashes it with SHA-256.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import types
from typing import Any

from repro.errors import ConfigurationError

#: Recursion guard: configs are shallow trees; anything deeper is a cycle.
_MAX_DEPTH = 64


def package_version() -> str:
    """The ``repro`` package version used as the cache-key salt.

    Imported lazily so :mod:`repro.cache` stays importable from the bottom
    of the layer stack without a circular import.
    """
    import repro

    return getattr(repro, "__version__", "0")


def canonicalize(obj: Any, _depth: int = 0) -> Any:
    """Lower an object into a deterministic nested-tuple structure.

    Handles primitives, enums, dataclasses, tuples/lists/sets/dicts, and
    plain objects (via their public ``vars()``, which skips derived caches
    stored under ``_``-prefixed attributes).  Mapping entries are sorted by
    the repr of their canonical key, so insertion order never leaks into
    the cache key.

    Raises:
        ConfigurationError: the object cannot be canonicalized (e.g. a
            function, an open file, or a cyclic structure).
    """
    if _depth > _MAX_DEPTH:
        raise ConfigurationError(
            "cache key derivation exceeded the nesting limit "
            "(cyclic model object?)"
        )
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        # repr() is the shortest round-trippable form — stable across
        # processes and platforms for IEEE-754 doubles.
        return ("float", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__qualname__, obj.name)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            "dataclass",
            type(obj).__qualname__,
            tuple(
                (f.name, canonicalize(getattr(obj, f.name), _depth + 1))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, (tuple, list)):
        return ("seq", tuple(canonicalize(v, _depth + 1) for v in obj))
    if isinstance(obj, (set, frozenset)):
        members = [canonicalize(v, _depth + 1) for v in obj]
        return ("set", tuple(sorted(members, key=repr)))
    if isinstance(obj, dict):
        items = [
            (canonicalize(k, _depth + 1), canonicalize(v, _depth + 1))
            for k, v in obj.items()
        ]
        return ("map", tuple(sorted(items, key=lambda kv: repr(kv[0]))))
    if isinstance(
        obj,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.ModuleType,
            type,
        ),
    ):
        # Functions and modules have a (often empty) __dict__, which would
        # silently collapse distinct behaviors onto one key.
        raise ConfigurationError(
            f"cannot derive a cache key from {obj!r}"
        )
    try:
        state = vars(obj)
    except TypeError as error:
        raise ConfigurationError(
            f"cannot derive a cache key from {type(obj).__qualname__}"
        ) from error
    public = [
        (name, canonicalize(value, _depth + 1))
        for name, value in state.items()
        if not name.startswith("_")
    ]
    return ("object", type(obj).__qualname__, tuple(sorted(public)))


def stable_hash(*parts: Any) -> str:
    """A hex SHA-256 digest of the canonical form of ``parts``.

    The digest is salted with :func:`package_version`, so every released
    model change starts from an empty (disk) cache.
    """
    canon = tuple(canonicalize(part) for part in parts)
    payload = repr((package_version(), canon)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


#: Short-digest length used in manifests and human-facing filenames.
SHORT_DIGEST_LEN = 16


def short_hash(*parts: Any, length: int = SHORT_DIGEST_LEN) -> str:
    """A truncated :func:`stable_hash`, for manifests and filenames.

    16 hex chars (64 bits) keeps shard manifests and their derived
    filenames readable while leaving collision odds negligible at the
    scale of sweeps per repository; the full digest remains available
    where keys index unbounded caches.
    """
    if length < 8 or length > 64:
        raise ConfigurationError(
            f"short hash length must be in [8, 64], got {length}"
        )
    return stable_hash(*parts)[:length]
