"""Bounded, stats-tracking estimate cache with an optional on-disk layer.

One process-wide :class:`EstimateCache` instance backs every
:func:`repro.arch.component.cached_estimate` call.  The in-memory layer is a
plain LRU (an ``OrderedDict`` under a lock); the optional disk layer stores
pickled values under a directory keyed by the content hash, which already
carries the package version, so a version bump naturally invalidates it.

Sweep workers forked from a warmed parent inherit the in-memory layer by
copy-on-write — that is how :func:`repro.dse.engine.run_sweep` pre-seeds
the substrate once instead of recomputing it in every worker.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import ConfigurationError

#: Default in-memory entry bound — the Fig. 8 study touches a few hundred
#: distinct (component, context) pairs, so this never evicts in practice.
DEFAULT_MAXSIZE = 4096

#: Environment switches honoured at process start.
ENV_DISABLE = "NEUROMETER_CACHE"  # "0" disables
ENV_DISK_DIR = "NEUROMETER_CACHE_DIR"
ENV_MAXSIZE = "NEUROMETER_CACHE_SIZE"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
        }

    def delta_since(self, before: dict) -> dict:
        """Counter increments since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {name: now[name] - before.get(name, 0) for name in now}


@dataclass
class _Totals:
    """Mutable accumulator for merging per-point stat deltas."""

    counters: dict = field(default_factory=dict)

    def add(self, delta: Optional[dict]) -> None:
        if not delta:
            return
        for name, value in delta.items():
            if isinstance(value, (int, float)):
                self.counters[name] = self.counters.get(name, 0) + value


class EstimateCache:
    """A bounded LRU mapping content hashes to modeled results.

    Args:
        maxsize: In-memory entry bound; the least recently used entry is
            evicted past it.
        disk_path: Optional directory for the persistent layer.  Misses
            fall through to disk before recomputing; stores write through.
            Disk I/O failures are swallowed — the cache is an accelerator,
            never a correctness dependency.
        enabled: Start disabled to make the cache a strict no-op.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        disk_path: Optional[str] = None,
        enabled: bool = True,
    ):
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self.maxsize = maxsize
        self.disk_path = os.fspath(disk_path) if disk_path else None
        self.enabled = enabled
        self.stats = CacheStats()
        #: Corrupt disk entries renamed to ``*.corrupt`` (kept out of
        #: :class:`CacheStats` so snapshot/delta comparisons are stable).
        self.quarantined = 0
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # -- core operations ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> tuple[bool, Any]:
        """Look one key up; returns ``(hit, value)`` and counts the outcome."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True, self._entries[key]
            self.stats.misses += 1
        value = self._disk_read(key)
        if value is not _MISS:
            with self._lock:
                self.stats.disk_hits += 1
            self._store_memory(key, value)
            return True, value
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Insert a freshly computed value (write-through to disk)."""
        self._store_memory(key, value)
        with self._lock:
            self.stats.stores += 1
        self._disk_write(key, value)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """The memoization primitive the decorator uses."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop the in-memory layer (the disk layer is left untouched)."""
        with self._lock:
            self._entries.clear()

    def _store_memory(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._evict_over_bound()

    def _evict_over_bound(self) -> None:
        with self._lock:
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # -- disk layer ---------------------------------------------------------

    def _disk_file(self, key: str) -> str:
        assert self.disk_path is not None
        return os.path.join(self.disk_path, key[:2], key + ".pkl")

    def _disk_read(self, key: str) -> Any:
        if self.disk_path is None:
            return _MISS
        try:
            with open(self._disk_file(key), "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return _MISS  # plain miss: nothing on disk for this key
        except Exception:
            # A file exists but does not unpickle (truncated write,
            # garbage, version-skewed payload).  Left in place it would
            # be re-read and re-fail on every miss for this key, so
            # quarantine it: rename to ``*.corrupt`` (atomic, keeps the
            # evidence for inspection) and let the slot be rewritten by
            # the next store.
            self._quarantine(key)
            return _MISS

    def _quarantine(self, key: str) -> None:
        target = self._disk_file(key)
        try:
            os.replace(target, target + ".corrupt")
        except OSError:
            # Lost a race with another process quarantining or
            # rewriting the entry; either way the bad file is gone.
            pass
        else:
            self.quarantined += 1
            warnings.warn(
                f"estimate cache: quarantined corrupt entry "
                f"{target} -> {os.path.basename(target)}.corrupt",
                RuntimeWarning,
                stacklevel=3,
            )

    def _disk_write(self, key: str, value: Any) -> None:
        if self.disk_path is None:
            return
        target = self._disk_file(key)
        tmp = f"{target}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh)
            os.replace(tmp, target)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass


class _Miss:
    """Sentinel distinguishing a disk miss from a cached ``None``."""


_MISS = _Miss()


# -- the process-wide default instance -----------------------------------------


def _cache_from_environment() -> EstimateCache:
    maxsize = DEFAULT_MAXSIZE
    raw_size = os.environ.get(ENV_MAXSIZE)
    if raw_size:
        try:
            maxsize = max(1, int(raw_size))
        except ValueError:
            pass
    return EstimateCache(
        maxsize=maxsize,
        disk_path=os.environ.get(ENV_DISK_DIR) or None,
        enabled=os.environ.get(ENV_DISABLE, "1") != "0",
    )


_GLOBAL_CACHE: EstimateCache = _cache_from_environment()
_GLOBAL_LOCK = threading.Lock()


def get_estimate_cache() -> EstimateCache:
    """The process-wide cache every cached model method consults."""
    return _GLOBAL_CACHE


def configure_estimate_cache(
    *,
    enabled: Optional[bool] = None,
    maxsize: Optional[int] = None,
    disk_path: Optional[str] = None,
) -> EstimateCache:
    """Adjust the process-wide cache in place; returns it.

    Changing ``maxsize`` re-bounds the existing entries (evicting the
    oldest past the new limit); changing ``disk_path`` redirects the
    persistent layer without touching memory.
    """
    cache = _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        if enabled is not None:
            cache.enabled = enabled
        if maxsize is not None:
            if maxsize < 1:
                raise ConfigurationError(
                    f"cache maxsize must be >= 1, got {maxsize}"
                )
            cache.maxsize = maxsize
            cache._evict_over_bound()
        if disk_path is not None:
            cache.disk_path = os.fspath(disk_path) or None
    return cache


def reset_estimate_cache() -> EstimateCache:
    """Replace the process-wide cache with a fresh one (tests, benchmarks)."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        _GLOBAL_CACHE = _cache_from_environment()
    return _GLOBAL_CACHE


@contextmanager
def estimate_cache_disabled() -> Iterator[None]:
    """Temporarily bypass the cache (uncached baselines, A/B checks)."""
    cache = _GLOBAL_CACHE
    previous = cache.enabled
    cache.enabled = False
    try:
        yield
    finally:
        cache.enabled = previous
