"""Content-addressed memoization for the modeling hot path.

The analytical models are pure functions of ``(component config, ModelContext)``,
so their results can be reused across design points, sweeps, and — thanks to
fork-based worker pools — across processes.  This package provides the two
halves of that reuse:

* :mod:`repro.cache.keys` — canonical, content-addressed cache keys derived
  from dataclass configs and model objects (stable across dict ordering and
  process restarts, salted with the package version).
* :mod:`repro.cache.store` — a bounded, stats-tracking in-process LRU with an
  optional on-disk layer, exposed through a process-wide default instance.

The :func:`repro.arch.component.cached_estimate` decorator wires component
``estimate()`` methods through the default store; see
``docs/estimate_cache.md`` for the key-derivation and invalidation rules.
"""

from repro.cache.keys import canonicalize, stable_hash
from repro.cache.store import (
    CacheStats,
    EstimateCache,
    configure_estimate_cache,
    estimate_cache_disabled,
    get_estimate_cache,
    reset_estimate_cache,
)

__all__ = [
    "CacheStats",
    "EstimateCache",
    "canonicalize",
    "configure_estimate_cache",
    "estimate_cache_disabled",
    "get_estimate_cache",
    "reset_estimate_cache",
    "stable_hash",
]
