"""Performance simulation: the reproduction's TF-Sim substitute.

The paper pairs NeuroMeter with TF-Sim, an (unpublished) graph-level
performance simulator.  This package provides the equivalent: a
computational-graph IR (:mod:`repro.perf.graph`, :mod:`repro.perf.ops`),
systolic-array tiling and scheduling (:mod:`repro.perf.mapping`),
XLA-style graph optimizations (:mod:`repro.perf.optimizations`), the
simulator that produces latency/throughput/utilization and activity
factors (:mod:`repro.perf.simulator`), and the Sec. IV sparse roofline
model (:mod:`repro.perf.roofline`).
"""

from repro.perf.graph import Graph, LayerNode
from repro.perf.ops import (
    Activation,
    Concat,
    Conv2d,
    DepthwiseConv2d,
    Elementwise,
    Gemm,
    GlobalPool,
    MatMul,
    OpCost,
    Pool,
    Shape,
)
from repro.perf.optimizations import OptimizationConfig
from repro.perf.simulator import SimulationResult, Simulator
from repro.perf.roofline import RooflineInputs, SparseRoofline
from repro.perf.training import TrainingEstimate, estimate_training_step
from repro.perf.bound_analysis import bound_report, summarize_bounds

__all__ = [
    "Activation",
    "Concat",
    "Conv2d",
    "DepthwiseConv2d",
    "Elementwise",
    "Gemm",
    "GlobalPool",
    "Graph",
    "LayerNode",
    "MatMul",
    "OpCost",
    "OptimizationConfig",
    "Pool",
    "RooflineInputs",
    "Shape",
    "SimulationResult",
    "Simulator",
    "TrainingEstimate",
    "bound_report",
    "summarize_bounds",
    "estimate_training_step",
    "SparseRoofline",
]
