"""The Sec. IV sparse/dense roofline model, verbatim.

The paper's equations::

    t_d = max(t_d_comp, t_d_bw) = max(C / F, (S_V + S_W) / B)
    t_s = max(t_s_comp, t_s_bw) = max(alpha * y * C / F,
                                      (S_V + beta * x * S_W) / B)
    gain = (TOPS/Watt)_s / (TOPS/Watt)_d = (Power_d * t_d) / (Power_s * t_s)

where C is the dense MV's operations, S_V / S_W the vector / weight bytes,
F the compute rate, B the memory bandwidth, x the non-zero ratio, y the
compute-reduction factor from block/vector zero-skipping, alpha the sparse
compute overhead (1.0: CSR decode overlaps compute), and beta the CSR
storage expansion per retained weight byte (2.0-2.5 in the case study).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RooflineInputs:
    """Workload and machine parameters of the roofline model.

    Attributes:
        compute_ops: C — operations of the dense matrix-vector product.
        vector_bytes: S_V — batched input/output vector bytes.
        weight_bytes: S_W — dense weight-matrix bytes.
        compute_ops_per_s: F — the accelerator's compute rate (ops/s).
        bandwidth_bytes_per_s: B — memory bandwidth (bytes/s).
    """

    compute_ops: float
    vector_bytes: float
    weight_bytes: float
    compute_ops_per_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        for name in (
            "compute_ops",
            "vector_bytes",
            "weight_bytes",
            "compute_ops_per_s",
            "bandwidth_bytes_per_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class SparseRoofline:
    """Roofline evaluator for one accelerator + SpMV microbenchmark.

    Attributes:
        inputs: Machine/workload parameters.
        alpha: Sparse compute overhead (1.0 assumes CSR decode overlaps).
        beta: CSR storage overhead factor on retained weights.
    """

    inputs: RooflineInputs
    alpha: float = 1.0
    beta: float = 2.25

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if self.beta < 1.0:
            raise ConfigurationError("beta must be >= 1 (CSR adds overhead)")

    # -- dense ------------------------------------------------------------

    @property
    def dense_compute_time_s(self) -> float:
        return self.inputs.compute_ops / self.inputs.compute_ops_per_s

    @property
    def dense_bandwidth_time_s(self) -> float:
        return (
            self.inputs.vector_bytes + self.inputs.weight_bytes
        ) / self.inputs.bandwidth_bytes_per_s

    @property
    def dense_time_s(self) -> float:
        """t_d = max(t_d_comp, t_d_bw)."""
        return max(self.dense_compute_time_s, self.dense_bandwidth_time_s)

    def dense_compute_bound(self) -> bool:
        """Whether the dense MV is compute (rather than bandwidth) bound."""
        return self.dense_compute_time_s >= self.dense_bandwidth_time_s

    # -- sparse ------------------------------------------------------------

    def sparse_compute_time_s(self, y: float) -> float:
        """t_s_comp = alpha * y * C / F."""
        self._check_fraction("y", y)
        return self.alpha * y * self.inputs.compute_ops / (
            self.inputs.compute_ops_per_s
        )

    def sparse_bandwidth_time_s(self, x: float) -> float:
        """t_s_bw = (S_V + beta * x * S_W) / B."""
        self._check_fraction("x", x)
        return (
            self.inputs.vector_bytes + self.beta * x * self.inputs.weight_bytes
        ) / self.inputs.bandwidth_bytes_per_s

    def sparse_time_s(self, x: float, y: float) -> float:
        """t_s = max(t_s_comp, t_s_bw)."""
        return max(
            self.sparse_compute_time_s(y), self.sparse_bandwidth_time_s(x)
        )

    def sparse_compute_bound(self, x: float, y: float) -> bool:
        """Whether the SpMV is compute bound at this sparsity."""
        return self.sparse_compute_time_s(y) >= (
            self.sparse_bandwidth_time_s(x)
        )

    # -- efficiency gain ------------------------------------------------------

    def energy_efficiency_gain(
        self, x: float, y: float, power_dense_w: float, power_sparse_w: float
    ) -> float:
        """(TOPS/Watt)_s / (TOPS/Watt)_d = (P_d * t_d) / (P_s * t_s)."""
        if power_dense_w <= 0 or power_sparse_w <= 0:
            raise ConfigurationError("powers must be positive")
        return (power_dense_w * self.dense_time_s) / (
            power_sparse_w * self.sparse_time_s(x, y)
        )

    @staticmethod
    def _check_fraction(name: str, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ConfigurationError(
                f"{name} must be in (0, 1], got {value}"
            )
