"""Operators of the computational-graph IR.

Each operator knows its output shape, parameter count, and per-sample cost
(MACs, vector ops, and — when it is matrix-shaped — the im2col GEMM
dimensions the systolic mapping consumes).  Shapes are per-sample feature
maps ``(height, width, channels)``; the batch dimension is applied by the
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Per-sample feature-map shape: (height, width, channels).
Shape = Tuple[int, int, int]


@dataclass(frozen=True)
class Gemm:
    """A dense matrix multiplication of (m x k) by (k x n)."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.k < 1 or self.n < 1:
            raise ConfigurationError(f"invalid GEMM dims {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    def scaled_m(self, factor: int) -> "Gemm":
        """The same GEMM with the row dimension scaled (batching)."""
        return Gemm(self.m * factor, self.k, self.n)


@dataclass(frozen=True)
class OpCost:
    """Per-sample cost of one operator.

    Attributes:
        macs: Multiply-accumulates on the tensor path.
        vector_ops: Element operations on the vector path (activations,
            pooling, eltwise, depthwise convolutions).
        params_bytes: Weight bytes (int8 quantized unless stated).
        input_bytes / output_bytes: Activation traffic per sample.
        gemm: The im2col GEMM when the op maps onto a TU; ``None`` for
            vector-path ops.
    """

    macs: int = 0
    vector_ops: int = 0
    params_bytes: int = 0
    input_bytes: int = 0
    output_bytes: int = 0
    gemm: Optional[Gemm] = None


def _conv_out(size: int, kernel: int, stride: int, same_pad: bool) -> int:
    if same_pad:
        return math.ceil(size / stride)
    return (size - kernel) // stride + 1


def _volume(shape: Shape) -> int:
    h, w, c = shape
    return h * w * c


class Operator:
    """Base operator interface."""

    def output_shape(self, input_shape: Shape) -> Shape:
        raise NotImplementedError

    def cost(self, input_shape: Shape) -> OpCost:
        raise NotImplementedError


@dataclass(frozen=True)
class Conv2d(Operator):
    """Standard 2D convolution, mapped to a GEMM by im2col.

    Attributes:
        out_channels: Output feature maps.
        kernel: Kernel height (and width unless ``kernel_w`` is given).
        kernel_w: Kernel width for rectangular kernels (Inception's 1x7 /
            7x1 factorized convolutions); ``None`` means square.
        stride: Stride in both dimensions.
        same_pad: SAME (True) or VALID (False) padding.
        groups: Grouped convolution (AlexNet's two-GPU splits); the
            reduction dimension sees ``c_in / groups`` channels.
        weightless: The "weights" are activations produced at runtime
            (attention score/context GEMMs); no parameter storage.
    """

    out_channels: int
    kernel: int = 3
    kernel_w: Optional[int] = None
    stride: int = 1
    same_pad: bool = True
    groups: int = 1
    weightless: bool = False

    def __post_init__(self) -> None:
        if self.out_channels < 1 or self.kernel < 1 or self.stride < 1:
            raise ConfigurationError(f"invalid Conv2d {self}")
        if self.kernel_w is not None and self.kernel_w < 1:
            raise ConfigurationError(f"invalid kernel width in {self}")
        if self.groups < 1 or self.out_channels % self.groups:
            raise ConfigurationError(f"invalid groups in {self}")

    @property
    def _kw(self) -> int:
        return self.kernel_w if self.kernel_w is not None else self.kernel

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, _ = input_shape
        return (
            _conv_out(h, self.kernel, self.stride, self.same_pad),
            _conv_out(w, self._kw, self.stride, self.same_pad),
            self.out_channels,
        )

    def cost(self, input_shape: Shape) -> OpCost:
        _, _, c_in = input_shape
        if c_in % self.groups:
            raise ConfigurationError(
                f"{c_in} input channels not divisible by {self.groups} groups"
            )
        oh, ow, _ = self.output_shape(input_shape)
        k = self.kernel * self._kw * (c_in // self.groups)
        gemm = Gemm(m=oh * ow * self.groups, k=k, n=self.out_channels // (
            self.groups
        ))
        return OpCost(
            macs=gemm.macs,
            params_bytes=0 if self.weightless else k * self.out_channels,
            input_bytes=_volume(input_shape),
            output_bytes=oh * ow * self.out_channels,
            gemm=gemm,
        )


@dataclass(frozen=True)
class DepthwiseConv2d(Operator):
    """Depthwise convolution: one filter per channel (separable convs).

    Runs on the vector path: each output element is a small K-tap dot
    product with no cross-channel reduction, which maps poorly onto a 2D
    systolic array (the paper's NasNet workload is full of these).
    """

    kernel: int = 3
    stride: int = 1
    same_pad: bool = True
    multiplier: int = 1

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        return (
            _conv_out(h, self.kernel, self.stride, self.same_pad),
            _conv_out(w, self.kernel, self.stride, self.same_pad),
            c * self.multiplier,
        )

    def cost(self, input_shape: Shape) -> OpCost:
        _, _, c = input_shape
        oh, ow, oc = self.output_shape(input_shape)
        taps = self.kernel * self.kernel
        return OpCost(
            vector_ops=oh * ow * oc * taps,
            params_bytes=taps * c * self.multiplier,
            input_bytes=_volume(input_shape),
            output_bytes=oh * ow * oc,
        )


@dataclass(frozen=True)
class Pool(Operator):
    """Max/average pooling (vector path)."""

    kernel: int = 2
    stride: int = 2
    same_pad: bool = True

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        return (
            _conv_out(h, self.kernel, self.stride, self.same_pad),
            _conv_out(w, self.kernel, self.stride, self.same_pad),
            c,
        )

    def cost(self, input_shape: Shape) -> OpCost:
        oh, ow, c = self.output_shape(input_shape)
        return OpCost(
            vector_ops=oh * ow * c * self.kernel * self.kernel,
            input_bytes=_volume(input_shape),
            output_bytes=oh * ow * c,
        )


@dataclass(frozen=True)
class GlobalPool(Operator):
    """Global average pooling to 1x1."""

    def output_shape(self, input_shape: Shape) -> Shape:
        _, _, c = input_shape
        return (1, 1, c)

    def cost(self, input_shape: Shape) -> OpCost:
        return OpCost(
            vector_ops=_volume(input_shape),
            input_bytes=_volume(input_shape),
            output_bytes=input_shape[2],
        )


@dataclass(frozen=True)
class Activation(Operator):
    """Pointwise nonlinearity (+ folded batch norm), one pass per element."""

    ops_per_element: int = 2

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def cost(self, input_shape: Shape) -> OpCost:
        volume = _volume(input_shape)
        return OpCost(
            vector_ops=volume * self.ops_per_element,
            input_bytes=volume,
            output_bytes=volume,
        )


@dataclass(frozen=True)
class Elementwise(Operator):
    """Binary elementwise op (residual add); both inputs share the shape."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def cost(self, input_shape: Shape) -> OpCost:
        volume = _volume(input_shape)
        return OpCost(
            vector_ops=volume,
            input_bytes=2 * volume,
            output_bytes=volume,
        )


@dataclass(frozen=True)
class Concat(Operator):
    """Channel concatenation (data movement only).

    Attributes:
        total_channels: Channel count after concatenation.
    """

    total_channels: int

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, _ = input_shape
        return (h, w, self.total_channels)

    def cost(self, input_shape: Shape) -> OpCost:
        h, w, _ = input_shape
        volume = h * w * self.total_channels
        return OpCost(input_bytes=volume, output_bytes=volume)


@dataclass(frozen=True)
class MatMul(Operator):
    """Fully-connected layer: (features) x (features, units)."""

    units: int

    def output_shape(self, input_shape: Shape) -> Shape:
        return (1, 1, self.units)

    def cost(self, input_shape: Shape) -> OpCost:
        features = _volume(input_shape)
        gemm = Gemm(m=1, k=features, n=self.units)
        return OpCost(
            macs=gemm.macs,
            params_bytes=features * self.units,
            input_bytes=features,
            output_bytes=self.units,
            gemm=gemm,
        )
