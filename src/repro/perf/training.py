"""Training-step estimation (the paper's declared future work).

Sec. III: "While NeuroMeter models both training and inference
accelerators, we focus on the inference accelerators in this paper and
leave the study of training accelerators to future work."  This module
supplies that study's missing half: a first-order training-step model on
top of the inference simulator.

A training step is modeled with the standard 1:2 forward:backward compute
ratio (the backward pass runs one GEMM for the input gradients and one for
the weight gradients per forward GEMM), plus the optimizer's weight-update
traffic (read master weights + gradients, write updated weights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.perf.graph import Graph
from repro.perf.simulator import SimulationResult, Simulator
from repro.power.runtime import ActivityFactors
from repro.units import GIGA, OPS_PER_MAC

#: Backward-pass compute relative to forward (dX and dW GEMMs).
_BACKWARD_COMPUTE_RATIO = 2.0

#: Activation tensors saved in the forward pass are re-read backward.
_ACTIVATION_REREAD_FACTOR = 1.0

#: Bytes moved per parameter by the optimizer step (read weight + grad,
#: write weight; fp32 master copies, int8/bf16 working copies).
_OPTIMIZER_BYTES_PER_PARAM = 12.0


@dataclass(frozen=True)
class TrainingEstimate:
    """First-order cost of one training step.

    Attributes:
        batch: Samples per step.
        step_time_s: Wall-clock per step.
        throughput_sps: Samples per second.
        achieved_tops: Sustained compute rate over the step.
        forward: The underlying forward-pass simulation.
        optimizer_time_s: Time of the weight-update phase (bandwidth
            bound, overlappable only partially).
        activity: Activity factors for the runtime power model.
    """

    batch: int
    step_time_s: float
    throughput_sps: float
    achieved_tops: float
    forward: SimulationResult
    optimizer_time_s: float
    activity: ActivityFactors


def estimate_training_step(
    simulator: Simulator, graph: Graph, batch: int
) -> TrainingEstimate:
    """Estimate one training step of ``graph`` at ``batch``.

    The forward pass is simulated exactly; the backward pass is scaled
    from it (same operators, twice the GEMM volume, extra activation
    re-reads); the optimizer pass streams every parameter through the
    off-chip interface.
    """
    if batch < 1:
        raise MappingError(f"batch must be >= 1, got {batch}")
    forward = simulator.run(graph, batch)

    backward_time_s = forward.latency_s * _BACKWARD_COMPUTE_RATIO * (
        1.0 + 0.1 * _ACTIVATION_REREAD_FACTOR
    )
    params = graph.total_params_bytes()
    optimizer_bytes = params * _OPTIMIZER_BYTES_PER_PARAM
    offchip_gbps = simulator.arch.offchip_gbps
    optimizer_time_s = optimizer_bytes / (offchip_gbps * GIGA)

    # Half the optimizer traffic overlaps the tail of the backward pass.
    step_time_s = (
        forward.latency_s + backward_time_s + 0.5 * optimizer_time_s
    )
    total_macs = graph.total_macs() * batch * (
        1.0 + _BACKWARD_COMPUTE_RATIO
    )
    achieved_tops = total_macs * OPS_PER_MAC / step_time_s / 1e12

    forward_activity = forward.activity
    scale = forward.latency_s * (1 + _BACKWARD_COMPUTE_RATIO) / step_time_s
    activity = ActivityFactors(
        tu_utilization=min(forward_activity.tu_utilization * scale, 1.0),
        tu_occupancy=min(forward_activity.tu_occupancy * scale, 1.0),
        vu_utilization=min(
            forward_activity.vu_utilization * scale, 1.0
        ),
        su_activity=forward_activity.su_activity,
        mem_read_gbps=forward_activity.mem_read_gbps * scale,
        mem_write_gbps=forward_activity.mem_write_gbps * scale,
        noc_gbps=forward_activity.noc_gbps * scale,
        offchip_gbps=forward_activity.offchip_gbps * scale
        + optimizer_bytes / step_time_s / GIGA,
    )
    return TrainingEstimate(
        batch=batch,
        step_time_s=step_time_s,
        throughput_sps=batch / step_time_s,
        achieved_tops=achieved_tops,
        forward=forward,
        optimizer_time_s=optimizer_time_s,
        activity=activity,
    )
