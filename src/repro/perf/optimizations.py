"""XLA-style graph/runtime optimizations (Fig. 7).

TF-Sim "supports advanced runtime graph scheduling and optimization ...
Space-to-Batch, Space-to-Depth, and double memory buffering"; Fig. 7 shows
the throughput gain, largest at small batch.  These optimizations are
represented as a configuration consumed by the mapping engine:

* **Space-to-Depth/Batch** — early convolutions with very few input
  channels (the RGB stem) fold spatial positions into the reduction
  dimension, deepening K so the systolic array's rows are actually used.
* **Double buffering** — the next tile's weights load while the current
  tile computes, hiding the weight-load bubble.
* **Scheduling** — tighter tile dispatch shrinks the per-tile instruction
  overhead, and blocked execution improves activation reuse in Mem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.ops import Gemm


@dataclass(frozen=True)
class OptimizationConfig:
    """Software-optimization switches for the performance simulator.

    Attributes:
        space_to_depth: Fold the spatial stem into the K dimension.
        double_buffering: Overlap weight loads with compute.
        tile_overhead_cycles: Instruction/dispatch cycles per tile pass.
        activation_reuse_tiles: N-tile passes served by one Mem read of
            the activation block (higher = better blocking).
        layer_launch_cycles: Serial per-layer cost (dependency stall,
            weight ramp, cross-core synchronization) that no amount of
            parallel hardware removes — the small-batch floor.
    """

    space_to_depth: bool = True
    double_buffering: bool = True
    tile_overhead_cycles: int = 8
    activation_reuse_tiles: int = 4
    layer_launch_cycles: int = 1_500

    def __post_init__(self) -> None:
        if self.tile_overhead_cycles < 0:
            raise ConfigurationError("tile overhead must be >= 0")
        if self.activation_reuse_tiles < 1:
            raise ConfigurationError("activation reuse must be >= 1")
        if self.layer_launch_cycles < 0:
            raise ConfigurationError("layer launch must be >= 0")

    @classmethod
    def all_on(cls) -> "OptimizationConfig":
        """The optimized configuration of Fig. 7."""
        return cls()

    @classmethod
    def all_off(cls) -> "OptimizationConfig":
        """The baseline (pre-optimization) configuration of Fig. 7."""
        return cls(
            space_to_depth=False,
            double_buffering=False,
            tile_overhead_cycles=32,
            activation_reuse_tiles=1,
            layer_launch_cycles=4_000,
        )


#: Input-channel bound below which the stem transform applies.
_STEM_CHANNEL_BOUND = 16

#: Spatial fold factor of the stem transform.
_FOLD = 2


def apply_space_to_depth(
    gemm: Gemm, input_channels: int, stride: int
) -> Gemm:
    """Space-to-depth on a stem convolution's GEMM.

    Folding a ``_FOLD x _FOLD`` spatial block into channels multiplies K by
    ``_FOLD^2`` and divides the spatial output dimension M by the same
    factor — the total MAC count is unchanged, but the deep K dimension now
    fills the systolic array's rows.  Only sensible for strided stems with
    few channels; other GEMMs pass through unchanged.
    """
    if input_channels > _STEM_CHANNEL_BOUND or stride < _FOLD:
        return gemm
    factor = _FOLD * _FOLD
    new_m = max(1, gemm.m // factor)
    return Gemm(m=new_m, k=gemm.k * factor, n=gemm.n)
