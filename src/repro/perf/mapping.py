"""Tiling and scheduling of GEMMs onto the systolic-array fleet.

The mapping engine implements what TF-Sim does for wimpy designs
(Sec. III-A): "the operation is always too large to map on single TU
without tiling.  The mapping strategy considers how to reduce the extra
overhead of partial sum merging and weight/activation broadcast."

A (M x K x N) GEMM is cut into K/X x N/X weight tiles; each tile pass
streams M rows through one TU.  Tiles (and, when tiles are scarce, M
chunks) are distributed over every TU on the chip.  The result carries
both the cycle count and the traffic/activity tallies the power model
consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.arch.tensor_unit import Dataflow
from repro.errors import MappingError
from repro.perf.ops import Gemm
from repro.perf.optimizations import OptimizationConfig

#: Accumulation width of partial sums travelling between cores.
_PSUM_BYTES = 4

#: Smallest M chunk worth splitting a tile pass over (amortizes fill).
_MIN_M_CHUNK_FACTOR = 2


@dataclass(frozen=True)
class ArchView:
    """The simulator's summary of a chip (everything mapping needs).

    Attributes:
        tu_rows: Systolic array length X.
        tus: Total TUs on the chip.
        cores: Core count.
        vu_lanes_total: Total VU lanes on the chip.
        macs_per_cycle: Peak chip MAC throughput.
        freq_ghz: Clock rate.
        mem_capacity_bytes: Total on-chip memory.
        mem_read_gbps / mem_write_gbps: Peak aggregate Mem bandwidth.
        noc_gbps: NoC bisection bandwidth (0 for single-core chips).
        offchip_gbps: Off-chip memory bandwidth.
    """

    tu_rows: int
    tus: int
    cores: int
    vu_lanes_total: int
    macs_per_cycle: int
    freq_ghz: float
    mem_capacity_bytes: int
    mem_read_gbps: float
    mem_write_gbps: float
    noc_gbps: float
    offchip_gbps: float
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY

    @classmethod
    def of(cls, chip: Chip, ctx: ModelContext) -> "ArchView":
        """Extract the view from a chip model."""
        cfg = chip.config
        core_cfg = cfg.core
        if core_cfg.tu is None:
            raise MappingError(
                "the GEMM mapper needs tensor units; use the roofline model "
                "for reduction-tree accelerators"
            )
        memory = chip.core.memory(ctx)
        extra_capacity = sum(
            extra.capacity_bytes for _, extra in core_cfg.extra_memories
        )
        return cls(
            tu_rows=core_cfg.tu.rows,
            tus=cfg.cores * core_cfg.tensor_units,
            cores=cfg.cores,
            vu_lanes_total=cfg.cores * core_cfg.vector_lanes,
            macs_per_cycle=cfg.macs_per_cycle,
            freq_ghz=ctx.freq_ghz,
            mem_capacity_bytes=cfg.cores
            * (core_cfg.mem.capacity_bytes + extra_capacity),
            mem_read_gbps=cfg.cores
            * memory.peak_read_bandwidth_gbps(ctx),
            mem_write_gbps=cfg.cores
            * memory.peak_write_bandwidth_gbps(ctx),
            noc_gbps=cfg.noc_bisection_gbps if cfg.cores > 1 else 0.0,
            offchip_gbps=cfg.offchip_bandwidth_gbps,
            dataflow=core_cfg.tu.dataflow,
        )


@dataclass(frozen=True)
class GemmMapping:
    """Result of mapping one GEMM onto the fleet.

    Attributes:
        compute_cycles: TU-side cycles (fill/drain, weight loads, dispatch
            overhead included).
        useful_macs: MACs the GEMM actually needs.
        occupied_mac_cycles: MAC-cycles during which arrays are clocked
            (useful work plus fill/drain/overhead waste) — the runtime
            power model charges partially for the waste.
        merge_vector_ops: VU additions for partial-sum merging.
        mem_read_bytes / mem_write_bytes: On-chip memory traffic.
        noc_bytes: Inter-core traffic (broadcast + partial sums).
        weight_bytes: Weight volume streamed into the TUs.
        tiles: Weight tiles (k-tiles x n-tiles).
        k_tiles: Tiling of the reduction dimension.
    """

    compute_cycles: int
    useful_macs: int
    occupied_mac_cycles: int
    merge_vector_ops: int
    mem_read_bytes: int
    mem_write_bytes: int
    noc_bytes: int
    weight_bytes: int
    tiles: int
    k_tiles: int


def map_gemm(
    gemm: Gemm, arch: ArchView, opt: OptimizationConfig
) -> GemmMapping:
    """Map one GEMM onto every TU of the chip.

    Dispatches on the TU's dataflow: weight stationary (TPU-style) or
    output stationary (accumulate in place, re-stream operands).
    """
    if arch.dataflow is Dataflow.OUTPUT_STATIONARY:
        return _map_output_stationary(gemm, arch, opt)
    return _map_weight_stationary(gemm, arch, opt)


def _map_weight_stationary(
    gemm: Gemm, arch: ArchView, opt: OptimizationConfig
) -> GemmMapping:
    """Weight-stationary schedule: ``ceil(K/X) * ceil(N/X)`` tiles, each
    streaming (a chunk of) the M rows.  When tiles are scarcer than TUs
    and M is deep enough, tile passes split along M to keep TUs busy —
    the paper's "sophisticated compiler and runtime software" advantage
    that wimpy designs rely on.
    """
    x = arch.tu_rows
    k_tiles = math.ceil(gemm.k / x)
    n_tiles = math.ceil(gemm.n / x)
    tiles = k_tiles * n_tiles

    # Parallelism hierarchy: N tiles first, then M chunks, and only then
    # splitting the K chain across TUs.  K chains that stay on one TU
    # accumulate locally (in the TU's accumulator storage), which is how
    # real systolic schedulers avoid spilling partial sums to Mem.
    min_chunk = _MIN_M_CHUNK_FACTOR * x
    if n_tiles < arch.tus and gemm.m > min_chunk:
        chunks_per_tile = min(
            math.ceil(arch.tus / n_tiles), math.ceil(gemm.m / min_chunk)
        )
    else:
        chunks_per_tile = 1
    n_parallel = n_tiles * chunks_per_tile
    if n_parallel >= arch.tus:
        k_parallel = 1
    else:
        k_parallel = min(k_tiles, math.ceil(arch.tus / n_parallel))
    total_passes = tiles * chunks_per_tile
    m_part = math.ceil(gemm.m / chunks_per_tile)

    # Back-to-back tile streaming: with double buffering the drain of one
    # pass overlaps the fill of the next, so the 2X fill/drain is paid once
    # per TU work chain instead of once per pass.
    fill_drain = 2 * x
    weight_load = 0 if opt.double_buffering else x
    per_pass = m_part + weight_load + opt.tile_overhead_cycles
    if not opt.double_buffering:
        per_pass += fill_drain
    rounds = math.ceil(total_passes / arch.tus)
    compute_cycles = rounds * per_pass + fill_drain

    # Partial-sum merging on the vector path: only K chains split across
    # TUs need merging; same-TU chains accumulate in place.
    merge_ops = gemm.m * gemm.n * (k_parallel - 1)

    # Inter-core traffic.  The scheduler prefers data parallelism: when M
    # is deep enough to give every core its own row slice, activations
    # stay core-local and partial sums merge inside the core.  Only the
    # residue of cores that must share rows (model parallelism) pays
    # broadcast and cross-core partial-sum traffic.
    if arch.cores > 1:
        m_parallelism = max(1, gemm.m // min_chunk)
        data_parallel_cores = min(arch.cores, m_parallelism)
        cross_fraction = (arch.cores - data_parallel_cores) / arch.cores
        # Fractional core shares round *up*: a byte partially crossing the
        # NoC still occupies a flit, and truncation systematically
        # undercounted traffic (skewing bound attribution wimpy-ward).
        psum_noc = math.ceil(
            gemm.m * gemm.n * _PSUM_BYTES * (k_parallel - 1) * cross_fraction
        )
        broadcast_noc = math.ceil(gemm.m * gemm.k * cross_fraction)
        # Data-parallel M chunks replicate the weight tiles across cores:
        # every replica beyond the first crosses the NoC.  This is the
        # brawny-multicore weight-broadcast pressure the paper attributes
        # to "longer and more power-hungry inter-core NoC".
        weight_replicas = min(chunks_per_tile, arch.cores)
        broadcast_noc += gemm.k * gemm.n * max(weight_replicas - 1, 0)
    else:
        psum_noc = 0
        broadcast_noc = 0

    # On-chip traffic: activations re-read once per reuse window of N
    # tiles (intra-core multicast feeds TUs sharing a K slice); outputs
    # written once, plus the cross-TU merge residue.
    reuse = max(1, min(n_tiles, opt.activation_reuse_tiles))
    act_reads = gemm.m * gemm.k * math.ceil(n_tiles / reuse)
    merge_spill = gemm.m * gemm.n * _PSUM_BYTES * max(k_parallel - 1, 0)
    mem_reads = act_reads + gemm.k * gemm.n + merge_spill
    mem_writes = gemm.m * gemm.n + merge_spill

    return GemmMapping(
        compute_cycles=compute_cycles,
        useful_macs=gemm.macs,
        occupied_mac_cycles=total_passes * per_pass * x * x,
        merge_vector_ops=merge_ops,
        mem_read_bytes=math.ceil(mem_reads),
        mem_write_bytes=math.ceil(mem_writes),
        noc_bytes=psum_noc + broadcast_noc,
        weight_bytes=gemm.k * gemm.n,
        tiles=tiles,
        k_tiles=k_tiles,
    )


def _map_output_stationary(
    gemm: Gemm, arch: ArchView, opt: OptimizationConfig
) -> GemmMapping:
    """Output-stationary schedule.

    Each pass pins an ``X x X`` output tile in the array's accumulators
    and streams the full K reduction through it: no partial sums ever
    leave the array (no merge work, no psum traffic), but operands are
    re-streamed once per output tile in the other dimension — the classic
    dual of weight stationary.
    """
    x = arch.tu_rows
    m_tiles = math.ceil(gemm.m / x)
    n_tiles = math.ceil(gemm.n / x)
    passes = m_tiles * n_tiles

    fill_drain = 2 * x
    per_pass = gemm.k + opt.tile_overhead_cycles
    if not opt.double_buffering:
        per_pass += fill_drain  # output drain stalls the next pass
    rounds = math.ceil(passes / arch.tus)
    compute_cycles = rounds * per_pass + fill_drain

    # Operand traffic: each output tile streams its operand panels; the
    # reuse window caches a panel across consecutive tiles.
    reuse = max(1, min(n_tiles, opt.activation_reuse_tiles))
    a_reads = gemm.m * gemm.k * math.ceil(n_tiles / reuse)
    b_reads = gemm.k * gemm.n * m_tiles
    mem_reads = a_reads + b_reads
    mem_writes = gemm.m * gemm.n

    if arch.cores > 1:
        min_chunk = _MIN_M_CHUNK_FACTOR * x
        m_parallelism = max(1, gemm.m // min_chunk)
        data_parallel_cores = min(arch.cores, m_parallelism)
        cross_fraction = (arch.cores - data_parallel_cores) / arch.cores
        broadcast_noc = math.ceil(gemm.m * gemm.k * cross_fraction)
        weight_replicas = min(arch.cores, m_tiles)
        broadcast_noc += gemm.k * gemm.n * max(weight_replicas - 1, 0)
    else:
        broadcast_noc = 0

    return GemmMapping(
        compute_cycles=compute_cycles,
        useful_macs=gemm.macs,
        occupied_mac_cycles=passes * per_pass * x * x,
        merge_vector_ops=0,
        mem_read_bytes=math.ceil(mem_reads),
        mem_write_bytes=math.ceil(mem_writes),
        noc_bytes=broadcast_noc,
        weight_bytes=gemm.k * gemm.n,
        tiles=passes,
        k_tiles=1,
    )
