"""The graph-level performance simulator (TF-Sim substitute).

Walks a computational graph layer by layer: GEMM-shaped layers go through
the systolic mapping engine, vector-shaped layers (pooling, activations,
depthwise convolutions, eltwise) run on the vector units, and every layer's
time is the max of its compute, on-chip memory, NoC, and off-chip bound
(double buffering overlaps them).  The output carries end-to-end latency,
throughput, achieved TOPS, TU utilization, and the per-component activity
factors the runtime power model consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.errors import MappingError
from repro.perf.graph import Graph, LayerNode
from repro.perf.mapping import ArchView, map_gemm
from repro.perf.ops import (
    Activation,
    Conv2d,
    DepthwiseConv2d,
    Elementwise,
    Gemm,
    GlobalPool,
    Operator,
    Pool,
)
from repro.perf.optimizations import (
    OptimizationConfig,
    apply_space_to_depth,
)
from repro.power.runtime import ActivityFactors
from repro.units import GIGA, OPS_PER_MAC

#: Fraction of on-chip memory usable for activations (the rest stages
#: weights and double buffers).
_ACTIVATION_MEM_SHARE = 0.5

#: Real-time SLO used throughout the paper's datacenter study.
DEFAULT_LATENCY_SLO_MS = 10.0

#: Packed-SIMD elements per 32-bit VU lane per cycle: pointwise int8 ops
#: pack 4 per lane; 16-bit depthwise taps pack 2; 32-bit partial-sum
#: merges pack 1.
_POINTWISE_SIMD = 4
_DEPTHWISE_SIMD = 2


def _vector_simd(op: Operator) -> int:
    if isinstance(op, DepthwiseConv2d):
        return _DEPTHWISE_SIMD
    if isinstance(op, (Activation, Elementwise, Pool, GlobalPool)):
        return _POINTWISE_SIMD
    return 1


def _fusable(op: Operator) -> bool:
    """Pointwise layers that fuse into the preceding GEMM's drain path."""
    return isinstance(op, (Activation, Elementwise))

#: Batch sizes scanned for the latency-limited ("medium") batch.
BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer simulation record."""

    name: str
    cycles: int
    bound: str
    useful_macs: int
    vector_ops: int


@dataclass(frozen=True)
class SimulationResult:
    """End-to-end result of running a graph at one batch size.

    Attributes:
        graph_name: Workload name.
        batch: Batch size simulated.
        total_cycles: Chip cycles for the whole batch.
        latency_s: Wall-clock time for the batch.
        throughput_fps: Frames per second.
        achieved_tops: Sustained tera-ops/s (2 ops per MAC).
        peak_tops: The chip's peak TOPS.
        activity: Activity factors for the runtime power model.
        layers: Per-layer records (diagnostics).
    """

    graph_name: str
    batch: int
    total_cycles: int
    latency_s: float
    throughput_fps: float
    achieved_tops: float
    peak_tops: float
    activity: ActivityFactors
    layers: tuple[LayerTiming, ...] = field(default_factory=tuple)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def utilization(self) -> float:
        """Achieved / peak TOPS (the paper's TU-utilization metric)."""
        if self.peak_tops <= 0:
            return 0.0
        return self.achieved_tops / self.peak_tops


class Simulator:
    """Graph-level performance simulator for one chip configuration."""

    def __init__(
        self,
        chip: Chip,
        ctx: ModelContext,
        opt: Optional[OptimizationConfig] = None,
    ):
        self.chip = chip
        self.ctx = ctx
        self.opt = opt if opt is not None else OptimizationConfig.all_on()
        self.arch = ArchView.of(chip, ctx)

    # -- helpers ------------------------------------------------------------

    def _to_cycles(self, bytes_moved: float, bandwidth_gbps: float) -> int:
        """Cycles to move ``bytes_moved`` at ``bandwidth_gbps``."""
        if bytes_moved <= 0:
            return 0
        if bandwidth_gbps <= 0:
            raise MappingError("traffic on a zero-bandwidth path")
        seconds = bytes_moved / (bandwidth_gbps * GIGA)
        return int(math.ceil(seconds * self.arch.freq_ghz * GIGA))

    def _layer_gemm(self, layer: LayerNode, batch: int) -> Optional[Gemm]:
        cost = layer.cost()
        if cost.gemm is None:
            return None
        gemm = cost.gemm.scaled_m(batch)
        if self.opt.space_to_depth and isinstance(layer.op, Conv2d):
            gemm = apply_space_to_depth(
                gemm,
                input_channels=layer.input_shape[2],
                stride=layer.op.stride,
            )
        return gemm

    # -- main entry ------------------------------------------------------------

    def run(self, graph: Graph, batch: int = 1) -> SimulationResult:
        """Simulate one batch of ``graph`` end to end."""
        if batch < 1:
            raise MappingError(f"batch must be >= 1, got {batch}")
        arch = self.arch
        weights_bytes = graph.total_params_bytes()
        weights_resident = weights_bytes <= (
            arch.mem_capacity_bytes * (1 - _ACTIVATION_MEM_SHARE)
        )
        activation_budget = arch.mem_capacity_bytes * _ACTIVATION_MEM_SHARE

        total_cycles = 0
        tu_macs = 0
        occupied_mac_cycles = 0
        vector_ops_total = 0
        mem_bytes = [0.0, 0.0]  # reads, writes
        noc_bytes = 0.0
        offchip_bytes = 0.0
        layer_records: list[LayerTiming] = []
        fusion_credit = 0  # spare cycles of the previous GEMM layer

        for layer in graph:
            cost = layer.cost()
            gemm = self._layer_gemm(layer, batch)
            vector_ops = cost.vector_ops * batch
            layer_offchip = 0.0
            if not weights_resident:
                # Weights stream in once per batch (they are reused across
                # every sample of the layer-wise schedule).
                layer_offchip += cost.params_bytes
            # Layer-wise working set beyond the on-chip activation budget
            # spills to DRAM (and comes back for the next layer).
            working_set = (cost.input_bytes + cost.output_bytes) * batch
            layer_offchip += 2.0 * max(0.0, working_set - activation_budget)

            if gemm is not None:
                mapping = map_gemm(gemm, arch, self.opt)
                vector_ops += mapping.merge_vector_ops
                vu_cycles = math.ceil(
                    mapping.merge_vector_ops / max(arch.vu_lanes_total, 1)
                    + cost.vector_ops
                    * batch
                    / max(arch.vu_lanes_total * _POINTWISE_SIMD, 1)
                )
                bounds = {
                    "compute": mapping.compute_cycles,
                    "vector": vu_cycles,
                    "mem-read": self._to_cycles(
                        mapping.mem_read_bytes, arch.mem_read_gbps
                    ),
                    "mem-write": self._to_cycles(
                        mapping.mem_write_bytes, arch.mem_write_gbps
                    ),
                    "offchip": self._to_cycles(
                        layer_offchip, arch.offchip_gbps
                    ),
                }
                if arch.cores > 1:
                    bounds["noc"] = self._to_cycles(
                        mapping.noc_bytes, arch.noc_gbps
                    )
                    noc_bytes += mapping.noc_bytes
                mem_bytes[0] += mapping.mem_read_bytes
                mem_bytes[1] += mapping.mem_write_bytes
                tu_macs += mapping.useful_macs
                occupied_mac_cycles += mapping.occupied_mac_cycles
            else:
                simd = _vector_simd(layer.op) if layer.op else 1
                vu_cycles = math.ceil(
                    vector_ops / max(arch.vu_lanes_total * simd, 1)
                )
                if layer.op is not None and _fusable(layer.op):
                    # Pointwise layers drain through the previous GEMM's
                    # output path; only the residue beyond its spare VU
                    # time costs extra cycles.
                    consumed = min(vu_cycles, fusion_credit)
                    fusion_credit -= consumed
                    vu_cycles -= consumed
                reads = (cost.input_bytes + cost.params_bytes) * batch
                writes = cost.output_bytes * batch
                bounds = {
                    "vector": vu_cycles,
                    "mem-read": self._to_cycles(reads, arch.mem_read_gbps),
                    "mem-write": self._to_cycles(
                        writes, arch.mem_write_gbps
                    ),
                    "offchip": self._to_cycles(
                        layer_offchip, arch.offchip_gbps
                    ),
                }
                mem_bytes[0] += reads
                mem_bytes[1] += writes

            if self.opt.double_buffering:
                cycles = max(bounds.values())
            else:
                # Without double buffering, data movement serializes with
                # compute.
                movement = sum(
                    v for k, v in bounds.items() if k != "compute"
                )
                cycles = bounds.get("compute", 0) + movement
            # Fused pointwise residues ride the pipeline; everything else
            # pays the serial layer-launch cost.
            if gemm is not None or not (
                layer.op is not None and _fusable(layer.op)
            ):
                cycles += self.opt.layer_launch_cycles
            bound_name = max(bounds, key=lambda k: bounds[k])
            if gemm is not None:
                vu_used = bounds.get("vector", 0)
                fusion_credit = max(0, cycles - vu_used)
            elif not (layer.op is not None and _fusable(layer.op)):
                fusion_credit = 0
            offchip_bytes += layer_offchip
            vector_ops_total += vector_ops
            total_cycles += max(cycles, 1)
            layer_records.append(
                LayerTiming(
                    name=layer.name,
                    cycles=max(cycles, 1),
                    bound=bound_name,
                    useful_macs=cost.macs * batch,
                    vector_ops=vector_ops,
                )
            )

        latency_s = total_cycles / (arch.freq_ghz * GIGA)
        total_macs = graph.total_macs() * batch
        achieved_tops = (
            total_macs * OPS_PER_MAC / latency_s / 1e12
            if latency_s > 0
            else 0.0
        )
        activity = self._activity(
            total_cycles, tu_macs, occupied_mac_cycles, vector_ops_total,
            mem_bytes, noc_bytes, offchip_bytes, latency_s,
        )
        return SimulationResult(
            graph_name=graph.name,
            batch=batch,
            total_cycles=total_cycles,
            latency_s=latency_s,
            throughput_fps=batch / latency_s if latency_s > 0 else 0.0,
            achieved_tops=achieved_tops,
            peak_tops=self.chip.peak_tops(self.ctx),
            activity=activity,
            layers=tuple(layer_records),
        )

    def _activity(
        self,
        total_cycles: int,
        tu_macs: int,
        occupied_mac_cycles: int,
        vector_ops: int,
        mem_bytes: list[float],
        noc_bytes: float,
        offchip_bytes: float,
        latency_s: float,
    ) -> ActivityFactors:
        arch = self.arch
        cycles = max(total_cycles, 1)
        window = max(latency_s, 1e-12)
        tu_util = min(
            tu_macs / (arch.macs_per_cycle * cycles), 1.0
        )
        vu_util = min(
            vector_ops / (arch.vu_lanes_total * cycles), 1.0
        )
        occupancy = min(
            occupied_mac_cycles / (arch.macs_per_cycle * cycles), 1.0
        )
        return ActivityFactors(
            tu_utilization=tu_util,
            tu_occupancy=max(occupancy, tu_util),
            vu_utilization=vu_util,
            su_activity=min(0.2 + 0.3 * tu_util, 1.0),
            mem_read_gbps=mem_bytes[0] / window / GIGA,
            mem_write_gbps=mem_bytes[1] / window / GIGA,
            noc_gbps=noc_bytes / window / GIGA,
            offchip_gbps=offchip_bytes / window / GIGA,
        )

    # -- batch-size studies (Fig. 9) -------------------------------------------

    def batch_sweep(
        self,
        graph: Graph,
        batches: tuple[int, ...] = BATCH_CANDIDATES,
    ) -> list[SimulationResult]:
        """Simulate a graph across batch sizes (the Fig. 9 series)."""
        return [self.run(graph, batch) for batch in batches]

    def latency_limited_batch(
        self,
        graph: Graph,
        slo_ms: float = DEFAULT_LATENCY_SLO_MS,
        candidates: tuple[int, ...] = BATCH_CANDIDATES,
    ) -> int:
        """Largest candidate batch whose *per-batch* latency meets the SLO.

        This is the paper's "latency limited (medium) batch size".  Returns
        the smallest candidate even when it misses the SLO (the chip then
        simply cannot meet the requirement, as the paper's wimpiest points
        cannot).
        """
        best = candidates[0]
        for batch in sorted(candidates):
            result = self.run(graph, batch)
            if result.latency_ms <= slo_ms:
                best = batch
        return best
