"""Computational-graph IR: layers, edges, shape inference, and liveness.

The graph is a DAG of named layers over per-sample feature maps.  Shape
inference runs at construction, and a liveness walk computes the peak
transient activation footprint (the ``#Data`` column of Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.perf.ops import OpCost, Operator, Shape


@dataclass(frozen=True)
class LayerNode:
    """One layer in the graph.

    Attributes:
        name: Unique layer name.
        op: The operator.
        inputs: Names of producer layers (empty for the input layer).
        input_shape / output_shape: Inferred per-sample shapes.
    """

    name: str
    op: Optional[Operator]
    inputs: tuple[str, ...]
    input_shape: Shape
    output_shape: Shape

    def cost(self) -> OpCost:
        """Per-sample cost of this layer (zero for the graph input)."""
        if self.op is None:
            return OpCost()
        return self.op.cost(self.input_shape)


class Graph:
    """A DAG of layers in topological (construction) order."""

    def __init__(self, name: str, input_shape: Shape):
        if any(dim < 1 for dim in input_shape):
            raise ConfigurationError(f"bad input shape {input_shape}")
        self.name = name
        self._nodes: dict[str, LayerNode] = {}
        self._order: list[str] = []
        root = LayerNode(
            name="input",
            op=None,
            inputs=(),
            input_shape=input_shape,
            output_shape=input_shape,
        )
        self._nodes["input"] = root
        self._order.append("input")

    # -- construction ------------------------------------------------------

    def add(
        self,
        name: str,
        op: Operator,
        inputs: Optional[Iterable[str]] = None,
    ) -> LayerNode:
        """Append a layer; defaults to consuming the previous layer.

        Raises:
            ConfigurationError: duplicate name or unknown input.
        """
        if name in self._nodes:
            raise ConfigurationError(f"duplicate layer name {name!r}")
        input_names = tuple(inputs) if inputs is not None else (
            self._order[-1],
        )
        if not input_names:
            raise ConfigurationError(f"layer {name!r} needs an input")
        for producer in input_names:
            if producer not in self._nodes:
                raise ConfigurationError(
                    f"layer {name!r} consumes unknown layer {producer!r}"
                )
        input_shape = self._nodes[input_names[0]].output_shape
        node = LayerNode(
            name=name,
            op=op,
            inputs=input_names,
            input_shape=input_shape,
            output_shape=op.output_shape(input_shape),
        )
        self._nodes[name] = node
        self._order.append(name)
        return node

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order) - 1  # input node excluded

    def __iter__(self) -> Iterator[LayerNode]:
        """Iterate compute layers in topological order (input excluded)."""
        for name in self._order[1:]:
            yield self._nodes[name]

    def node(self, name: str) -> LayerNode:
        if name not in self._nodes:
            raise KeyError(f"no layer named {name!r} in graph {self.name!r}")
        return self._nodes[name]

    @property
    def output(self) -> LayerNode:
        """The last layer added."""
        return self._nodes[self._order[-1]]

    # -- aggregate statistics (Table II) ----------------------------------------

    def total_macs(self) -> int:
        """MACs per sample over all layers (TU + vector paths).

        Vector-path multiply-adds (depthwise convolutions) count as MACs
        too; pure data movement and pooling do not.
        """
        total = 0
        for layer in self:
            cost = layer.cost()
            total += cost.macs
            if _is_mac_vector_op(layer):
                total += cost.vector_ops
        return total

    def total_params_bytes(self, include_classifier: bool = True) -> int:
        """Weight bytes per model (int8-quantized convention of Table II)."""
        total = 0
        for layer in self:
            if not include_classifier and _is_classifier(layer):
                continue
            total += layer.cost().params_bytes
        return total

    def peak_activation_bytes(self) -> int:
        """Peak transient activation footprint per sample.

        Liveness over the topological schedule: a layer's output stays
        resident until its last consumer has run.
        """
        last_use: dict[str, int] = {}
        for index, name in enumerate(self._order):
            last_use.setdefault(name, index)
            for producer in self._nodes[name].inputs:
                last_use[producer] = index

        def size(name: str) -> int:
            h, w, c = self._nodes[name].output_shape
            return h * w * c

        peak = 0
        live: dict[str, int] = {}
        for index, name in enumerate(self._order):
            live[name] = size(name)
            current = sum(live.values())
            peak = max(peak, current)
            dead = [n for n in live if last_use[n] <= index]
            for n in dead:
                if n != name:
                    del live[n]
        return peak


def _is_mac_vector_op(layer: LayerNode) -> bool:
    from repro.perf.ops import DepthwiseConv2d

    return isinstance(layer.op, DepthwiseConv2d)


def _is_classifier(layer: LayerNode) -> bool:
    from repro.perf.ops import MatMul

    return isinstance(layer.op, MatMul)
