"""Per-layer bound analysis of a simulation.

Summarizes what limits each layer of a simulated run — compute, the
vector path, on-chip memory, the NoC, or off-chip bandwidth — the
bottleneck view an architect reads before resizing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.simulator import SimulationResult
from repro.report.tables import format_table


@dataclass(frozen=True)
class BoundSummary:
    """Cycle share per bound category for one run.

    Attributes:
        shares: Fraction of total cycles attributed to each bound.
        dominant: The largest category.
        total_cycles: The run's cycle count.
    """

    shares: dict[str, float]
    dominant: str
    total_cycles: int


def summarize_bounds(result: SimulationResult) -> BoundSummary:
    """Aggregate the per-layer bound labels into cycle shares."""
    if not result.layers:
        raise ConfigurationError("the simulation recorded no layers")
    totals: dict[str, int] = {}
    for layer in result.layers:
        totals[layer.bound] = totals.get(layer.bound, 0) + layer.cycles
    shares = {
        bound: cycles / result.total_cycles
        for bound, cycles in totals.items()
    }
    dominant = max(shares, key=shares.get)
    return BoundSummary(
        shares=shares,
        dominant=dominant,
        total_cycles=result.total_cycles,
    )


def slowest_layers(
    result: SimulationResult, top: int = 10
) -> list[tuple[str, str, int, float]]:
    """The ``top`` most expensive layers: (name, bound, cycles, share)."""
    ordered = sorted(result.layers, key=lambda layer: -layer.cycles)
    return [
        (
            layer.name,
            layer.bound,
            layer.cycles,
            layer.cycles / result.total_cycles,
        )
        for layer in ordered[:top]
    ]


def bound_report(result: SimulationResult, top: int = 10) -> str:
    """Human-readable bottleneck report for one simulation."""
    summary = summarize_bounds(result)
    share_rows = [
        [bound, f"{share:.1%}"]
        for bound, share in sorted(
            summary.shares.items(), key=lambda item: -item[1]
        )
    ]
    layer_rows = [
        [name, bound, cycles, f"{share:.1%}"]
        for name, bound, cycles, share in slowest_layers(result, top)
    ]
    return (
        f"{result.graph_name} x{result.batch}: "
        f"{summary.total_cycles} cycles, dominant bound "
        f"'{summary.dominant}'\n\n"
        + format_table(["bound", "cycle share"], share_rows)
        + "\n\nSlowest layers:\n"
        + format_table(
            ["layer", "bound", "cycles", "share"], layer_rows
        )
    )
