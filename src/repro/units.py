"""Unit conventions and conversion helpers.

The modeling code uses one canonical unit per physical quantity and converts
at the boundary.  Canonical units:

=============  =====================
Quantity       Canonical unit
=============  =====================
area           mm^2 (``*_mm2``)
small area     um^2 (``*_um2``, component internals)
length         mm   (``*_mm``)
time           ns   (``*_ns``)
frequency      GHz  (``*_ghz``)
energy         pJ   (``*_pj``)
power          W    (``*_w``)
capacitance    fF   (``*_ff``)
resistance     ohm  (``*_ohm``)
voltage        V    (``*_v``)
bandwidth      GB/s (``*_gbps`` is bytes, not bits)
capacity       bytes
=============  =====================

Throughput ("TOPS") counts *operations*, where one multiply-accumulate is two
operations, matching the paper (a 256x256 systolic array at 700 MHz is
92 TOPS).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# -- scale prefixes ----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

#: Operations per multiply-accumulate (multiply + add), the TOPS convention.
OPS_PER_MAC = 2

#: Distributed-RC product: ohm * fF = 1e-15 s = 1e-6 ns.
OHM_FF_TO_NS = 1e-6

# -- conversions -------------------------------------------------------------


def um2_to_mm2(area_um2: float) -> float:
    """Convert square micrometres to square millimetres."""
    return area_um2 * 1e-6


def mm2_to_um2(area_mm2: float) -> float:
    """Convert square millimetres to square micrometres."""
    return area_mm2 * 1e6


def ghz_to_hz(freq_ghz: float) -> float:
    """Convert gigahertz to hertz."""
    return freq_ghz * GIGA


def ns_to_s(time_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return time_ns * 1e-9


def pj_to_j(energy_pj: float) -> float:
    """Convert picojoules to joules."""
    return energy_pj * 1e-12


def fj_to_pj(energy_fj: float) -> float:
    """Convert femtojoules to picojoules."""
    return energy_fj * 1e-3


def ps_to_ns(time_ps: float) -> float:
    """Convert picoseconds to nanoseconds."""
    return time_ps * 1e-3


def nw_to_w(power_nw: float) -> float:
    """Convert nanowatts to watts."""
    return power_nw * 1e-9


def mw_to_w(power_mw: float) -> float:
    """Convert milliwatts to watts."""
    return power_mw * 1e-3


def nm_to_um(length_nm: float) -> float:
    """Convert nanometres to micrometres."""
    return length_nm * 1e-3


def um_to_mm(length_um: float) -> float:
    """Convert micrometres to millimetres."""
    return length_um * 1e-3


def interface_power_w(
    bandwidth_gbps: float, energy_pj_per_bit: float
) -> float:
    """Sustained interface power from byte bandwidth and per-bit energy.

    ``GB/s * 8 bit/B * pJ/bit``: the Giga and pico exponents cancel to
    ``1e-3``, i.e. ``0.008 * GB/s * pJ/bit`` watts.
    """
    return bandwidth_gbps * 8.0 * energy_pj_per_bit * 1e-3


def cycle_time_ns(freq_ghz: float) -> float:
    """Clock period in nanoseconds for a clock rate in GHz."""
    if freq_ghz <= 0:
        raise ConfigurationError(
            f"frequency must be positive, got {freq_ghz} GHz"
        )
    return 1.0 / freq_ghz


def dynamic_power_w(energy_per_cycle_pj: float, freq_ghz: float) -> float:
    """Dynamic power in watts from per-cycle energy and clock rate.

    ``pJ/cycle * Gcycle/s`` conveniently equals milliwatts * 1000; the pJ and
    GHz exponents cancel to 1e-3, i.e. ``0.001 * pJ * GHz`` watts.
    """
    return energy_per_cycle_pj * freq_ghz * 1e-3


def tops(macs_per_cycle: float, freq_ghz: float) -> float:
    """Peak tera-operations per second for a MAC throughput and clock rate."""
    return macs_per_cycle * OPS_PER_MAC * freq_ghz / KILO
