"""Numeric data types supported by the arithmetic models.

The MAC and adder models are parameterized by data type (Sec. II-A: "the
data type of the multiplication-accumulation unit").  Integer types carry
only a width; floating-point types carry the exponent/mantissa split that
drives multiplier and aligner sizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataType:
    """A numeric format.

    Attributes:
        name: Canonical lowercase name (``"int8"``, ``"bf16"``, ...).
        bits: Total storage width in bits.
        is_float: Whether the format is floating point.
        mantissa_bits: Stored mantissa bits (floats only, without the
            implicit leading one).
        exponent_bits: Exponent bits (floats only).
    """

    name: str
    bits: int
    is_float: bool = False
    mantissa_bits: int = 0
    exponent_bits: int = 0

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ConfigurationError(f"data type {self.name!r} needs bits > 0")
        if self.is_float:
            stored = 1 + self.exponent_bits + self.mantissa_bits
            if stored != self.bits:
                raise ConfigurationError(
                    f"float type {self.name!r}: sign + exponent + mantissa "
                    f"= {stored} bits, but bits = {self.bits}"
                )

    @property
    def multiplier_width(self) -> int:
        """Effective multiplier operand width (mantissa + hidden bit for floats)."""
        if self.is_float:
            return self.mantissa_bits + 1
        return self.bits

    def __str__(self) -> str:
        return self.name


INT4 = DataType("int4", 4)
INT8 = DataType("int8", 8)
INT16 = DataType("int16", 16)
INT32 = DataType("int32", 32)
#: The OCP 8-bit float formats of post-paper accelerators.
FP8_E4M3 = DataType(
    "fp8_e4m3", 8, is_float=True, mantissa_bits=3, exponent_bits=4
)
FP8_E5M2 = DataType(
    "fp8_e5m2", 8, is_float=True, mantissa_bits=2, exponent_bits=5
)
FP16 = DataType("fp16", 16, is_float=True, mantissa_bits=10, exponent_bits=5)
BF16 = DataType("bf16", 16, is_float=True, mantissa_bits=7, exponent_bits=8)
FP32 = DataType("fp32", 32, is_float=True, mantissa_bits=23, exponent_bits=8)

_BY_NAME = {
    dtype.name: dtype
    for dtype in (
        INT4,
        INT8,
        INT16,
        INT32,
        FP8_E4M3,
        FP8_E5M2,
        FP16,
        BF16,
        FP32,
    )
}


def parse_datatype(name: str) -> DataType:
    """Look up a built-in data type by name (case insensitive)."""
    key = name.strip().lower()
    if key not in _BY_NAME:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown data type {name!r}; known: {known}")
    return _BY_NAME[key]
