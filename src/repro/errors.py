"""Exception hierarchy for the NeuroMeter reproduction.

Every error raised by this package derives from :class:`NeuroMeterError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class NeuroMeterError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(NeuroMeterError):
    """A user-supplied configuration is invalid or internally inconsistent."""


class TechnologyError(NeuroMeterError):
    """An unknown technology node or invalid device parameter was requested."""


class OptimizationError(NeuroMeterError):
    """The internal optimizer could not find a design meeting the constraints.

    Raised, for example, when no bank/port organization of an on-chip memory
    can satisfy the requested latency and throughput, or when no clock rate
    can reach a requested TOPS target within the power budget.
    """


class MappingError(NeuroMeterError):
    """A workload operator cannot be mapped onto the target accelerator."""


class ValidationError(NeuroMeterError):
    """A modeled result is outside the accepted band of the published data."""


class NumericalError(NeuroMeterError):
    """A modeled quantity is numerically nonsensical (NaN/inf/out of range).

    Raised by the component-level integrity screen and the sweep engine's
    guardrails when a result carries a NaN or infinite value, a negative
    area/power/energy, or a utilization outside [0, 1].  ``field`` names
    the offending quantity (e.g. ``outcomes[2].utilization``), ``value``
    holds what was seen, ``component_path`` locates the component whose
    model produced it (e.g. ``chip.core.tensor_unit``), and
    ``config_digest`` is the content hash of the offending configuration
    (the estimate-cache key prefix), so a poisoned estimate is attributable
    to one component of one configuration.
    """

    def __init__(
        self,
        field: str,
        value: object,
        reason: str = "",
        component_path: "str | None" = None,
        config_digest: "str | None" = None,
    ):
        self.field = field
        self.value = value
        self.reason = reason
        self.component_path = component_path
        self.config_digest = config_digest
        detail = f": {reason}" if reason else ""
        where = f" in {component_path}" if component_path else ""
        digest = f" (config {config_digest})" if config_digest else ""
        super().__init__(
            f"invalid numerical result at {field}{where}: "
            f"{value!r}{detail}{digest}"
        )

    def __reduce__(self):
        # The custom __init__ signature breaks the default exception
        # pickling used when errors cross the sweep engine's worker pipe.
        return (
            type(self),
            (
                self.field,
                self.value,
                self.reason,
                self.component_path,
                self.config_digest,
            ),
        )


class InvariantViolation(NeuroMeterError):
    """A physical-invariant contract does not hold for a modeled design.

    Raised by :func:`repro.integrity.contracts.enforce_invariants` when the
    invariant walker finds one or more violations (rollup superadditivity,
    TDP consistency, timing sanity, scaling monotonicity).  ``violations``
    carries one human-readable line per broken contract.
    """

    def __init__(self, message: str, violations: tuple = ()):
        self.violations = tuple(violations)
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.violations))


class PointTimeoutError(NeuroMeterError):
    """A design-point evaluation exceeded the engine's per-point timeout."""
