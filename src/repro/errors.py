"""Exception hierarchy for the NeuroMeter reproduction.

Every error raised by this package derives from :class:`NeuroMeterError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class NeuroMeterError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(NeuroMeterError):
    """A user-supplied configuration is invalid or internally inconsistent."""


class TechnologyError(NeuroMeterError):
    """An unknown technology node or invalid device parameter was requested."""


class OptimizationError(NeuroMeterError):
    """The internal optimizer could not find a design meeting the constraints.

    Raised, for example, when no bank/port organization of an on-chip memory
    can satisfy the requested latency and throughput, or when no clock rate
    can reach a requested TOPS target within the power budget.
    """


class MappingError(NeuroMeterError):
    """A workload operator cannot be mapped onto the target accelerator."""


class ValidationError(NeuroMeterError):
    """A modeled result is outside the accepted band of the published data."""


class NumericalError(NeuroMeterError):
    """A modeled quantity is numerically nonsensical (NaN/inf/out of range).

    Raised by the component-level integrity screen and the sweep engine's
    guardrails when a result carries a NaN or infinite value, a negative
    area/power/energy, or a utilization outside [0, 1].  ``field`` names
    the offending quantity (e.g. ``outcomes[2].utilization``), ``value``
    holds what was seen, ``component_path`` locates the component whose
    model produced it (e.g. ``chip.core.tensor_unit``), and
    ``config_digest`` is the content hash of the offending configuration
    (the estimate-cache key prefix), so a poisoned estimate is attributable
    to one component of one configuration.
    """

    def __init__(
        self,
        field: str,
        value: object,
        reason: str = "",
        component_path: "str | None" = None,
        config_digest: "str | None" = None,
    ):
        self.field = field
        self.value = value
        self.reason = reason
        self.component_path = component_path
        self.config_digest = config_digest
        detail = f": {reason}" if reason else ""
        where = f" in {component_path}" if component_path else ""
        digest = f" (config {config_digest})" if config_digest else ""
        super().__init__(
            f"invalid numerical result at {field}{where}: "
            f"{value!r}{detail}{digest}"
        )

    def __reduce__(self):
        # The custom __init__ signature breaks the default exception
        # pickling used when errors cross the sweep engine's worker pipe.
        return (
            type(self),
            (
                self.field,
                self.value,
                self.reason,
                self.component_path,
                self.config_digest,
            ),
        )


class InvariantViolation(NeuroMeterError):
    """A physical-invariant contract does not hold for a modeled design.

    Raised by :func:`repro.integrity.contracts.enforce_invariants` when the
    invariant walker finds one or more violations (rollup superadditivity,
    TDP consistency, timing sanity, scaling monotonicity).  ``violations``
    carries one human-readable line per broken contract.
    """

    def __init__(self, message: str, violations: tuple = ()):
        self.violations = tuple(violations)
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.violations))


class PointTimeoutError(NeuroMeterError):
    """A design-point evaluation exceeded the engine's per-point timeout."""


class ShardLeaseHeldError(NeuroMeterError):
    """A sweep shard's lease is held by a live worker; claim it elsewhere.

    ``shard`` is the shard index, ``holder`` a human-readable account of
    the current owner (``pid 1234 on hostname, heartbeat 2.1s ago``).
    Distinct from :class:`ConfigurationError` because the request is
    *valid* — the resource is just busy — so coordinators and the serve
    layer map it to "conflict, try another shard" (HTTP 409) instead of
    "fix your request".
    """

    def __init__(
        self,
        message: str,
        shard: "int | None" = None,
        holder: "str | None" = None,
    ):
        self.shard = shard
        self.holder = holder
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.shard, self.holder))


class LoadShedError(NeuroMeterError):
    """The serving daemon's admission gate is full; the request was shed.

    ``retry_after_s`` is the server's hint for when capacity is likely
    to be back; it becomes the ``Retry-After`` response header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        self.retry_after_s = retry_after_s
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after_s))


class DrainingError(NeuroMeterError):
    """The serving daemon is draining and no longer admits new work."""


class ProtocolError(ConfigurationError):
    """A malformed HTTP request reached the serving daemon's parser."""


class RemoteError(NeuroMeterError):
    """A non-2xx answer from the serving daemon, rehydrated client-side.

    Carries the HTTP ``status``, the server-reported ``error_type`` (the
    exception class name from the daemon's taxonomy), the optional
    ``retry_after_s`` backoff hint, and the full response ``payload``.
    """

    def __init__(
        self,
        message: str,
        status: int,
        error_type: str = "",
        retry_after_s: "float | None" = None,
        payload: "dict | None" = None,
    ):
        self.status = status
        self.error_type = error_type
        self.retry_after_s = retry_after_s
        self.payload = payload or {}
        super().__init__(message)

    def __reduce__(self):
        return (
            type(self),
            (
                self.args[0],
                self.status,
                self.error_type,
                self.retry_after_s,
                self.payload,
            ),
        )

    @property
    def is_shed(self) -> bool:
        return self.status == 503

    def describe(self) -> str:
        kind = self.error_type or "error"
        return f"HTTP {self.status} {kind}: {self}"
