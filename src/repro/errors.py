"""Exception hierarchy for the NeuroMeter reproduction.

Every error raised by this package derives from :class:`NeuroMeterError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class NeuroMeterError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(NeuroMeterError):
    """A user-supplied configuration is invalid or internally inconsistent."""


class TechnologyError(NeuroMeterError):
    """An unknown technology node or invalid device parameter was requested."""


class OptimizationError(NeuroMeterError):
    """The internal optimizer could not find a design meeting the constraints.

    Raised, for example, when no bank/port organization of an on-chip memory
    can satisfy the requested latency and throughput, or when no clock rate
    can reach a requested TOPS target within the power budget.
    """


class MappingError(NeuroMeterError):
    """A workload operator cannot be mapped onto the target accelerator."""


class ValidationError(NeuroMeterError):
    """A modeled result is outside the accepted band of the published data."""
