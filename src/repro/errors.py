"""Exception hierarchy for the NeuroMeter reproduction.

Every error raised by this package derives from :class:`NeuroMeterError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class NeuroMeterError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(NeuroMeterError):
    """A user-supplied configuration is invalid or internally inconsistent."""


class TechnologyError(NeuroMeterError):
    """An unknown technology node or invalid device parameter was requested."""


class OptimizationError(NeuroMeterError):
    """The internal optimizer could not find a design meeting the constraints.

    Raised, for example, when no bank/port organization of an on-chip memory
    can satisfy the requested latency and throughput, or when no clock rate
    can reach a requested TOPS target within the power budget.
    """


class MappingError(NeuroMeterError):
    """A workload operator cannot be mapped onto the target accelerator."""


class ValidationError(NeuroMeterError):
    """A modeled result is outside the accepted band of the published data."""


class NumericalError(NeuroMeterError):
    """A modeled quantity is numerically nonsensical (NaN/inf/out of range).

    Raised by the sweep engine's guardrails when a result carries a NaN or
    infinite value, a negative area/power/energy, or a utilization outside
    [0, 1].  ``field`` names the offending quantity (e.g.
    ``outcomes[2].utilization``) and ``value`` holds what was seen.
    """

    def __init__(self, field: str, value: object, reason: str = ""):
        self.field = field
        self.value = value
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"invalid numerical result at {field}: {value!r}{detail}"
        )

    def __reduce__(self):
        # The custom __init__ signature breaks the default exception
        # pickling used when errors cross the sweep engine's worker pipe.
        return (type(self), (self.field, self.value, self.reason))


class PointTimeoutError(NeuroMeterError):
    """A design-point evaluation exceeded the engine's per-point timeout."""
