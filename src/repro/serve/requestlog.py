"""Crash-safe JSONL journaling of every request the daemon answers.

One line per finished request — endpoint, HTTP status, error type if
any, wall time — flushed and fsynced like the sweep journal, so a
post-mortem after a crash or a SIGKILL sees every request the daemon
actually resolved.  The tail-repair loop is shared with the sweep
journal (:func:`repro.dse.journal.repair_tail`): on reopen, a torn
trailing write (single- or multi-line) is truncated away so the next
append starts a clean record.
"""

from __future__ import annotations

import io
import json
import os
import threading
from typing import Optional

from repro.dse.journal import repair_tail
from repro.errors import ConfigurationError

REQUEST_LOG_VERSION = 1


def _request_line_is_damaged(line: bytes) -> bool:
    """Validator for one request-log line (for the shared tail repair)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return True
    return not (
        isinstance(payload, dict)
        and payload.get("kind") in ("header", "request")
    )


class RequestLog:
    """Append-only request journal with crash-safe per-line flushing.

    ``record`` is thread-safe: the daemon journals from its executor
    threads (never the event loop), so the write+flush+fsync of one
    entry and the ``recorded_total`` bump are serialized under a lock
    to keep lines whole and the count exact.
    """

    def __init__(self, path: "str | os.PathLike"):
        self._write_lock = threading.Lock()
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.repaired_lines = 0
        if os.path.exists(self.path):
            self.repaired_lines = repair_tail(
                self.path, is_damaged=_request_line_is_damaged
            )
        self._fh: Optional[io.TextIOBase] = open(
            self.path, "a", encoding="utf-8"
        )
        if os.path.getsize(self.path) == 0:
            self._write_line(
                json.dumps(
                    {
                        "kind": "header",
                        "log": "serve-requests",
                        "version": REQUEST_LOG_VERSION,
                    },
                    sort_keys=True,
                )
            )
        self.recorded_total = 0

    def _write_line(self, line: str) -> None:
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(
        self,
        request_id: int,
        endpoint: str,
        status: int,
        wall_time_s: float,
        error: Optional[str] = None,
        detail: Optional[dict] = None,
    ) -> None:
        """Journal one resolved request; flushed immediately."""
        line = json.dumps(
            {
                "kind": "request",
                "id": request_id,
                "endpoint": endpoint,
                "status": status,
                "wall_time_s": round(wall_time_s, 6),
                "error": error,
                "detail": detail,
            },
            sort_keys=True,
        )
        with self._write_lock:
            if self._fh is None:
                raise ConfigurationError("request log is closed")
            self._write_line(line)
            self.recorded_total += 1

    def close(self) -> None:
        with self._write_lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_request_log(path: "str | os.PathLike") -> list:
    """Read every well-formed request entry (for tests and post-mortems)."""
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail; repair happens on reopen
            if isinstance(payload, dict) and payload.get("kind") == "request":
                entries.append(payload)
    return entries
