"""Daemon lifecycle: boot, signal handling, graceful drain, exit 0.

SIGTERM (and SIGINT) mean *drain*, not die:

1. the admission gate closes — new requests get a 503;
2. in-flight pooled sweeps observe the drain abort at the next point
   boundary, journal everything finished, and answer 503 with
   ``resumable: true`` so a client ``--resume`` completes them;
3. the daemon waits up to ``drain_grace_s`` for in-flight requests to
   resolve, flushes the request log, tears down the worker pool, and
   exits 0.

A second signal during the grace window skips the wait and tears down
immediately (still exit 0 — the journals are already consistent).

SIGHUP means *reload*, not restart: when the daemon was booted with
``--reload-config PATH``, the handler re-reads that JSON file on the
event loop and swaps the live-safe knobs (deadlines, admission bound,
breaker windows — see :data:`repro.serve.app.RELOADABLE_KEYS`) in
place.  The warm estimate cache, the worker pool, and every admitted
in-flight request survive the reload untouched, and the swap is
journaled to the request log as a ``/-/config-reload`` event.  Without
``--reload-config``, SIGHUP is acknowledged and ignored.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.http import start_http_server


async def _serve_until_drained(
    app: ServeApp, *, ready_line: bool = True
) -> int:
    loop = asyncio.get_running_loop()
    app.drain_requested = asyncio.Event()
    force_teardown = asyncio.Event()
    server = await start_http_server(
        app.handle, app.config.host, app.config.port
    )

    def _on_signal(signame: str) -> None:
        if app.gate.draining:
            # Second signal: the operator is impatient; stop waiting.
            force_teardown.set()
            return
        print(f"neurometer serve: {signame} received, draining",
              file=sys.stderr, flush=True)
        app.begin_drain()

    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(
            getattr(signal, signame), _on_signal, signame
        )

    def _on_reload() -> None:
        if not app.config.reload_config:
            print(
                "neurometer serve: SIGHUP received but no --reload-config "
                "file was given; ignoring",
                file=sys.stderr,
                flush=True,
            )
            return
        app.reload_config()

    if hasattr(signal, "SIGHUP"):  # absent on non-POSIX platforms
        loop.add_signal_handler(signal.SIGHUP, _on_reload)

    sockets = server.sockets or ()
    if ready_line and sockets:
        host, port = sockets[0].getsockname()[:2]
        print(f"neurometer serve: listening on http://{host}:{port}",
              file=sys.stderr, flush=True)

    await app.drain_requested.wait()

    # Stop accepting new connections, then give in-flight requests the
    # grace window to resolve (sweeps abort at their next point boundary
    # and journal what finished, so the window is short in practice).
    server.close()
    await server.wait_closed()
    drain_task = asyncio.ensure_future(
        app.gate.drained(grace_s=app.config.drain_grace_s)
    )
    force_task = asyncio.ensure_future(force_teardown.wait())
    done, pending = await asyncio.wait(
        {drain_task, force_task}, return_when=asyncio.FIRST_COMPLETED
    )
    for task in pending:
        task.cancel()
    await asyncio.gather(*pending, return_exceptions=True)
    clean = drain_task in done and drain_task.result()
    if clean:
        # The gate releases before handle() journals the response and
        # the connection writes it; wait briefly for the last handlers
        # (including un-gated /status and /drain ones) to finish so the
        # loop teardown does not cancel them mid-journal.
        deadline = loop.time() + 5.0
        while app.active_handles and loop.time() < deadline:
            await asyncio.sleep(0.01)
    else:
        print("neurometer serve: tearing down with "
              f"{app.gate.inflight} request(s) in flight",
              file=sys.stderr, flush=True)
    return 0


def run_server(
    config: ServeConfig, app: Optional[ServeApp] = None
) -> int:
    """Boot the daemon and block until it drains; returns the exit code."""
    app = app if app is not None else ServeApp(config)
    try:
        return asyncio.run(_serve_until_drained(app))
    finally:
        app.close()
        print("neurometer serve: drained, exiting", file=sys.stderr,
              flush=True)
