"""A minimal asyncio HTTP/1.1 server — stdlib only, by design.

The daemon must run everywhere the CLI runs, so it cannot assume an
async web framework is installed.  This module implements exactly the
subset of HTTP/1.1 the API needs: one JSON request in, one JSON response
out, ``Connection: close`` per exchange, bounded header and body sizes
so a misbehaving client cannot balloon daemon memory.

The parser is deliberately strict — a malformed request is answered
with a 400 and the connection is dropped; nothing is guessed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ProtocolError

#: Upper bounds on request framing; requests beyond them are rejected.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "read_request",
    "serve_connection",
    "start_http_server",
]


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict
    headers: dict  # lower-cased header name -> value
    body: bytes = b""

    def json(self) -> dict:
        """Decode the body as a JSON object ({} for an empty body)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ProtocolError(f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        return payload


@dataclass
class Response:
    """One HTTP response; ``payload`` is serialized as JSON."""

    status: int = 200
    payload: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        body = json.dumps(self.payload, sort_keys=True).encode("utf-8")
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in sorted(self.headers.items()):
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        return head.encode("ascii") + body


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request from a stream; ``None`` on a clean EOF.

    Raises:
        ProtocolError: the bytes on the wire are not a valid request in
            the supported subset (or exceed the framing bounds).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # client closed without sending a request
        raise ProtocolError("connection closed mid-request") from error
    except asyncio.LimitOverrunError as error:
        raise ProtocolError("request head exceeds the size limit") from error
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"request head is {len(head)} bytes; limit {MAX_HEADER_BYTES}"
        )
    try:
        lines = head.decode("ascii").split("\r\n")
    except UnicodeDecodeError as error:
        raise ProtocolError("request head is not ASCII") from error
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise ProtocolError(
            f"malformed Content-Length: {length_text!r}"
        ) from error
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise ProtocolError("connection closed mid-body") from error
    return Request(
        method=method.upper(),
        path=split.path,
        query=dict(parse_qsl(split.query, keep_blank_values=True)),
        headers=headers,
        body=body,
    )


Handler = Callable[[Request], Awaitable[Response]]


async def serve_connection(
    handler: Handler,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: parse, dispatch, answer, close."""
    try:
        try:
            request = await read_request(reader)
        except ProtocolError as error:
            response = Response(400, {"error": "ProtocolError",
                                      "message": str(error), "status": 400})
        else:
            if request is None:
                return
            response = await handler(request)
        writer.write(response.encode())
        await writer.drain()
    except (ConnectionError, BrokenPipeError):
        return  # client went away mid-exchange; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            return  # close raced the client's reset; socket is gone anyway


async def start_http_server(
    handler: Handler, host: str, port: int
) -> asyncio.AbstractServer:
    """Bind and start serving; returns the listening server object."""

    async def _on_connection(reader, writer):
        await serve_connection(handler, reader, writer)

    return await asyncio.start_server(
        _on_connection, host, port, limit=MAX_HEADER_BYTES + MAX_BODY_BYTES
    )
