"""A per-family circuit breaker that degrades instead of going dark.

An integrity failure (:class:`~repro.errors.NumericalError`,
:class:`~repro.errors.InvariantViolation`, or a validation-band miss)
means the *model* is producing garbage for some family of requests —
retrying the same evaluation will fail the same way while burning a
worker each time.  After ``failure_threshold`` consecutive integrity
failures for one family the breaker opens: full evaluations for that
family are refused and the app serves peak-only (degraded) estimates,
which exercise a far smaller slice of the model.  After
``reset_after_s`` the breaker goes half-open and lets exactly one trial
evaluation through; success closes it, another integrity failure snaps
it open again.

Worker crashes and timeouts do **not** feed the breaker — they are
capacity/environment problems handled by retry and backoff, not model
damage.

Unlike the admission gate, the breaker is *not* single-threaded by
construction: ``allow_full`` runs on the event loop, but failures and
successes are recorded from executor threads after blocking engine
work.  All state transitions therefore hold an internal lock — in
particular the open -> half-open hand-off, where exactly one of any
number of simultaneous callers may win the trial slot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _Family:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    trips: int = 0


class CircuitBreaker:
    """Per-family breaker keyed by an arbitrary string.

    Args:
        failure_threshold: Consecutive integrity failures that trip a
            family open.
        reset_after_s: Seconds an open family waits before allowing a
            half-open trial.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = max(1, failure_threshold)
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _family(self, key: str) -> _Family:
        if key not in self._families:
            self._families[key] = _Family()
        return self._families[key]

    def allow_full(self, key: str) -> bool:
        """May a full evaluation for this family run right now?

        Open families answer ``False`` (serve degraded) until the reset
        window elapses, then exactly one caller gets a half-open trial:
        the check-and-transition runs under the breaker lock, so two
        simultaneous callers racing an elapsed window cannot both be
        admitted — the loser stays degraded until the trial resolves.
        """
        with self._lock:
            family = self._family(key)
            if family.state == CLOSED:
                return True
            if family.state == OPEN:
                if self._clock() - family.opened_at >= self.reset_after_s:
                    family.state = HALF_OPEN
                    return True
                return False
            # Half-open: one trial is in flight; keep others degraded.
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            family = self._family(key)
            family.state = CLOSED
            family.consecutive_failures = 0

    def record_integrity_failure(self, key: str) -> None:
        with self._lock:
            family = self._family(key)
            if family.state == HALF_OPEN:
                # The trial failed: snap back open with a *fresh* full
                # reset window (no credit for the time already waited).
                family.state = OPEN
                family.opened_at = self._clock()
                family.trips += 1
                return
            family.consecutive_failures += 1
            if (
                family.state == CLOSED
                and family.consecutive_failures >= self.failure_threshold
            ):
                family.state = OPEN
                family.opened_at = self._clock()
                family.trips += 1

    def state(self, key: str) -> str:
        with self._lock:
            return self._family(key).state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                key: {
                    "state": family.state,
                    "consecutive_failures": family.consecutive_failures,
                    "trips": family.trips,
                }
                for key, family in sorted(self._families.items())
            }
