"""The daemon application: routing, deadlines, retries, and degradation.

One :class:`ServeApp` owns the shared hot state every request benefits
from — the estimate cache, the tech substrates, and one persistent
:class:`~repro.dse.engine.WorkerPool` — plus the robustness machinery
that keeps the daemon alive under hostile traffic:

* the admission gate sheds excess load (503 + ``Retry-After``);
* every request runs under a wall-clock deadline (504 on expiry, and
  the in-flight engine work is aborted, not leaked);
* worker crashes retry with exponential backoff + jitter;
* consecutive integrity failures trip a per-family circuit breaker
  that degrades the family to peak-only estimates;
* every resolved request is journaled to crash-safe JSONL.

Handlers never let an exception escape: :meth:`ServeApp.handle` maps
every typed error onto the HTTP taxonomy in
:mod:`repro.serve.protocol` and answers 500 only for genuine daemon
bugs.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace as _dc_replace
from typing import Optional, Sequence

from repro.arch.component import ModelContext
from repro.dse.engine import SweepReport, WorkerPool, run_sweep
from repro.dse.journal import summarize_result
from repro.dse.space import DesignPoint
from repro.errors import (
    ConfigurationError,
    NeuroMeterError,
    ShardLeaseHeldError,
)
from repro.serve.backpressure import AdmissionGate
from repro.serve.breaker import CircuitBreaker
from repro.serve.http import Request, Response
from repro.serve.protocol import (
    ERROR_TYPE_STATUS,
    INTEGRITY_ERROR_NAMES,
    LoadShedError,
    error_payload,
    status_for,
)
from repro.serve.requestlog import RequestLog
from repro.serve.retry import BackoffPolicy
from repro.tech.node import node as tech_node

API_VERSION = 1


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to boot, in one value object."""

    host: str = "127.0.0.1"
    port: int = 8757
    jobs: int = 2
    #: Estimation backend handed to ``run_sweep`` (``scalar``/``auto``/
    #: ``vector``); per-point vector fallbacks are tallied in ``/status``.
    backend: str = "scalar"
    timeout_s: Optional[float] = None  # per-point wall budget in the pool
    deadline_s: float = 60.0  # default per-request wall budget
    max_inflight: int = 8
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.05
    retry_after_s: float = 1.0
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    journal_dir: Optional[str] = None  # sweep checkpoints land here
    request_log: Optional[str] = None  # resolved request JSONL
    drain_grace_s: float = 30.0
    seed: int = 0
    #: Admission floor for budgeted /optimize requests: the daemon
    #: refuses (400) a surrogate search whose exact-evaluation budget
    #: times this per-evaluation cost floor cannot fit the request
    #: deadline, instead of accepting work guaranteed to die at 504.
    eval_cost_floor_s: float = 0.01
    #: JSON file re-read on SIGHUP; its keys overwrite the live-safe
    #: subset of this config (see :data:`RELOADABLE_KEYS`) without a
    #: restart — warm caches and in-flight requests are untouched.
    reload_config: Optional[str] = None


#: ServeConfig knobs that are safe to swap while serving: they are read
#: per-request (deadlines, retries) or live on mutable single-threaded
#: objects (admission gate, breaker windows).  Everything else — ports,
#: pool size, journal/log paths — requires a restart and is ignored by
#: a reload.
RELOADABLE_KEYS = (
    "deadline_s",
    "max_inflight",
    "retry_after_s",
    "retry_attempts",
    "retry_base_delay_s",
    "breaker_threshold",
    "breaker_reset_s",
    "drain_grace_s",
    "timeout_s",
    "eval_cost_floor_s",
)

_RELOAD_INT_KEYS = frozenset(
    {"max_inflight", "retry_attempts", "breaker_threshold"}
)


def _parse_point(raw: object) -> DesignPoint:
    if not isinstance(raw, (list, tuple)) or len(raw) != 4:
        raise ConfigurationError(
            f"a design point is a [X, N, Tx, Ty] list, got {raw!r}"
        )
    try:
        x, n, tx, ty = (int(part) for part in raw)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"non-integer design point {raw!r}"
        ) from error
    return DesignPoint(x, n, tx, ty)


def _point_json(point: DesignPoint) -> list:
    return [point.x, point.n, point.tx, point.ty]


def _record_payload(record) -> dict:
    """Serialize one engine PointRecord for the wire."""
    payload = {
        "point": _point_json(record.point),
        "status": record.status,
        "attempt": record.attempt,
        "wall_time_s": record.wall_time_s,
        "from_journal": record.from_journal,
    }
    if record.result is not None:
        payload["metrics"] = (
            record.metrics
            if record.metrics is not None
            else summarize_result(record.result)
        )
    if record.failure is not None:
        failure = record.failure
        payload["failure"] = {
            "stage": failure.stage,
            "error_type": failure.error_type,
            "message": failure.message,
            "degraded": failure.degraded,
        }
    if record.fallback is not None:
        payload["fallback"] = record.fallback
    return payload


class ServeApp:
    """The long-lived estimation application behind the HTTP front."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.pool = WorkerPool(config.jobs)
        self.gate = AdmissionGate(
            config.max_inflight, retry_after_s=config.retry_after_s
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_after_s=config.breaker_reset_s,
        )
        self.request_log = (
            RequestLog(config.request_log) if config.request_log else None
        )
        self.executor = ThreadPoolExecutor(
            max_workers=config.max_inflight,
            thread_name_prefix="neurometer-serve",
        )
        #: Set at drain time; every pooled sweep polls it between points.
        self.drain_abort = threading.Event()
        #: handle() calls currently running (loop-thread only).  The
        #: admission gate releases before the response is journaled and
        #: written, so the drain path waits on this too — otherwise the
        #: teardown cancels the last connections mid-journal.
        self.active_handles = 0
        #: Completed when a drain has been requested (lifecycle waits).
        self.drain_requested: Optional[asyncio.Event] = None
        self.started_at = time.monotonic()
        self.status_counts: Counter = Counter()
        #: Vector-backend fallback reason -> point count, accumulated
        #: over every sweep this daemon ran (surfaced in ``/status``).
        self.fallback_counts: Counter = Counter()
        self._request_ids = itertools.count(1)
        self._sweep_ids = itertools.count(1)
        # Value-stable workload/context objects: PoolJobConfig compares
        # graphs by identity, so reusing these keeps pool workers warm
        # across requests for the same recipe.
        self._graphs: dict = {}
        self._contexts: dict = {}
        self._lock = threading.Lock()

    # -- shared hot objects --------------------------------------------------

    def _workloads(self, names: Sequence[str]) -> tuple:
        from repro.cli import _WORKLOADS

        pairs = []
        for name in names:
            if name not in _WORKLOADS:
                raise ConfigurationError(
                    f"unknown workload {name!r}; choose from "
                    f"{sorted(_WORKLOADS)}"
                )
            with self._lock:
                if name not in self._graphs:
                    self._graphs[name] = _WORKLOADS[name]()
                graph = self._graphs[name]
            pairs.append((name, graph))
        return tuple(pairs)

    def _context(self, body: dict) -> Optional[ModelContext]:
        node = body.get("node")
        freq = body.get("freq")
        if node is None and freq is None:
            return None  # engine default (Table I context)
        key = (float(node or 28), float(freq or 0.7))
        with self._lock:
            if key not in self._contexts:
                self._contexts[key] = ModelContext(
                    tech=tech_node(key[0]), freq_ghz=key[1]
                )
            return self._contexts[key]

    def _backoff(self) -> BackoffPolicy:
        return BackoffPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            seed=self.config.seed,
        )

    # -- request plumbing ----------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Route one request; every outcome is a well-formed response."""
        self.active_handles += 1
        try:
            return await self._handle(request)
        finally:
            self.active_handles -= 1

    async def _handle(self, request: Request) -> Response:
        started = time.perf_counter()
        request_id = next(self._request_ids)
        endpoint = request.path.rstrip("/") or "/"
        try:
            response = await self._dispatch(request, endpoint)
        except NeuroMeterError as error:
            response = self._error_response(error)
        except asyncio.CancelledError:
            raise  # the loop is going down; do not answer
        except Exception as error:  # daemon bug: answer 500, stay alive
            response = Response(500, error_payload(error, status=500))
        self.status_counts[response.status] += 1
        if self.request_log is not None:
            # The journal write is flushed + fsynced: blocking work that
            # must not run on the event loop.  Awaiting the executor hop
            # keeps the durability contract — the entry is on disk
            # before the response leaves.
            wall_time_s = time.perf_counter() - started
            try:
                await self._run_blocking(
                    self._journal_request,
                    request_id, endpoint, response, wall_time_s,
                )
            except RuntimeError:
                # Drain teardown shut the executor while we were
                # suspended at the await.  The loop is no longer
                # serving traffic, so journaling inline is harmless —
                # unless the log itself is already closed, in which
                # case the teardown owns the shutdown-window entry.
                try:
                    self._journal_request(  # lint: allow(NM401): executor is gone; the loop serves no other traffic during teardown
                        request_id, endpoint, response, wall_time_s
                    )
                except ConfigurationError:
                    pass
        return response

    def _journal_request(self, request_id: int, endpoint: str,
                         response: Response, wall_time_s: float) -> None:
        """Sync journal append; runs on the executor, never the loop."""
        self.request_log.record(
            request_id=request_id,
            endpoint=endpoint,
            status=response.status,
            wall_time_s=wall_time_s,
            error=response.payload.get("error"),
        )

    def _error_response(self, error: NeuroMeterError) -> Response:
        status = status_for(error)
        headers = {}
        if isinstance(error, LoadShedError):
            headers["Retry-After"] = f"{max(1, round(error.retry_after_s))}"
        return Response(status, error_payload(error, status), headers)

    async def _dispatch(self, request: Request, endpoint: str) -> Response:
        if endpoint == "/status":
            return Response(200, self.status_payload())
        if endpoint == "/drain":
            return self._handle_drain()
        handlers = {
            "/estimate": self._handle_estimate,
            "/sweep": self._handle_sweep,
            "/optimize": self._handle_optimize,
            "/doctor": self._handle_doctor,
        }
        handler = handlers.get(endpoint)
        if handler is None:
            return Response(404, {
                "error": "NotFound",
                "message": f"no such endpoint {endpoint!r}",
                "status": 404,
            })
        body = request.json()
        deadline_s = float(
            request.headers.get("x-deadline-s")
            or body.get("deadline_s")
            or self.config.deadline_s
        )
        with self.gate.admit():
            abort = threading.Event()
            try:
                return await asyncio.wait_for(
                    handler(request, body, abort), timeout=deadline_s
                )
            except asyncio.TimeoutError:
                abort.set()  # stop the engine work, do not leak it
                return Response(504, {
                    "error": "DeadlineExceeded",
                    "message": f"request exceeded its {deadline_s:g}s "
                    "deadline",
                    "status": 504,
                })

    def _should_abort(self, request_abort: threading.Event):
        drain = self.drain_abort
        return lambda: drain.is_set() or request_abort.is_set()

    async def _run_blocking(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    @staticmethod
    def _persist_manifest(manifest, manifest_path: str) -> None:
        """Sync manifest write-if-absent; runs on the executor."""
        if not os.path.exists(manifest_path):
            manifest.write(manifest_path)

    # -- endpoints -----------------------------------------------------------

    async def _handle_estimate(
        self, request: Request, body: dict, abort: threading.Event
    ) -> Response:
        point = _parse_point(body.get("point"))
        names = list(body.get("workloads") or ())
        batches = [int(b) for b in body.get("batches") or ()] or (
            [int(body["batch"])] if "batch" in body else []
        )
        ctx = self._context(body)
        family = "|".join(sorted(names)) if names else "peak"

        degraded_by_breaker = False
        workloads = self._workloads(names) if names else ()
        if names and not self.breaker.allow_full(family):
            # Family is tripped: serve the peak-only slice of the model.
            degraded_by_breaker = True
            workloads, batches = (), []

        report, attempts = await self._sweep_with_retries(
            [point], workloads, batches, ctx, abort
        )
        if report.cancelled:
            return self._cancelled_response()
        record = report.records[0]
        if record.status == "failed":
            failure = record.failure
            if failure.error_type in INTEGRITY_ERROR_NAMES:
                self.breaker.record_integrity_failure(family)
            status = ERROR_TYPE_STATUS.get(failure.error_type, 500)
            return Response(status, {
                "error": failure.error_type,
                "message": failure.message,
                "status": status,
                "point": _point_json(point),
                "stage": failure.stage,
                "attempts": attempts,
            })
        if names and not degraded_by_breaker:
            if record.status == "degraded" and record.failure is not None \
                    and record.failure.error_type in INTEGRITY_ERROR_NAMES:
                self.breaker.record_integrity_failure(family)
            else:
                self.breaker.record_success(family)
        payload = _record_payload(record)
        payload.update({
            "attempts": attempts,
            "degraded": record.status == "degraded" or degraded_by_breaker,
            "breaker": self.breaker.state(family),
            "family": family,
        })
        return Response(200, payload)

    async def _sweep_with_retries(
        self,
        points,
        workloads,
        batches,
        ctx,
        abort: threading.Event,
        journal_path: Optional[str] = None,
        resume: bool = False,
    ) -> "tuple[SweepReport, int]":
        """Run one pooled sweep, retrying whole-run worker crashes.

        Only requests whose *every* failure is a ``WorkerCrash`` are
        retried — a crashed worker says nothing about the request, while
        typed model errors are deterministic and retrying them would
        just burn workers.
        """
        should_abort = self._should_abort(abort)

        def _once() -> SweepReport:
            return run_sweep(
                points,
                workloads,
                batches,
                ctx,
                backend=self.config.backend,
                jobs=self.config.jobs,
                timeout_s=self.config.timeout_s,
                strict=False,
                pool=self.pool,
                should_abort=should_abort,
                journal_path=journal_path,
                resume=resume,
            )

        attempts = 1
        report = await self._run_blocking(_once)
        for delay in self._backoff().delays():
            crashes = [
                r for r in report.records
                if r.status == "failed"
                and r.failure is not None
                and r.failure.error_type == "WorkerCrash"
            ]
            if not crashes or report.cancelled:
                break
            await asyncio.sleep(delay)
            if should_abort():
                break
            attempts += 1
            # Re-run only what crashed; finished points keep their rows.
            retry_points = [r.point for r in crashes]
            retried = await self._run_blocking(
                lambda: run_sweep(
                    retry_points,
                    workloads,
                    batches,
                    ctx,
                    backend=self.config.backend,
                    jobs=self.config.jobs,
                    timeout_s=self.config.timeout_s,
                    strict=False,
                    pool=self.pool,
                    should_abort=should_abort,
                )
            )
            merged = {r.point: r for r in report.records}
            for record in retried.records:
                merged[record.point] = record
            report = SweepReport(
                records=tuple(
                    merged[r.point] for r in report.records
                ),
                cancelled=retried.cancelled,
            )
        self.fallback_counts.update(report.fallback_totals())
        return report, attempts

    def _cancelled_response(self, journal: Optional[str] = None) -> Response:
        if self.drain_abort.is_set():
            payload = {
                "error": "DrainingError",
                "message": "daemon drained mid-request; finished points "
                "are journaled",
                "status": 503,
            }
            if journal:
                payload["journal"] = journal
                payload["resumable"] = True
            return Response(503, payload, {"Retry-After": "5"})
        payload = {
            "error": "DeadlineExceeded",
            "message": "request aborted at its deadline",
            "status": 504,
        }
        if journal:
            payload["journal"] = journal
            payload["resumable"] = True
        return Response(504, payload)

    async def _handle_sweep(
        self, request: Request, body: dict, abort: threading.Event
    ) -> Response:
        if body.get("manifest") is not None:
            return await self._handle_shard_sweep(body, abort)
        raw_points = body.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise ConfigurationError(
                "a sweep request needs a non-empty 'points' list"
            )
        points = [_parse_point(raw) for raw in raw_points]
        names = list(body.get("workloads") or ())
        workloads = self._workloads(names) if names else ()
        batches = [int(b) for b in body.get("batches") or ()] or (
            [int(body["batch"])] if "batch" in body else []
        )
        ctx = self._context(body)

        journal_path = None
        journal_name = body.get("journal")
        resume = bool(body.get("resume"))
        if self.config.journal_dir is not None:
            if journal_name is None:
                journal_name = f"sweep-{next(self._sweep_ids)}.jsonl"
            if os.path.basename(str(journal_name)) != str(journal_name):
                raise ConfigurationError(
                    f"journal name must be a bare filename, "
                    f"got {journal_name!r}"
                )
            journal_path = os.path.join(
                self.config.journal_dir, str(journal_name)
            )
        elif resume or journal_name:
            raise ConfigurationError(
                "this daemon runs without --journal-dir; journaled "
                "sweeps are unavailable"
            )

        report, attempts = await self._sweep_with_retries(
            points, workloads, batches, ctx, abort,
            journal_path=journal_path, resume=resume,
        )
        if report.cancelled:
            return self._cancelled_response(journal=journal_name)
        payload = {
            "records": [_record_payload(r) for r in report.records],
            "summary": report.summary(),
            "attempts": attempts,
            "cancelled": False,
        }
        if journal_name:
            payload["journal"] = journal_name
        return Response(200, payload)

    async def _handle_shard_sweep(
        self, body: dict, abort: threading.Event
    ) -> Response:
        """Claim and execute one shard of a manifested sweep.

        With ``{"manifest": <dict>, "shard": i}`` the request claims
        exactly shard ``i`` — a live holder answers 409
        (``ShardLeaseHeldError``), the protocol's "busy, try another
        shard" status.  Without an explicit shard the daemon claims the
        first pending or abandoned shard, skipping any that another
        worker wins concurrently; ``{"shard": null}`` in the answer
        means nothing was claimable (``complete`` tells the caller
        whether that is because the sweep is done).
        """
        from repro.dse.shard import (
            DEFAULT_STALE_AFTER_S,
            ShardManifest,
            claimable_shards,
            run_shard,
            shard_status,
        )

        if self.config.journal_dir is None:
            raise ConfigurationError(
                "shard claiming needs --journal-dir: shard journals and "
                "leases live next to each other on disk"
            )
        manifest = ShardManifest.from_dict(body["manifest"])
        journal_dir = self.config.journal_dir
        # Persist the manifest next to the journals so offline tooling
        # (``neurometer merge``) can verify them without the original.
        manifest_path = os.path.join(
            journal_dir, f"manifest-{manifest.sweep_digest}.json"
        )
        # manifest.write() is a flush+fsync+replace: executor, not loop.
        await self._run_blocking(
            self._persist_manifest, manifest, manifest_path
        )
        stale_after_s = float(
            body.get("stale_after_s") or DEFAULT_STALE_AFTER_S
        )
        ctx = self._context(body)
        should_abort = self._should_abort(abort)

        def _run(index: int) -> SweepReport:
            return run_shard(
                manifest,
                index,
                journal_dir,
                ctx=ctx,
                backend=self.config.backend,
                jobs=self.config.jobs,
                timeout_s=self.config.timeout_s,
                stale_after_s=stale_after_s,
                pool=self.pool,
                should_abort=should_abort,
            )

        def _payload(index: int, report: SweepReport) -> Response:
            self.fallback_counts.update(report.fallback_totals())
            if report.cancelled:
                return self._cancelled_response(
                    journal=manifest.journal_name(index)
                )
            status = shard_status(manifest, journal_dir, stale_after_s)
            return Response(200, {
                "shard": index,
                "journal": manifest.journal_name(index),
                "sweep_digest": manifest.sweep_digest,
                "records": [_record_payload(r) for r in report.records],
                "summary": report.summary(),
                "complete": all(
                    row["state"] == "complete" for row in status
                ),
                "cancelled": False,
            })

        explicit = body.get("shard")
        if explicit is not None:
            index = int(explicit)
            # A held lease propagates as ShardLeaseHeldError -> 409.
            report = await self._run_blocking(_run, index)
            return _payload(index, report)
        for index in claimable_shards(manifest, journal_dir, stale_after_s):
            try:
                report = await self._run_blocking(_run, index)
            except ShardLeaseHeldError:
                continue  # lost the race for this shard; try the next
            return _payload(index, report)
        status = shard_status(manifest, journal_dir, stale_after_s)
        return Response(200, {
            "shard": None,
            "sweep_digest": manifest.sweep_digest,
            "complete": all(row["state"] == "complete" for row in status),
            "status": status,
        })

    async def _handle_optimize(
        self, request: Request, body: dict, abort: threading.Event
    ) -> Response:
        from repro.dse.optimizer import (
            STRATEGIES,
            Constraints,
            Objective,
            optimize_design,
        )
        from repro.dse.space import design_space

        try:
            objective = Objective(body.get("objective", "tops-per-tco"))
        except ValueError as error:
            raise ConfigurationError(
                f"unknown objective {body.get('objective')!r}; choose "
                f"from {[o.value for o in Objective]}"
            ) from error
        strategy = str(body.get("strategy", "exhaustive"))
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
            )
        constraints = Constraints(
            max_area_mm2=body.get("max_area_mm2"),
            max_tdp_w=body.get("max_tdp_w"),
            min_peak_tops=body.get("min_peak_tops"),
        )
        raw_points = body.get("points")
        points = (
            [_parse_point(raw) for raw in raw_points]
            if raw_points
            else design_space(check_budgets=False)
        )
        names = list(body.get("workloads") or ())
        if objective.needs_workloads and not names:
            names = ["resnet", "inception", "nasnet"]
        workloads = self._workloads(names) if names else ()
        batch = int(body.get("batch", 1))
        ctx = self._context(body)
        eval_budget = None
        seed = int(body.get("seed", self.config.seed))
        if strategy == "surrogate":
            eval_budget = int(
                body.get("eval_budget", max(8, len(points) // 4))
            )
            # Admission check: refuse a budget the deadline can never
            # fund, rather than accepting work guaranteed to die at 504.
            deadline_s = float(
                request.headers.get("x-deadline-s")
                or body.get("deadline_s")
                or self.config.deadline_s
            )
            floor_s = eval_budget * self.config.eval_cost_floor_s
            if floor_s > deadline_s:
                raise ConfigurationError(
                    f"eval_budget {eval_budget} needs at least "
                    f"{floor_s:.1f}s of exact evaluations but the "
                    f"request deadline is {deadline_s:g}s; lower the "
                    "budget or raise deadline_s"
                )
        should_abort = self._should_abort(abort)

        def _optimize():
            return optimize_design(
                points,
                objective,
                constraints,
                workloads=workloads,
                batch=batch,
                ctx=ctx,
                strict=False,
                strategy=strategy,
                eval_budget=eval_budget,
                seed=seed,
                should_abort=should_abort,
            )

        outcome = await self._run_blocking(_optimize)
        if outcome.cancelled or outcome.best is None:
            return self._cancelled_response()
        best = outcome.best
        return Response(200, {
            "objective": objective.value,
            "strategy": outcome.strategy,
            "exact_evaluations": outcome.exact_evaluations,
            "candidates": len(points),
            "best": {
                "point": _point_json(best.point),
                "area_mm2": best.area_mm2,
                "tdp_w": best.tdp_w,
                "peak_tops": best.peak_tops,
            },
            "ranking": [_point_json(r.point) for r in outcome.ranking],
            "infeasible": [_point_json(p) for p in outcome.infeasible],
            "failures": [
                {"point": _point_json(f.point),
                 "error_type": f.error_type,
                 "message": f.message}
                for f in outcome.failures
            ],
        })

    async def _handle_doctor(
        self, request: Request, body: dict, abort: threading.Event
    ) -> Response:
        from repro.integrity.doctor import run_doctor
        from repro.integrity.faults import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            fault_injection,
        )

        checks = body.get("checks") or (
            request.query["check"].split(",")
            if "check" in request.query else None
        )
        presets = body.get("presets") or (
            request.query["preset"].split(",")
            if "preset" in request.query else None
        )
        inject = body.get("inject_fault") or request.query.get("inject-fault")
        if inject is not None:
            try:
                kind = FaultKind(inject)
            except ValueError as error:
                raise ConfigurationError(
                    f"unknown fault kind {inject!r}; choose from "
                    f"{[k.value for k in FaultKind]}"
                ) from error

        def _doctor():
            def _run():
                return run_doctor(preset_names=presets, checks=checks)

            if inject is None:
                return _run(), None
            plan = FaultPlan(
                specs=(
                    FaultSpec(
                        target=str(body.get("fault_target", "")),
                        kind=kind,
                        field=str(body.get("fault_field", "dynamic_w")),
                        max_hits=0,
                    ),
                ),
                seed=int(body.get("seed", self.config.seed)),
            )
            with fault_injection(plan):
                return _run(), inject

        report, injected = await self._run_blocking(_doctor)
        payload = report.to_dict()
        payload["fault_injected"] = injected
        if injected is not None:
            payload["fault_detected"] = not report.passed
            if report.passed:
                return Response(500, {
                    "error": "FaultEscaped",
                    "message": "injected fault escaped every doctor check",
                    "status": 500,
                    "report": payload,
                })
        return Response(200, payload)

    def _handle_drain(self) -> Response:
        self.begin_drain()
        return Response(202, {
            "draining": True,
            "inflight": self.gate.inflight,
        })

    # -- lifecycle -----------------------------------------------------------

    def reload_config(self, path: Optional[str] = None) -> dict:
        """Re-read the reload file and swap the live-safe config knobs.

        Invoked by the SIGHUP handler on the event loop (the same
        thread that reads the admission gate and breaker windows, so no
        locking is needed).  Only :data:`RELOADABLE_KEYS` are applied;
        anything else in the file is reported back as ignored.  The warm
        estimate cache, the worker pool, and admitted in-flight requests
        are untouched — new limits apply from the next admission on.
        A missing or malformed file changes nothing.

        Returns ``{"changed": {key: [old, new]}, "ignored": [...]}``
        (empty on a failed read), and journals the same payload to the
        request log as a ``/-/config-reload`` event.
        """
        path = path or self.config.reload_config
        outcome: dict = {"changed": {}, "ignored": []}
        if not path:
            return outcome
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                raise ConfigurationError("reload file must hold an object")
        except (OSError, ValueError, ConfigurationError) as error:
            print(
                f"neurometer serve: config reload from {path} failed, "
                f"keeping current config: {error}",
                file=sys.stderr,
                flush=True,
            )
            self._journal_reload(path, outcome, error=type(error).__name__)
            return outcome
        updates = {}
        for key in sorted(payload):
            value = payload[key]
            if key not in RELOADABLE_KEYS:
                outcome["ignored"].append(key)
                continue
            if value is not None:
                value = (
                    int(value) if key in _RELOAD_INT_KEYS else float(value)
                )
            old = getattr(self.config, key)
            if value != old:
                updates[key] = value
                outcome["changed"][key] = [old, value]
        if updates:
            self.config = _dc_replace(self.config, **updates)
            self.gate.max_inflight = self.config.max_inflight
            self.gate.retry_after_s = self.config.retry_after_s
            self.breaker.failure_threshold = max(
                1, self.config.breaker_threshold
            )
            self.breaker.reset_after_s = self.config.breaker_reset_s
        print(
            f"neurometer serve: config reloaded from {path} "
            f"({len(outcome['changed'])} change(s), "
            f"{len(outcome['ignored'])} ignored)",
            file=sys.stderr,
            flush=True,
        )
        self._journal_reload(path, outcome)
        return outcome

    def _journal_reload(
        self, path: str, outcome: dict, error: Optional[str] = None
    ) -> None:
        if self.request_log is None:
            return
        self.request_log.record(
            request_id=next(self._request_ids),
            endpoint="/-/config-reload",
            status=500 if error else 200,
            wall_time_s=0.0,
            error=error,
            detail={"path": path, **outcome},
        )

    def begin_drain(self) -> None:
        """Stop admitting and checkpoint in-flight sweeps.

        Admitted requests are not killed: pooled sweeps observe
        ``drain_abort`` at the next point boundary, journal what
        finished, and answer 503 with ``resumable: true``.
        """
        self.gate.begin_drain()
        self.drain_abort.set()
        if self.drain_requested is not None:
            self.drain_requested.set()

    def status_payload(self) -> dict:
        from repro.cache.store import get_estimate_cache

        return {
            "api_version": API_VERSION,
            "state": "draining" if self.gate.draining else "serving",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "admission": self.gate.snapshot(),
            "breaker": self.breaker.snapshot(),
            "pool": {
                "jobs": self.pool.jobs,
                "workers": len(self.pool.workers),
                "worker_pids": self.pool.worker_pids(),
                "spawned_total": self.pool.spawned_total,
            },
            "cache": get_estimate_cache().stats.snapshot(),
            "backend": self.config.backend,
            "vector_fallbacks": {
                reason: count
                for reason, count in sorted(self.fallback_counts.items())
            },
            "responses_by_status": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
            "requests_journaled": (
                self.request_log.recorded_total
                if self.request_log is not None else None
            ),
        }

    def close(self) -> None:
        """Tear down the shared state (pool, executor, request log)."""
        self.drain_abort.set()
        self.executor.shutdown(wait=True)
        self.pool.close()
        if self.request_log is not None:
            self.request_log.close()
