"""A thin synchronous client for the daemon (stdlib ``http.client``).

Used by the CLI's ``--remote URL`` mode and by the test suite.  The
client speaks the same taxonomy as the server: a non-2xx answer is
raised as :class:`RemoteError` carrying the server's typed error name,
message, status, and ``Retry-After`` hint, so callers can branch on
``error_type`` exactly as they would on a local exception class.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional
from urllib.parse import urlsplit

from repro.errors import ConfigurationError, RemoteError


class ServeClient:
    """One daemon endpoint; a fresh connection per request.

    Args:
        url: Base URL, e.g. ``http://127.0.0.1:8757``.
        timeout_s: Socket-level timeout per request.
        deadline_s: Server-side request deadline (``X-Deadline-S``);
            ``None`` leaves the server default.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 120.0,
        deadline_s: Optional[float] = None,
    ):
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ConfigurationError(
                f"only http:// daemon URLs are supported, got {url!r}"
            )
        if not split.hostname:
            raise ConfigurationError(f"daemon URL has no host: {url!r}")
        self.host = split.hostname
        self.port = split.port or 8757
        self.timeout_s = timeout_s
        self.deadline_s = deadline_s

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> dict:
        """One HTTP exchange; 2xx returns the JSON payload, else raises.

        Raises:
            RemoteError: the daemon answered with an error status.
            ConfigurationError: the daemon is unreachable or answered
                with something that is not the protocol.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        headers = {"Content-Type": "application/json"}
        if self.deadline_s is not None:
            headers["X-Deadline-S"] = f"{self.deadline_s:g}"
        encoded = json.dumps(body).encode("utf-8") if body is not None \
            else b""
        try:
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        except (ConnectionError, OSError) as error:
            raise ConfigurationError(
                f"daemon at {self.host}:{self.port} is unreachable: "
                f"{error}"
            ) from error
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ConfigurationError(
                f"daemon answered non-JSON (status {status})"
            ) from error
        if 200 <= status < 300:
            return payload
        raise RemoteError(
            payload.get("message", f"HTTP {status}"),
            status=status,
            error_type=payload.get("error", ""),
            retry_after_s=(
                float(retry_after) if retry_after is not None
                else payload.get("retry_after_s")
            ),
            payload=payload,
        )

    def request_with_backoff(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        max_attempts: int = 5,
        sleep=time.sleep,
    ) -> dict:
        """Like :meth:`request`, but honors 503 shedding with backoff."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.request(method, path, body)
            except RemoteError as error:
                if not error.is_shed or attempt >= max_attempts:
                    raise
                sleep(error.retry_after_s or 1.0)

    # -- endpoint wrappers ---------------------------------------------------

    def status(self) -> dict:
        return self.request("GET", "/status")

    def estimate(self, point, **body) -> dict:
        body["point"] = list(point)
        return self.request("POST", "/estimate", body)

    def sweep(self, points, **body) -> dict:
        body["points"] = [list(point) for point in points]
        return self.request("POST", "/sweep", body)

    def claim_shard(self, manifest: dict, shard=None, **body) -> dict:
        """Ask the daemon to claim and run one shard of a manifest.

        ``manifest`` is the ``ShardManifest.to_dict()`` payload.  With
        ``shard`` set, the daemon runs exactly that shard (a live
        holder answers HTTP 409 — :class:`RemoteError` with
        ``error_type == "ShardLeaseHeldError"``); otherwise it claims
        the first pending or abandoned shard, and ``{"shard": null}``
        in the answer means nothing was claimable.
        """
        body["manifest"] = manifest
        if shard is not None:
            body["shard"] = int(shard)
        return self.request("POST", "/sweep", body)

    def optimize(self, **body) -> dict:
        return self.request("POST", "/optimize", body)

    def doctor(self, **body) -> dict:
        return self.request("POST", "/doctor", body)

    def drain(self) -> dict:
        return self.request("POST", "/drain")

    def wait_healthy(
        self, timeout_s: float = 10.0, interval_s: float = 0.1
    ) -> dict:
        """Poll ``/status`` until the daemon answers or the budget ends."""
        deadline = time.monotonic() + timeout_s
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.status()
            except (ConfigurationError, RemoteError) as error:
                last_error = error
                time.sleep(interval_s)
        raise ConfigurationError(
            f"daemon at {self.host}:{self.port} did not become healthy "
            f"within {timeout_s:g}s: {last_error}"
        )
