"""``neurometer serve``: a fault-tolerant estimation daemon.

Batch CLI invocations pay the cold-start cost of the tech substrates,
the estimate cache, and the worker pool on every call.  The serve
package keeps all three warm in one long-lived process and exposes the
estimation surface as a small JSON-over-HTTP API
(``/estimate``, ``/sweep``, ``/optimize``, ``/doctor``, ``/status``,
``/drain``) that search loops can hammer with thousands of small
queries.

Robustness is the headline, not an afterthought:

* every request carries a deadline (:mod:`repro.serve.app`);
* worker crashes are retried with exponential backoff + jitter
  (:mod:`repro.serve.retry`);
* typed model errors map onto a stable HTTP taxonomy
  (:mod:`repro.serve.protocol`);
* a bounded admission gate sheds load with ``Retry-After``
  (:mod:`repro.serve.backpressure`);
* a circuit breaker degrades a failing model family to peak-only
  estimates instead of going dark (:mod:`repro.serve.breaker`);
* every request is journaled to crash-safe JSONL
  (:mod:`repro.serve.requestlog`);
* SIGTERM drains gracefully — in-flight sweeps checkpoint to their
  journals so ``--resume`` completes them (:mod:`repro.serve.lifecycle`).
"""

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.backpressure import AdmissionGate
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import RemoteError, ServeClient
from repro.serve.protocol import (
    DrainingError,
    LoadShedError,
    error_payload,
    status_for,
)
from repro.serve.retry import BackoffPolicy
from repro.serve.lifecycle import run_server

__all__ = [
    "AdmissionGate",
    "BackoffPolicy",
    "CircuitBreaker",
    "DrainingError",
    "LoadShedError",
    "RemoteError",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "error_payload",
    "run_server",
    "status_for",
]
