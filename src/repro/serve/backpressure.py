"""Bounded admission: shed load instead of queueing without bound.

An estimation daemon under a search loop sees bursts far beyond its
worker capacity.  Queueing everything turns a burst into unbounded
latency for *every* client; the gate instead admits up to
``max_inflight`` requests and sheds the rest immediately with a 503 and
a ``Retry-After`` hint, which well-behaved clients (including
:class:`repro.serve.client.ServeClient`) honor with backoff.

The gate is also the drain latch: once :meth:`begin_drain` is called no
new work is admitted, and :meth:`drained` completes when the last
in-flight request finishes — the SIGTERM handler awaits exactly that.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.errors import ConfigurationError
from repro.serve.protocol import DrainingError, LoadShedError


class AdmissionGate:
    """Counting gate with load shedding and a drain latch.

    Single-threaded by construction: every method runs on the event
    loop, so plain counters are race-free.
    """

    def __init__(self, max_inflight: int, retry_after_s: float = 1.0):
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.inflight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.peak_inflight = 0
        self.draining = False
        self._idle: Optional[asyncio.Event] = None

    def _idle_event(self) -> asyncio.Event:
        if self._idle is None:
            self._idle = asyncio.Event()
            if self.inflight == 0:
                self._idle.set()
        return self._idle

    def admit(self) -> "_Admission":
        """Admit one request or raise the shedding/draining error.

        Raises:
            DrainingError: the daemon no longer accepts work.
            LoadShedError: capacity is full; retry after the hint.
        """
        if self.draining:
            raise DrainingError("daemon is draining; no new work admitted")
        if self.inflight >= self.max_inflight:
            self.shed_total += 1
            raise LoadShedError(
                f"at capacity ({self.inflight}/{self.max_inflight} "
                f"in flight); retry after {self.retry_after_s:g}s",
                retry_after_s=self.retry_after_s,
            )
        self.inflight += 1
        self.admitted_total += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        self._idle_event().clear()
        return _Admission(self)

    def _release(self) -> None:
        self.inflight -= 1
        if self.inflight == 0:
            self._idle_event().set()

    def begin_drain(self) -> None:
        """Stop admitting; already-admitted requests run to completion."""
        self.draining = True
        self._idle_event()  # materialize so drained() can await it

    async def drained(self, grace_s: Optional[float] = None) -> bool:
        """Wait until nothing is in flight; ``False`` on grace expiry."""
        event = self._idle_event()
        if grace_s is None:
            await event.wait()
            return True
        try:
            await asyncio.wait_for(event.wait(), timeout=grace_s)
        except asyncio.TimeoutError:
            return False
        return True

    def snapshot(self) -> dict:
        return {
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "peak_inflight": self.peak_inflight,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "draining": self.draining,
        }


class _Admission:
    """Context manager releasing one admission slot on exit."""

    def __init__(self, gate: AdmissionGate):
        self._gate = gate
        self._released = False

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._released:
            self._released = True
            self._gate._release()
