"""Bounded retry with exponential backoff + jitter for worker crashes.

A pool worker that dies mid-request (OOM kill, fork bomb elsewhere on
the box, a genuine model crash) is an *environment* failure: the request
itself may be perfectly healthy, so the daemon retries it — but only a
bounded number of times, with exponentially growing delays, and with
seeded jitter so a burst of simultaneous crashes does not resynchronize
into a retry stampede.

Integrity failures (NumericalError and friends) are **not** retried —
the same model evaluates the same way every time; those feed the
circuit breaker instead (:mod:`repro.serve.breaker`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass
class BackoffPolicy:
    """Exponential backoff schedule with deterministic jitter.

    ``delays()`` yields one delay per *retry* (``max_attempts - 1``
    values): ``base_delay_s * multiplier**i``, capped at
    ``max_delay_s``, each multiplied by a jitter factor drawn uniformly
    from ``[1 - jitter, 1 + jitter]`` using a seeded RNG so test runs
    and journal replays see identical schedules.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        self._rng = random.Random(self.seed)

    def delays(self) -> Iterator[float]:
        """The delay before each retry, in order."""
        for attempt in range(self.max_attempts - 1):
            base = min(
                self.base_delay_s * self.multiplier**attempt,
                self.max_delay_s,
            )
            factor = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
            yield base * factor
