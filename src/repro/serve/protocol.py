"""The wire protocol: error taxonomy and its HTTP mapping.

The daemon never answers with an opaque 500 for a *modeled* failure.
Every typed :mod:`repro.errors` exception maps onto a stable HTTP status
so clients can react mechanically:

=====================================  =====  ===============================
exception                              code   client reaction
=====================================  =====  ===============================
``ConfigurationError``                 400    fix the request, do not retry
``TechnologyError``                    400    fix the request, do not retry
``MappingError``                       400    fix the request, do not retry
``NumericalError``                     422    model integrity: report it
``InvariantViolation``                 422    model integrity: report it
``ValidationError``                    422    model integrity: report it
``OptimizationError``                  422    no feasible design; relax bounds
``PointTimeoutError`` / deadline       504    retry with a larger deadline
``ShardLeaseHeldError``                409    claim a different shard
``LoadShedError``                      503    back off ``Retry-After`` seconds
``DrainingError``                      503    the daemon is shutting down
other ``NeuroMeterError``              400    fix the request
anything else                          500    daemon bug; file an issue
=====================================  =====  ===============================

The body of every error response is the JSON object built by
:func:`error_payload` — the exception class name, the message, and the
status — so the CLI client can rehydrate a typed error on its side.
"""

from __future__ import annotations

import asyncio

from repro.errors import (
    ConfigurationError,
    DrainingError,
    InvariantViolation,
    LoadShedError,
    MappingError,
    NeuroMeterError,
    NumericalError,
    OptimizationError,
    PointTimeoutError,
    ShardLeaseHeldError,
    TechnologyError,
    ValidationError,
)


#: Exceptions that indicate *model integrity* damage — these feed the
#: circuit breaker, unlike plain bad-request configuration errors.
INTEGRITY_ERRORS = (NumericalError, InvariantViolation, ValidationError)

#: Exception class names treated as integrity failures when they arrive
#: as structured strings (the engine reports worker failures by name).
INTEGRITY_ERROR_NAMES = frozenset(
    error.__name__ for error in INTEGRITY_ERRORS
)

_STATUS_MAP = (
    # Order matters: subclasses before NeuroMeterError.
    (LoadShedError, 503),
    (DrainingError, 503),
    (PointTimeoutError, 504),
    (ShardLeaseHeldError, 409),
    ((asyncio.TimeoutError, TimeoutError), 504),
    (INTEGRITY_ERRORS, 422),
    (OptimizationError, 422),
    ((ConfigurationError, TechnologyError, MappingError), 400),
    (NeuroMeterError, 400),
)

#: ``error_type`` string -> status, for failures that crossed a process
#: boundary as structured records instead of live exceptions.
ERROR_TYPE_STATUS = {
    "ConfigurationError": 400,
    "TechnologyError": 400,
    "MappingError": 400,
    "NumericalError": 422,
    "InvariantViolation": 422,
    "ValidationError": 422,
    "OptimizationError": 422,
    "PointTimeoutError": 504,
    "ShardLeaseHeldError": 409,
    "WorkerCrash": 500,
}


def status_for(error: BaseException) -> int:
    """The HTTP status code for one exception (500 for unknown types)."""
    for types, status in _STATUS_MAP:
        if isinstance(error, types):
            return status
    return 500


def error_payload(error: BaseException, status: int = None) -> dict:
    """The JSON body for an error response."""
    if status is None:
        status = status_for(error)
    payload = {
        "error": type(error).__name__,
        "message": str(error),
        "status": status,
    }
    if isinstance(error, LoadShedError):
        payload["retry_after_s"] = error.retry_after_s
    return payload
