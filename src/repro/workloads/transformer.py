"""Transformer encoder workloads (extension beyond the paper's CNNs).

The paper's datacenter study predates the Transformer-dominated serving
era; this extension adds a BERT-class encoder so the same design-space
machinery can evaluate attention workloads.  Each encoder layer is the
standard stack of GEMM-shaped operators: QKV projections, attention
scores/context (sequence-batched GEMMs), the output projection, and the
two FFN matmuls — all expressible in the existing graph IR.

A (seq, hidden) "image" shape carries the token activations: height =
sequence length, width = 1, channels = hidden size, so a 1x1 Conv2d is
exactly a per-token dense layer with M = seq.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.perf.graph import Graph
from repro.perf.ops import Activation, Conv2d, Elementwise


def _dense(
    graph: Graph, name: str, inputs: str, units: int
) -> str:
    """A per-token dense layer (1x1 conv over the (seq, 1, hidden) map)."""
    graph.add(name, Conv2d(units, kernel=1), [inputs])
    return name


def _attention_mixing(
    graph: Graph, name: str, inputs: str, hidden: int, heads: int
) -> str:
    """Score + context GEMMs of multi-head attention.

    Per head: scores = Q K^T (seq x seq x head_dim) and context =
    scores V (seq x head_dim x seq).  Expressed as one grouped 1x1 conv
    whose reduction dimension carries the per-head mixing volume — the
    MAC count and operand traffic match the batched attention GEMMs.
    """
    seq = graph.node(inputs).output_shape[0]
    del heads  # mixing volume is head-count independent at fixed hidden
    # Each token attends over `seq` keys and mixes `seq` values: the
    # per-token reduction volume is 2 * seq * hidden MACs, identical to a
    # dense layer with 2*seq*hidden/hidden = 2*seq "virtual" channels
    # feeding `hidden` outputs ... realized as two seq-wide mixes.
    graph.add(
        f"{name}.scores", Conv2d(seq, kernel=1, weightless=True), [inputs]
    )
    graph.add(f"{name}.softmax", Activation(ops_per_element=4))
    graph.add(
        f"{name}.context", Conv2d(hidden, kernel=1, weightless=True)
    )
    return f"{name}.context"


def transformer_encoder(
    layers: int = 12,
    hidden: int = 768,
    heads: int = 12,
    ffn: int = 3072,
    seq: int = 128,
    name: str = "BERT-base",
) -> Graph:
    """Build an encoder-only Transformer (BERT-base by default).

    Args:
        layers: Encoder layers.
        hidden: Model width.
        heads: Attention heads (hidden must divide evenly).
        ffn: Feed-forward inner width.
        seq: Sequence length.
        name: Graph name.
    """
    if hidden % heads:
        raise ConfigurationError(
            f"hidden ({hidden}) must be divisible by heads ({heads})"
        )
    if min(layers, hidden, heads, ffn, seq) < 1:
        raise ConfigurationError("all transformer dimensions must be >= 1")

    graph = Graph(name, (seq, 1, hidden))
    previous = "input"
    for index in range(layers):
        prefix = f"layer{index}"
        qkv = _dense(graph, f"{prefix}.qkv", previous, 3 * hidden)
        mixed = _attention_mixing(
            graph, f"{prefix}.attn", qkv, hidden, heads
        )
        out = _dense(graph, f"{prefix}.attn_out", mixed, hidden)
        graph.add(f"{prefix}.residual1", Elementwise(), [out, previous])
        graph.add(f"{prefix}.ln1", Activation(ops_per_element=4))

        up = _dense(graph, f"{prefix}.ffn_up", f"{prefix}.ln1", ffn)
        graph.add(f"{prefix}.gelu", Activation(ops_per_element=4))
        down = _dense(graph, f"{prefix}.ffn_down", f"{prefix}.gelu", hidden)
        graph.add(
            f"{prefix}.residual2", Elementwise(), [down, f"{prefix}.ln1"]
        )
        graph.add(f"{prefix}.ln2", Activation(ops_per_element=4))
        previous = f"{prefix}.ln2"
    return graph


def bert_base(seq: int = 128) -> Graph:
    """BERT-base: 12 layers, hidden 768, 12 heads, FFN 3072."""
    return transformer_encoder(seq=seq)


def bert_large(seq: int = 128) -> Graph:
    """BERT-large: 24 layers, hidden 1024, 16 heads, FFN 4096."""
    return transformer_encoder(
        layers=24,
        hidden=1024,
        heads=16,
        ffn=4096,
        seq=seq,
        name="BERT-large",
    )


def gpt_decode_step(
    layers: int = 12,
    hidden: int = 768,
    heads: int = 12,
    ffn: int = 3072,
    context: int = 1024,
    name: str = "GPT-decode",
) -> Graph:
    """One autoregressive decode step (a single token against a KV cache).

    Every projection GEMM has M = 1, and the attention mixes read the
    whole ``context``-deep KV cache — the classic memory-bound serving
    workload where large systolic arrays idle.  Batch the step (the
    simulator's ``batch``) to model multi-request serving.
    """
    if hidden % heads:
        raise ConfigurationError(
            f"hidden ({hidden}) must be divisible by heads ({heads})"
        )
    if min(layers, hidden, heads, ffn, context) < 1:
        raise ConfigurationError("all decoder dimensions must be >= 1")

    graph = Graph(name, (1, 1, hidden))
    previous = "input"
    for index in range(layers):
        prefix = f"layer{index}"
        qkv = _dense(graph, f"{prefix}.qkv", previous, 3 * hidden)
        # Scores against the cached keys, context against cached values.
        graph.add(
            f"{prefix}.scores",
            Conv2d(context, kernel=1, weightless=True),
            [qkv],
        )
        graph.add(f"{prefix}.softmax", Activation(ops_per_element=4))
        graph.add(
            f"{prefix}.context",
            Conv2d(hidden, kernel=1, weightless=True),
        )
        out = _dense(
            graph, f"{prefix}.attn_out", f"{prefix}.context", hidden
        )
        graph.add(f"{prefix}.residual1", Elementwise(), [out, previous])
        up = _dense(graph, f"{prefix}.ffn_up", f"{prefix}.residual1", ffn)
        graph.add(f"{prefix}.gelu", Activation(ops_per_element=4))
        down = _dense(graph, f"{prefix}.ffn_down", f"{prefix}.gelu", hidden)
        graph.add(
            f"{prefix}.residual2",
            Elementwise(),
            [down, f"{prefix}.residual1"],
        )
        previous = f"{prefix}.residual2"
    return graph
