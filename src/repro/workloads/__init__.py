"""Workload models: the networks and microbenchmarks of the case studies.

* :mod:`repro.workloads.resnet` / :mod:`repro.workloads.inception` /
  :mod:`repro.workloads.nasnet` — the three datacenter CNNs of Table II.
* :mod:`repro.workloads.alexnet` — AlexNet, for the Eyeriss runtime-power
  validation of Fig. 5(c-d).
* :mod:`repro.workloads.spmv` — the synthetic SpMV microbenchmark of the
  Sec. IV sparsity study.
"""

from repro.workloads.alexnet import alexnet
from repro.workloads.inception import inception_v3
from repro.workloads.mobilenet import mobilenet_v2
from repro.workloads.nasnet import nasnet_a_large
from repro.workloads.resnet import resnet50
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.transformer import (
    bert_base,
    bert_large,
    gpt_decode_step,
    transformer_encoder,
)

__all__ = [
    "SpmvWorkload",
    "alexnet",
    "bert_base",
    "bert_large",
    "gpt_decode_step",
    "transformer_encoder",
    "datacenter_workloads",
    "inception_v3",
    "mobilenet_v2",
    "nasnet_a_large",
    "resnet50",
]


def datacenter_workloads():
    """The three CNNs of the Sec. III study, as (name, graph) pairs."""
    return [
        ("ResNet", resnet50()),
        ("Inception", inception_v3()),
        ("NasNet", nasnet_a_large()),
    ]
