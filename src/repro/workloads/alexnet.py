"""AlexNet (Krizhevsky et al., 2012), for the Eyeriss validation.

The Fig. 5(c-d) validation runs AlexNet Conv1 and Conv5 on the Eyeriss
model; :func:`conv_layer` exposes single-layer graphs for that purpose.
Grouped convolutions follow the original two-GPU split.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.perf.graph import Graph
from repro.perf.ops import Activation, Conv2d, GlobalPool, MatMul, Pool

#: (name, Conv2d, followed_by_pool)
_CONV_LAYERS = (
    ("conv1", Conv2d(96, kernel=11, stride=4, same_pad=False), True),
    ("conv2", Conv2d(256, kernel=5, groups=2), True),
    ("conv3", Conv2d(384, kernel=3), False),
    ("conv4", Conv2d(384, kernel=3, groups=2), False),
    ("conv5", Conv2d(256, kernel=3, groups=2), True),
)


def alexnet(input_size: int = 227) -> Graph:
    """Full AlexNet at ``input_size`` (227 gives the canonical 55x55 conv1)."""
    graph = Graph("AlexNet", (input_size, input_size, 3))
    previous = "input"
    for name, conv, pooled in _CONV_LAYERS:
        graph.add(name, conv, [previous])
        graph.add(f"{name}.relu", Activation())
        previous = f"{name}.relu"
        if pooled:
            graph.add(
                f"{name}.pool", Pool(kernel=3, stride=2, same_pad=False)
            )
            previous = f"{name}.pool"
    graph.add("head.pool", GlobalPool(), [previous])
    # The three FC layers collapsed into their MAC-equivalent classifier.
    graph.add("fc6", MatMul(units=4096))
    graph.add("fc7", MatMul(units=4096))
    graph.add("fc8", MatMul(units=1000))
    return graph


def conv_layer(name: str, input_size: int = 227) -> Graph:
    """A single AlexNet convolution as its own graph (Eyeriss runs these).

    Args:
        name: ``"conv1"`` ... ``"conv5"``.
        input_size: Network input resolution.
    """
    full = alexnet(input_size)
    target = None
    for layer_name, conv, _ in _CONV_LAYERS:
        if layer_name == name:
            target = (layer_name, conv)
    if target is None:
        raise ConfigurationError(f"unknown AlexNet conv layer {name!r}")
    layer = full.node(target[0])
    graph = Graph(f"AlexNet-{name}", layer.input_shape)
    graph.add(target[0], target[1], ["input"])
    graph.add(f"{target[0]}.relu", Activation())
    return graph
