"""ResNet-50 (He et al., CVPR 2016), the v1.5 variant.

Built layer by layer as a branch-accurate graph.  Table II characterizes
the paper's ResNet at 7.8 G MAC ops, 23.7 M parameters (classifier
excluded, int8), and a 5.72 M-element peak activation footprint — numbers
consistent with the v1.5 strides evaluated at a 299x299 input, which is
the default here.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.perf.graph import Graph
from repro.perf.ops import (
    Activation,
    Conv2d,
    Elementwise,
    GlobalPool,
    MatMul,
    Pool,
)

#: Stage definitions: (blocks, bottleneck_channels, out_channels, stride).
_STAGES = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)


def _bottleneck(
    graph: Graph,
    name: str,
    input_layer: str,
    mid_channels: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> str:
    """One v1.5 bottleneck: 1x1 -> 3x3 (strided) -> 1x1 + shortcut."""
    graph.add(f"{name}.conv1", Conv2d(mid_channels, kernel=1), [input_layer])
    graph.add(f"{name}.relu1", Activation())
    graph.add(
        f"{name}.conv2", Conv2d(mid_channels, kernel=3, stride=stride)
    )
    graph.add(f"{name}.relu2", Activation())
    graph.add(f"{name}.conv3", Conv2d(out_channels, kernel=1))

    if project:
        graph.add(
            f"{name}.proj",
            Conv2d(out_channels, kernel=1, stride=stride),
            [input_layer],
        )
        shortcut = f"{name}.proj"
    else:
        shortcut = input_layer
    graph.add(
        f"{name}.add", Elementwise(), [f"{name}.conv3", shortcut]
    )
    graph.add(f"{name}.relu3", Activation())
    return f"{name}.relu3"


def resnet50(input_size: int = 299) -> Graph:
    """Build ResNet-50 v1.5 at ``input_size`` x ``input_size`` x 3."""
    if input_size < 64:
        raise ConfigurationError("ResNet needs an input of at least 64 px")
    graph = Graph("ResNet-50", (input_size, input_size, 3))
    graph.add("stem.conv", Conv2d(64, kernel=7, stride=2), ["input"])
    graph.add("stem.relu", Activation())
    graph.add("stem.pool", Pool(kernel=3, stride=2))

    previous = "stem.pool"
    for stage_index, (blocks, mid, out, stride) in enumerate(_STAGES, 1):
        for block_index in range(blocks):
            name = f"stage{stage_index}.block{block_index}"
            previous = _bottleneck(
                graph,
                name,
                previous,
                mid_channels=mid,
                out_channels=out,
                stride=stride if block_index == 0 else 1,
                project=block_index == 0,
            )

    graph.add("head.pool", GlobalPool(), [previous])
    graph.add("head.fc", MatMul(units=1000))
    return graph
