"""NasNet-A-Large (Zoph et al., CVPR 2018), the 6@4032 configuration.

NASNet's searched cells are dominated by separable convolutions (depthwise
+ pointwise, applied twice), which is why the paper's NasNet column in
Table II carries 23.8 G MAC ops and 84.9 M parameters at a 331x331 input.
The normal/reduction cell wiring below follows the published NASNet-A
architecture; every cell input is width-adjusted by a 1x1 convolution, and
spatial mismatches after reductions use a strided 1x1 (factorized
reduction).
"""

from __future__ import annotations

from repro.perf.graph import Graph
from repro.perf.ops import (
    Activation,
    Concat,
    Conv2d,
    DepthwiseConv2d,
    Elementwise,
    GlobalPool,
    MatMul,
    Pool,
)

#: Cell filter progression of the 6@4032 network.
_BASE_FILTERS = 168
_CELLS_PER_STAGE = 6


class _CellBuilder:
    """Names layers and provides the NASNet primitive ops."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.counter = 0

    def _next(self, kind: str) -> str:
        self.counter += 1
        return f"{kind}{self.counter}"

    def conv1x1(self, x: str, filters: int, stride: int = 1) -> str:
        name = self._next("adjust")
        self.graph.add(name, Conv2d(filters, kernel=1, stride=stride), [x])
        self.graph.add(f"{name}.relu", Activation())
        return f"{name}.relu"

    def sep(self, x: str, filters: int, kernel: int, stride: int = 1) -> str:
        """Separable conv applied twice (NASNet convention)."""
        name = self._next("sep")
        self.graph.add(
            f"{name}.dw1", DepthwiseConv2d(kernel=kernel, stride=stride), [x]
        )
        self.graph.add(f"{name}.pw1", Conv2d(filters, kernel=1))
        self.graph.add(
            f"{name}.dw2", DepthwiseConv2d(kernel=kernel, stride=1)
        )
        self.graph.add(f"{name}.pw2", Conv2d(filters, kernel=1))
        self.graph.add(f"{name}.relu", Activation())
        return f"{name}.relu"

    def pool(self, x: str, kind: str, stride: int = 1) -> str:
        name = self._next(kind)
        self.graph.add(name, Pool(kernel=3, stride=stride), [x])
        return name

    def add(self, a: str, b: str) -> str:
        name = self._next("add")
        self.graph.add(name, Elementwise(), [a, b])
        return name

    def concat(self, branches: list[str]) -> str:
        name = self._next("cellout")
        total = sum(
            self.graph.node(branch).output_shape[2] for branch in branches
        )
        self.graph.add(name, Concat(total_channels=total), branches)
        return name

    def match_spatial(self, x: str, reference: str, filters: int) -> str:
        """Factorized reduction when ``x`` is spatially larger than ref."""
        x_shape = self.graph.node(x).output_shape
        ref_shape = self.graph.node(reference).output_shape
        if x_shape[0] > ref_shape[0]:
            return self.conv1x1(x, filters, stride=2)
        return self.conv1x1(x, filters)


def _normal_cell(b: _CellBuilder, prev: str, prev_prev: str, f: int) -> str:
    """NASNet-A normal cell (5 blocks, 6-way concat)."""
    h = b.conv1x1(prev, f)
    hp = b.match_spatial(prev_prev, prev, f)

    block1 = b.add(b.sep(hp, f, 5), b.sep(h, f, 3))
    block2 = b.add(b.sep(hp, f, 5), b.sep(hp, f, 3))
    block3 = b.add(b.pool(h, "avg"), hp)
    block4 = b.add(b.pool(hp, "avg"), b.pool(hp, "avg"))
    block5 = b.add(b.sep(h, f, 3), h)
    return b.concat([hp, block1, block2, block3, block4, block5])


def _reduction_cell(
    b: _CellBuilder, prev: str, prev_prev: str, f: int
) -> str:
    """NASNet-A reduction cell (stride-2 blocks, 4-way concat)."""
    h = b.conv1x1(prev, f)
    hp = b.match_spatial(prev_prev, prev, f)

    block1 = b.add(b.sep(hp, f, 7, stride=2), b.sep(h, f, 5, stride=2))
    block2 = b.add(b.pool(h, "max", stride=2), b.sep(hp, f, 7, stride=2))
    block3 = b.add(b.pool(h, "avg", stride=2), b.sep(hp, f, 5, stride=2))
    block4 = b.add(b.pool(h, "max", stride=2), b.sep(block1, f, 3))
    block5 = b.add(b.pool(block1, "avg"), block2)
    return b.concat([block2, block3, block4, block5])


def nasnet_a_large(input_size: int = 331) -> Graph:
    """Build NasNet-A-Large (6@4032) at ``input_size`` x ``input_size``."""
    graph = Graph("NasNet-A-Large", (input_size, input_size, 3))
    b = _CellBuilder(graph)

    graph.add(
        "stem.conv", Conv2d(96, kernel=3, stride=2, same_pad=False),
        ["input"],
    )
    stem = "stem.conv"
    filters = _BASE_FILTERS
    stem0 = _reduction_cell(b, stem, stem, filters // 4)
    stem1 = _reduction_cell(b, stem0, stem, filters // 2)

    prev, prev_prev = stem1, stem0
    for stage in range(3):
        for _ in range(_CELLS_PER_STAGE):
            out = _normal_cell(b, prev, prev_prev, filters)
            prev_prev, prev = prev, out
        if stage < 2:
            filters *= 2
            out = _reduction_cell(b, prev, prev_prev, filters)
            prev_prev, prev = prev, out

    graph.add("head.relu", Activation(), [prev])
    graph.add("head.pool", GlobalPool())
    graph.add("head.fc", MatMul(units=1000))
    return graph
