"""MobileNet-v2 (Sandler et al., CVPR 2018) — the canonical edge CNN.

Added for the edge-scenario study: inverted residual bottlenecks are
dominated by depthwise convolutions and narrow pointwise GEMMs, the
opposite operating point from the datacenter CNNs of Table II.  Literature
numbers at 224x224: ~0.30 G MACs, ~3.5 M parameters (2.2 M excluding the
classifier).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.perf.graph import Graph
from repro.perf.ops import (
    Activation,
    Conv2d,
    DepthwiseConv2d,
    Elementwise,
    GlobalPool,
    MatMul,
)

#: Inverted-residual stages: (expansion t, out channels c, repeats n,
#: stride s) — Table 2 of the MobileNet-v2 paper.
_STAGES = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(
    graph: Graph,
    name: str,
    inputs: str,
    expansion: int,
    out_channels: int,
    stride: int,
) -> str:
    in_channels = graph.node(inputs).output_shape[2]
    hidden = in_channels * expansion
    previous = inputs
    if expansion != 1:
        graph.add(f"{name}.expand", Conv2d(hidden, kernel=1), [previous])
        graph.add(f"{name}.expand.relu", Activation())
        previous = f"{name}.expand.relu"
    graph.add(
        f"{name}.dw", DepthwiseConv2d(kernel=3, stride=stride), [previous]
    )
    graph.add(f"{name}.dw.relu", Activation())
    graph.add(f"{name}.project", Conv2d(out_channels, kernel=1))
    if stride == 1 and in_channels == out_channels:
        graph.add(
            f"{name}.add", Elementwise(), [f"{name}.project", inputs]
        )
        return f"{name}.add"
    return f"{name}.project"


def mobilenet_v2(input_size: int = 224, width_multiplier: float = 1.0) -> Graph:
    """Build MobileNet-v2 at ``input_size`` with a width multiplier."""
    if input_size < 32:
        raise ConfigurationError("MobileNet needs an input of >= 32 px")
    if width_multiplier <= 0:
        raise ConfigurationError("width multiplier must be positive")

    def width(channels: int) -> int:
        return max(8, int(round(channels * width_multiplier / 8) * 8))

    graph = Graph("MobileNet-v2", (input_size, input_size, 3))
    graph.add("stem.conv", Conv2d(width(32), kernel=3, stride=2), ["input"])
    graph.add("stem.relu", Activation())

    previous = "stem.relu"
    for stage, (t, c, n, s) in enumerate(_STAGES):
        for block in range(n):
            previous = _inverted_residual(
                graph,
                f"stage{stage}.block{block}",
                previous,
                expansion=t,
                out_channels=width(c),
                stride=s if block == 0 else 1,
            )

    graph.add("head.conv", Conv2d(width(1280), kernel=1), [previous])
    graph.add("head.relu", Activation())
    graph.add("head.pool", GlobalPool())
    graph.add("head.fc", MatMul(units=1000))
    return graph
