"""Inception-v3 (Szegedy et al., CVPR 2016).

The standard 299x299 architecture with the factorized 1x7/7x1 modules,
built module by module.  Table II characterizes it at 5.7 G MAC ops and
22.0 M parameters (classifier excluded).
"""

from __future__ import annotations

from repro.perf.graph import Graph
from repro.perf.ops import (
    Activation,
    Concat,
    Conv2d,
    GlobalPool,
    MatMul,
    Pool,
)


class _Builder:
    """Small helper that names layers and tracks module counters."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.counter = 0

    def conv(
        self,
        inputs: str,
        out_channels: int,
        kernel: int = 1,
        kernel_w: int = None,
        stride: int = 1,
        same_pad: bool = True,
    ) -> str:
        self.counter += 1
        name = f"conv{self.counter}"
        self.graph.add(
            name,
            Conv2d(
                out_channels,
                kernel=kernel,
                kernel_w=kernel_w,
                stride=stride,
                same_pad=same_pad,
            ),
            [inputs],
        )
        self.graph.add(f"{name}.relu", Activation())
        return f"{name}.relu"

    def pool(
        self, inputs: str, kernel: int, stride: int, same_pad: bool = True
    ) -> str:
        self.counter += 1
        name = f"pool{self.counter}"
        self.graph.add(
            name, Pool(kernel=kernel, stride=stride, same_pad=same_pad),
            [inputs],
        )
        return name

    def concat(self, branches: list[str]) -> str:
        self.counter += 1
        name = f"concat{self.counter}"
        total = sum(
            self.graph.node(b).output_shape[2] for b in branches
        )
        self.graph.add(name, Concat(total_channels=total), branches)
        return name


def _inception_a(b: _Builder, x: str, pool_features: int) -> str:
    b1 = b.conv(x, 64, kernel=1)
    b2 = b.conv(x, 48, kernel=1)
    b2 = b.conv(b2, 64, kernel=5)
    b3 = b.conv(x, 64, kernel=1)
    b3 = b.conv(b3, 96, kernel=3)
    b3 = b.conv(b3, 96, kernel=3)
    b4 = b.pool(x, kernel=3, stride=1)
    b4 = b.conv(b4, pool_features, kernel=1)
    return b.concat([b1, b2, b3, b4])


def _reduction_a(b: _Builder, x: str) -> str:
    b1 = b.conv(x, 384, kernel=3, stride=2, same_pad=False)
    b2 = b.conv(x, 64, kernel=1)
    b2 = b.conv(b2, 96, kernel=3)
    b2 = b.conv(b2, 96, kernel=3, stride=2, same_pad=False)
    b3 = b.pool(x, kernel=3, stride=2, same_pad=False)
    return b.concat([b1, b2, b3])


def _inception_b(b: _Builder, x: str, c7: int) -> str:
    b1 = b.conv(x, 192, kernel=1)
    b2 = b.conv(x, c7, kernel=1)
    b2 = b.conv(b2, c7, kernel=1, kernel_w=7)
    b2 = b.conv(b2, 192, kernel=7, kernel_w=1)
    b3 = b.conv(x, c7, kernel=1)
    b3 = b.conv(b3, c7, kernel=7, kernel_w=1)
    b3 = b.conv(b3, c7, kernel=1, kernel_w=7)
    b3 = b.conv(b3, c7, kernel=7, kernel_w=1)
    b3 = b.conv(b3, 192, kernel=1, kernel_w=7)
    b4 = b.pool(x, kernel=3, stride=1)
    b4 = b.conv(b4, 192, kernel=1)
    return b.concat([b1, b2, b3, b4])


def _reduction_b(b: _Builder, x: str) -> str:
    b1 = b.conv(x, 192, kernel=1)
    b1 = b.conv(b1, 320, kernel=3, stride=2, same_pad=False)
    b2 = b.conv(x, 192, kernel=1)
    b2 = b.conv(b2, 192, kernel=1, kernel_w=7)
    b2 = b.conv(b2, 192, kernel=7, kernel_w=1)
    b2 = b.conv(b2, 192, kernel=3, stride=2, same_pad=False)
    b3 = b.pool(x, kernel=3, stride=2, same_pad=False)
    return b.concat([b1, b2, b3])


def _inception_c(b: _Builder, x: str) -> str:
    b1 = b.conv(x, 320, kernel=1)
    b2 = b.conv(x, 384, kernel=1)
    b2a = b.conv(b2, 384, kernel=1, kernel_w=3)
    b2b = b.conv(b2, 384, kernel=3, kernel_w=1)
    b2 = b.concat([b2a, b2b])
    b3 = b.conv(x, 448, kernel=1)
    b3 = b.conv(b3, 384, kernel=3)
    b3a = b.conv(b3, 384, kernel=1, kernel_w=3)
    b3b = b.conv(b3, 384, kernel=3, kernel_w=1)
    b3 = b.concat([b3a, b3b])
    b4 = b.pool(x, kernel=3, stride=1)
    b4 = b.conv(b4, 192, kernel=1)
    return b.concat([b1, b2, b3, b4])


def inception_v3(input_size: int = 299) -> Graph:
    """Build Inception-v3 at ``input_size`` x ``input_size`` x 3."""
    graph = Graph("Inception-v3", (input_size, input_size, 3))
    b = _Builder(graph)

    x = b.conv("input", 32, kernel=3, stride=2, same_pad=False)
    x = b.conv(x, 32, kernel=3, same_pad=False)
    x = b.conv(x, 64, kernel=3)
    x = b.pool(x, kernel=3, stride=2, same_pad=False)
    x = b.conv(x, 80, kernel=1)
    x = b.conv(x, 192, kernel=3, same_pad=False)
    x = b.pool(x, kernel=3, stride=2, same_pad=False)

    x = _inception_a(b, x, pool_features=32)
    x = _inception_a(b, x, pool_features=64)
    x = _inception_a(b, x, pool_features=64)
    x = _reduction_a(b, x)
    for c7 in (128, 160, 160, 192):
        x = _inception_b(b, x, c7=c7)
    x = _reduction_b(b, x)
    x = _inception_c(b, x)
    x = _inception_c(b, x)

    graph.add("head.pool", GlobalPool(), [x])
    graph.add("head.fc", MatMul(units=1000))
    return graph
