"""The Sec. IV synthetic SpMV microbenchmark.

"A synthetic SpMV microbenchmark with different element-wise sparsities is
generated manually for a weight matrix of M x N and the batched vectors of
N x K, where M, N >= 1024, and the batch size K >= 32."  The weights use
the tiled CSR format; the batched vectors are dense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.roofline import RooflineInputs
from repro.sparse.csr import csr_beta
from repro.sparse.distributions import (
    ZeroLayout,
    clustered_sparse_matrix,
    uniform_sparse_matrix,
)
from repro.units import OPS_PER_MAC


@dataclass(frozen=True)
class SpmvWorkload:
    """One SpMV microbenchmark instance.

    Attributes:
        m / n: Weight-matrix shape (both >= 1024 in the case study).
        batch: Batched-vector count K (>= 32 in the case study).
        nonzero_ratio: x — retained weight fraction.
        layout: Zero distribution of the weight matrix.
    """

    m: int = 2048
    n: int = 2048
    batch: int = 32
    nonzero_ratio: float = 1.0
    layout: ZeroLayout = ZeroLayout.CLUSTERED

    def __post_init__(self) -> None:
        if self.m < 1024 or self.n < 1024:
            raise ConfigurationError(
                "the case study requires M, N >= 1024"
            )
        if self.batch < 32:
            raise ConfigurationError("the case study requires K >= 32")
        if not 0.0 < self.nonzero_ratio <= 1.0:
            raise ConfigurationError("nonzero ratio must be in (0, 1]")

    # -- roofline quantities ------------------------------------------------------

    @property
    def compute_ops(self) -> float:
        """C: dense MV operations (2 per MAC)."""
        return float(OPS_PER_MAC * self.m * self.n * self.batch)

    @property
    def vector_bytes(self) -> float:
        """S_V: batched input + output vectors, int8/int32."""
        return float(self.n * self.batch + self.m * self.batch)

    @property
    def weight_bytes(self) -> float:
        """S_W: dense int8 weight bytes."""
        return float(self.m * self.n)

    @property
    def beta(self) -> float:
        """CSR expansion factor of this matrix shape and density."""
        return csr_beta(self.m, self.n, self.nonzero_ratio)

    def roofline_inputs(
        self, compute_ops_per_s: float, bandwidth_bytes_per_s: float
    ) -> RooflineInputs:
        """Machine-specific roofline inputs for this workload."""
        return RooflineInputs(
            compute_ops=self.compute_ops,
            vector_bytes=self.vector_bytes,
            weight_bytes=self.weight_bytes,
            compute_ops_per_s=compute_ops_per_s,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        )

    # -- concrete matrices (for empirical y and round-trip tests) ----------------

    def materialize(
        self, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Generate the weight matrix with this workload's zero layout."""
        if self.layout is ZeroLayout.UNIFORM:
            return uniform_sparse_matrix(
                self.m, self.n, self.nonzero_ratio, rng
            )
        return clustered_sparse_matrix(
            self.m, self.n, self.nonzero_ratio, rng
        )
