"""Vector Register file (VReg): the data-exchange hub of the core.

Per Sec. II-A, the VReg sits between the TU(s), the VU, and the on-chip
memory.  NeuroMeter reserves two read ports and one write port per attached
functional unit (a core with one TU and one VU gets the default 4R/2W for
dual issue); multiple TUs may instead share one port group, trading mapping
flexibility for area.  Port count is the dominant cost and is why the
datacenter study caps TUs per core at four (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.regfile import RegisterFile
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w

#: Architectural vector registers.
DEFAULT_ENTRIES = 32

#: Bits per vector element held in the VReg (accumulation width).
ELEMENT_BITS = 32

#: Ports reserved per attached functional unit.
READ_PORTS_PER_UNIT = 2
WRITE_PORTS_PER_UNIT = 1


@dataclass(frozen=True)
class VRegConfig:
    """Vector register file configuration.

    Attributes:
        vector_lanes: Vector width in elements; auto-matched to the TU
            array length.
        attached_units: Functional units with private port groups (N TUs +
            1 VU unless ports are shared).
        shared_ports: When true, all TUs share a single port group (the
            paper's alternative for large N).
        entries: Number of architectural vector registers.
    """

    vector_lanes: int
    attached_units: int
    shared_ports: bool = False
    entries: int = DEFAULT_ENTRIES

    def __post_init__(self) -> None:
        if self.vector_lanes < 1:
            raise ConfigurationError("VReg needs at least one lane")
        if self.attached_units < 1:
            raise ConfigurationError("VReg needs at least one attached unit")
        if self.entries < 2:
            raise ConfigurationError("VReg needs at least two entries")

    @property
    def port_groups(self) -> int:
        """Independent port groups after optional sharing."""
        if self.shared_ports:
            return 2  # one shared TU group + the VU group
        return self.attached_units

    @property
    def read_ports(self) -> int:
        return READ_PORTS_PER_UNIT * self.port_groups

    @property
    def write_ports(self) -> int:
        return WRITE_PORTS_PER_UNIT * self.port_groups

    @property
    def issue_width(self) -> int:
        """Instructions issued per cycle (one per port group)."""
        return self.port_groups


class VectorRegisterFile:
    """Analytical model of the VReg as a wide multiported register file."""

    def __init__(self, config: VRegConfig):
        self.config = config

    def _regfile(self) -> RegisterFile:
        cfg = self.config
        return RegisterFile(
            entries=cfg.entries,
            word_bits=cfg.vector_lanes * ELEMENT_BITS,
            read_ports=cfg.read_ports,
            write_ports=cfg.write_ports,
        )

    def area_mm2(self, ctx: ModelContext) -> float:
        """Total VReg area."""
        return self._regfile().area_mm2(ctx.tech)

    def read_energy_pj(self, ctx: ModelContext) -> float:
        """One full-vector read."""
        return self._regfile().read_energy_pj(ctx.tech)

    def write_energy_pj(self, ctx: ModelContext) -> float:
        """One full-vector write."""
        return self._regfile().write_energy_pj(ctx.tech)

    def energy_per_active_cycle_pj(self, ctx: ModelContext) -> float:
        """All port groups active: 2 reads + 1 write per group."""
        rf = self._regfile()
        per_group = 2 * rf.read_energy_pj(ctx.tech) + rf.write_energy_pj(
            ctx.tech
        )
        return (
            self.config.port_groups
            * per_group
            * calibration.CLOCK_NETWORK_OVERHEAD
        )

    def cycle_time_ns(self, ctx: ModelContext) -> float:
        """Access-latency bound on the clock."""
        return self._regfile().access_latency_ns(ctx.tech)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full VReg estimate."""
        return Estimate(
            name="vector register file",
            area_mm2=self.area_mm2(ctx),
            dynamic_w=dynamic_power_w(
                self.energy_per_active_cycle_pj(ctx), ctx.freq_ghz
            )
            * calibration.TDP_ACTIVITY["memory"],
            leakage_w=self._regfile().leakage_w(ctx.tech),
            cycle_time_ns=self.cycle_time_ns(ctx),
        )
