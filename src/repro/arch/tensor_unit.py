"""Tensor Unit (TU): the systolic-array compute engine.

Per Sec. II-A, a TU is (1) an array of systolic cells — each a MAC plus a
DFF- or SRAM-based local buffer, (2) the wires between neighbouring cells,
and (3) DFF-based I/O FIFOs.  Two inner-TU interconnects are modeled:

* ``UNICAST`` — nearest-neighbour systolic links (TPU-v1 style), supporting
  weight-stationary and output-stationary dataflows, and
* ``MULTICAST`` — X/Y buses from the I/O FIFOs to every cell (Eyeriss
  style), whose bus is abstracted into the pi-RC model for timing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.dff import DffBank
from repro.circuit.gates import LogicBlock
from repro.circuit.mac import MacModel
from repro.circuit.rc import ladder_delay_ns
from repro.circuit.sram import SramArray
from repro.datatypes import INT8, DataType
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.tech.wire import WireType, wire_energy_pj_per_bit, wire_params
from repro.units import (
    dynamic_power_w,
    fj_to_pj,
    mm2_to_um2,
    um2_to_mm2,
    um_to_mm,
)


#: Placement overhead of the distributed I/O FIFO lanes.
FIFO_PLACEMENT_OVERHEAD = 1.15


class InterconnectKind(enum.Enum):
    """Inner-TU interconnection style (Fig. 2(c))."""

    UNICAST = "unicast"
    MULTICAST = "multicast"


class Dataflow(enum.Enum):
    """Systolic dataflow for unicast TUs."""

    WEIGHT_STATIONARY = "weight_stationary"
    OUTPUT_STATIONARY = "output_stationary"


@dataclass(frozen=True)
class SystolicCellConfig:
    """One systolic cell (SC).

    Attributes:
        input_dtype: Multiplier operand type.
        accum_dtype: Accumulator type; ``None`` picks the MAC default
            (int32 for integer inputs, fp32 for float inputs).
        spad_bytes: SRAM scratchpad inside the cell (Eyeriss-style PEs;
            0 for plain systolic cells).
        reg_bytes: Register-file bytes inside the cell beyond the pipeline
            registers (Eyeriss carries 72 B).
        control_gates: Per-cell control logic (larger for PEs that run
            their own dataflow control).
    """

    input_dtype: DataType = INT8
    accum_dtype: DataType = None  # type: ignore[assignment]
    spad_bytes: int = 0
    reg_bytes: int = 0
    control_gates: int = 150

    def __post_init__(self) -> None:
        if self.spad_bytes < 0 or self.reg_bytes < 0 or self.control_gates < 0:
            raise ConfigurationError("systolic cell sizes must be >= 0")

    @property
    def mac(self) -> MacModel:
        """The cell's multiply-accumulate unit."""
        if self.accum_dtype is None:
            return MacModel(self.input_dtype)
        return MacModel(self.input_dtype, self.accum_dtype)

    @property
    def pipeline_bits(self) -> int:
        """DFF bits for the systolic pipeline (weight + operand + psum)."""
        mac = self.mac
        return 2 * self.input_dtype.bits + mac.accum_dtype.bits


@dataclass(frozen=True)
class TensorUnitConfig:
    """A full tensor unit.

    Attributes:
        rows: Systolic array height (the paper's TU length ``X``).
        cols: Systolic array width.
        cell: Systolic cell configuration.
        interconnect: Inner-TU interconnect kind.
        dataflow: Dataflow for unicast arrays.
        fifo_depth: Entries per I/O FIFO lane.
    """

    rows: int
    cols: int
    cell: SystolicCellConfig = field(default_factory=SystolicCellConfig)
    interconnect: InterconnectKind = InterconnectKind.UNICAST
    dataflow: Dataflow = Dataflow.WEIGHT_STATIONARY
    fifo_depth: int = 8

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(
                f"tensor unit must be at least 1x1, got {self.rows}x{self.cols}"
            )
        if self.fifo_depth < 1:
            raise ConfigurationError("FIFO depth must be >= 1")

    @property
    def macs(self) -> int:
        """MAC units in the array."""
        return self.rows * self.cols

    @property
    def fill_drain_cycles(self) -> int:
        """Pipeline fill + drain latency of the systolic wavefront."""
        return self.rows + self.cols


class TensorUnit:
    """Analytical power/area/timing model of one tensor unit."""

    def __init__(self, config: TensorUnitConfig):
        self.config = config

    # -- geometry ------------------------------------------------------------

    def _spad(self) -> SramArray:
        spad_bytes = self.config.cell.spad_bytes
        return SramArray(
            capacity_bytes=max(spad_bytes, 8),
            block_bytes=2,
            banks=1,
            subarray_rows=max(8, min(64, spad_bytes // 2 or 8)),
        )

    def _span_wiring_factor(self) -> float:
        """Extra per-cell track overhead for operand/clock spines.

        Grows with the array span: distributing operands across a 256x256
        array needs far more wiring per cell than across a 14x12 one.
        """
        span = self.config.rows + self.config.cols
        return 1.0 + calibration.ARRAY_SPAN_WIRING_COEF * span

    def cell_area_mm2(self, ctx: ModelContext) -> float:
        """Area of one systolic cell including intra-array routing."""
        cfg = self.config.cell
        area_um2 = cfg.mac.area_um2(ctx.tech)
        area_um2 += cfg.pipeline_bits * ctx.tech.dff_area_um2
        # Local register storage uses dense custom register-file cells, not
        # standard-cell flops (Eyeriss-style PEs carry 72 B of these).
        area_um2 += cfg.reg_bytes * 8 * ctx.tech.sram_cell_um2 * 6.0
        area_um2 += cfg.control_gates * ctx.tech.gate_area_um2
        if cfg.spad_bytes:
            area_um2 += mm2_to_um2(self._spad().area_mm2(ctx.tech))
        return (
            um2_to_mm2(area_um2)
            * calibration.DATAPATH_ROUTING_OVERHEAD
            * self._span_wiring_factor()
        )

    def cell_pitch_mm(self, ctx: ModelContext) -> float:
        """Edge length of one (square) systolic cell."""
        return math.sqrt(self.cell_area_mm2(ctx))

    def array_area_mm2(self, ctx: ModelContext) -> float:
        """Area of the cell array alone."""
        return self.config.macs * self.cell_area_mm2(ctx)

    def _fifo(self) -> DffBank:
        cfg = self.config
        in_bits = cfg.cell.input_dtype.bits
        out_bits = cfg.cell.mac.accum_dtype.bits
        lane_bits = cfg.rows * in_bits + cfg.cols * (in_bits + out_bits)
        return DffBank("tu-io-fifo", lane_bits * cfg.fifo_depth)

    # -- energy ------------------------------------------------------------

    def cell_energy_pj(self, ctx: ModelContext) -> float:
        """Energy of one cell doing one MAC step (registers included)."""
        cfg = self.config.cell
        energy = cfg.mac.energy_per_mac_pj(ctx.tech)
        pipeline = DffBank("sc-pipe", cfg.pipeline_bits)
        energy += pipeline.energy_per_active_cycle_pj(ctx.tech)
        if cfg.reg_bytes:
            # Dense RF storage: ~two word accesses per MAC step, not a
            # whole-bank toggle.
            word_bits = cfg.input_dtype.bits
            energy += fj_to_pj(
                2 * word_bits * ctx.tech.dff_energy_fj * 0.4
            )
        if cfg.spad_bytes:
            spad = self._spad()
            # One small-word read + write per MAC step on average.
            energy += 0.5 * (
                spad.read_energy_pj(ctx.tech) + spad.write_energy_pj(ctx.tech)
            )
        energy += LogicBlock(
            "sc-ctrl", cfg.control_gates, activity=0.2
        ).energy_per_cycle_pj(ctx.tech)
        return energy

    def _interconnect_energy_pj(self, ctx: ModelContext) -> float:
        """Per-cycle energy of the inner-TU interconnect at full activity."""
        cfg = self.config
        wire = wire_params(ctx.tech, WireType.LOCAL)
        pitch = self.cell_pitch_mm(ctx)
        in_bits = cfg.cell.input_dtype.bits
        out_bits = cfg.cell.mac.accum_dtype.bits
        if cfg.interconnect is InterconnectKind.UNICAST:
            # Operands hop one pitch right, partial sums one pitch down.
            hops = cfg.macs * (in_bits + out_bits)
            return hops * wire_energy_pj_per_bit(ctx.tech, wire, pitch)
        # Multicast: each row/column bus spans the array; one operand
        # delivery drives the full bus.
        row_bus_mm = cfg.cols * pitch
        col_bus_mm = cfg.rows * pitch
        avg_bus_mm = (row_bus_mm + col_bus_mm) / 2.0
        bus = cfg.rows * in_bits * wire_energy_pj_per_bit(
            ctx.tech, wire, row_bus_mm
        ) + cfg.cols * in_bits * wire_energy_pj_per_bit(
            ctx.tech, wire, col_bus_mm
        )
        # Output collection over the average bus span.
        bus += cfg.cols * out_bits * wire_energy_pj_per_bit(
            ctx.tech, wire, avg_bus_mm
        )
        return bus

    def _span_energy_factor(self) -> float:
        """Operand-delivery energy scaling with the array span.

        Normalized to 1.0 at the TPU-v1 anchor span (512 = 256 + 256), so
        the chip-level calibration is untouched; smaller arrays move
        operands over shorter spines and pay less per cell.
        """
        span = self.config.rows + self.config.cols
        floor = calibration.ARRAY_SPAN_ENERGY_FLOOR
        scale = min(span / calibration.ARRAY_SPAN_ENERGY_NORM, 2.0)
        return floor + (1.0 - floor) * scale

    def energy_per_active_cycle_pj(self, ctx: ModelContext) -> float:
        """Whole-TU energy on a fully active cycle (clock tree included)."""
        cells = self.config.macs * self.cell_energy_pj(ctx)
        fifo = self._fifo().energy_per_active_cycle_pj(ctx.tech)
        wires = self._interconnect_energy_pj(ctx)
        return (
            (cells * self._span_energy_factor() + fifo + wires)
            * calibration.CLOCK_NETWORK_OVERHEAD
        )

    def energy_per_mac_pj(self, ctx: ModelContext) -> float:
        """Average energy per MAC at full array utilization."""
        return self.energy_per_active_cycle_pj(ctx) / self.config.macs

    # -- timing ------------------------------------------------------------

    def cycle_time_ns(self, ctx: ModelContext) -> float:
        """Minimum clock period of the TU."""
        cfg = self.config
        cell_ns = cfg.cell.mac.delay_ns(ctx.tech) + DffBank(
            "sc-pipe", 1
        ).setup_plus_clk_to_q_ns(ctx.tech)
        if cfg.interconnect is InterconnectKind.UNICAST:
            return cell_ns
        return max(cell_ns, self.multicast_bus_delay_ns(ctx))

    def multicast_bus_delay_ns(self, ctx: ModelContext) -> float:
        """Elmore delay of the longest X/Y multicast bus (pi-RC segments).

        The FIFO output driver is the source resistance and every cell tap
        adds a gate load along the distributed wire, exactly the
        decomposition of Fig. 2(d).
        """
        cfg = self.config
        wire = wire_params(ctx.tech, WireType.LOCAL)
        span = max(cfg.rows, cfg.cols)
        length_mm = span * self.cell_pitch_mm(ctx)
        taps_ff = span * ctx.tech.gate_cap_ff * 2.0
        return ladder_delay_ns(
            total_resistance_ohm=length_mm * wire.r_ohm_per_mm,
            total_capacitance_ff=length_mm * wire.c_ff_per_mm + taps_ff,
            driver_ohm=1_500.0,
        )

    # -- rollup ------------------------------------------------------------

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full TU estimate with cell-array / FIFO / interconnect children."""
        tech = ctx.tech
        cfg = self.config
        activity = calibration.TDP_ACTIVITY["compute"]
        overhead = calibration.CLOCK_NETWORK_OVERHEAD

        cell_leak = cfg.cell.mac.leakage_w(tech)
        cell_leak += DffBank("sc-pipe", cfg.cell.pipeline_bits).leakage_w(tech)
        cell_leak += cfg.cell.reg_bytes * 8 * tech.sram_bit_leak_nw * 2e-9
        cell_leak += LogicBlock("sc-ctrl", cfg.cell.control_gates).leakage_w(
            tech
        )
        if cfg.cell.spad_bytes:
            cell_leak += self._spad().leakage_w(tech)

        array = Estimate(
            name="systolic cells",
            area_mm2=self.array_area_mm2(ctx),
            dynamic_w=dynamic_power_w(
                cfg.macs
                * self.cell_energy_pj(ctx)
                * self._span_energy_factor()
                * overhead,
                ctx.freq_ghz,
            )
            * activity,
            leakage_w=cfg.macs * cell_leak,
            cycle_time_ns=cfg.cell.mac.delay_ns(tech)
            + DffBank("sc", 1).setup_plus_clk_to_q_ns(tech),
        )

        fifo_bank = self._fifo()
        fifo = Estimate(
            name="io fifo",
            area_mm2=fifo_bank.area_mm2(tech) * FIFO_PLACEMENT_OVERHEAD,
            dynamic_w=dynamic_power_w(
                fifo_bank.energy_per_active_cycle_pj(tech) * overhead,
                ctx.freq_ghz,
            )
            * activity,
            leakage_w=fifo_bank.leakage_w(tech),
        )

        wire = wire_params(tech, WireType.LOCAL)
        pitch = self.cell_pitch_mm(ctx)
        in_bits = cfg.cell.input_dtype.bits
        out_bits = cfg.cell.mac.accum_dtype.bits
        track_mm2 = um_to_mm(wire.pitch_um) * pitch
        wire_area = cfg.macs * (in_bits + out_bits) * track_mm2
        interconnect = Estimate(
            name="inner-tu interconnect",
            area_mm2=wire_area,
            dynamic_w=dynamic_power_w(
                self._interconnect_energy_pj(ctx) * overhead, ctx.freq_ghz
            )
            * calibration.TDP_ACTIVITY["interconnect"],
            leakage_w=0.0,
            cycle_time_ns=(
                self.multicast_bus_delay_ns(ctx)
                if cfg.interconnect is InterconnectKind.MULTICAST
                else 0.0
            ),
        )

        return Estimate.compose(
            "tensor unit", [array, fifo, interconnect]
        )
