"""Chip assembly: cores + NoC + memory controllers + host/chip interfaces.

The chip model rolls every component into the final numbers the paper
reports: die area (with the ~21% white-space/unknown share carried for the
validation chips), thermal design power (modeled peak power times a
uniform guardband), and the full per-component breakdown trees of
Figs. 3-5 and Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.arch.core import Core, CoreConfig
from repro.arch.noc import NetworkOnChip, NocConfig, NocTopology
from repro.arch.periph import (
    DmaController,
    DramKind,
    InterChipInterconnect,
    MemoryController,
    PcieInterface,
)
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import tops


@dataclass(frozen=True)
class ChipConfig:
    """A whole accelerator chip.

    Attributes:
        core: Per-core configuration (all cores identical).
        cores_x: Horizontal core count (``T_x``).
        cores_y: Vertical core count (``T_y``).
        noc_topology: Inter-core network topology.  Following Table I, a
            ring is used up to 4 cores and a 2D mesh from 8 cores when left
            as ``None``.
        noc_bisection_gbps: NoC bisection bandwidth per direction.
        dram: Off-chip memory technology; ``None`` omits the controller
            (test chips like Eyeriss drive plain I/O pads instead).
        offchip_bandwidth_gbps: Required off-chip bandwidth.
        pcie: Host interface; ``None`` omits it.
        ici: Inter-chip interconnect; ``None`` omits it.
        whitespace_fraction: Die fraction reserved for unknown blocks and
            white space (the paper carries ~21%).
    """

    core: CoreConfig
    cores_x: int = 1
    cores_y: int = 1
    noc_topology: Optional[NocTopology] = None
    noc_bisection_gbps: float = 256.0
    dram: Optional[DramKind] = DramKind.HBM2
    offchip_bandwidth_gbps: float = 700.0
    pcie: Optional[PcieInterface] = field(default_factory=PcieInterface)
    ici: Optional[InterChipInterconnect] = None
    dma: DmaController = field(default_factory=DmaController)
    whitespace_fraction: float = calibration.WHITESPACE_FRACTION

    def __post_init__(self) -> None:
        if self.cores_x < 1 or self.cores_y < 1:
            raise ConfigurationError("chip needs at least one core")
        if not 0.0 <= self.whitespace_fraction < 0.9:
            raise ConfigurationError(
                "whitespace fraction must be in [0, 0.9)"
            )

    @property
    def cores(self) -> int:
        return self.cores_x * self.cores_y

    @property
    def topology(self) -> NocTopology:
        """Resolved NoC topology (Table I's ring-vs-mesh rule)."""
        if self.noc_topology is not None:
            return self.noc_topology
        return NocTopology.RING if self.cores <= 4 else NocTopology.MESH_2D

    @property
    def macs_per_cycle(self) -> int:
        """Peak chip-wide MAC throughput per cycle."""
        return self.cores * self.core.macs_per_cycle

    def peak_tops(self, freq_ghz: float) -> float:
        """Peak chip TOPS at a clock rate."""
        return tops(self.macs_per_cycle, freq_ghz)


class Chip:
    """Analytical model of the full chip."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.core = Core(config.core)

    def noc(self, ctx: ModelContext) -> NetworkOnChip:
        """The inter-core network sized for this chip's floorplan."""
        core_area = self.core.estimate(ctx).area_mm2
        pitch = math.sqrt(max(core_area, 1e-6))
        noc_config = NocConfig(
            topology=self.config.topology,
            nodes_x=self.config.cores_x,
            nodes_y=self.config.cores_y,
            bisection_gbps=self.config.noc_bisection_gbps,
        )
        return NetworkOnChip(noc_config, node_pitch_mm=pitch)

    def memory_controller(self) -> Optional[MemoryController]:
        """The off-chip memory controller block (``None`` when omitted)."""
        if self.config.dram is None:
            return None
        return MemoryController(
            kind=self.config.dram,
            bandwidth_gbps=self.config.offchip_bandwidth_gbps,
        )

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Whole-chip rollup including white space.

        The white-space child carries area only — the paper folds unknown
        blocks into area the same way but never assigns them power.
        """
        cfg = self.config
        children: list[Estimate] = []

        core_estimate = self.core.estimate(ctx)
        children.append(
            core_estimate.replicated(
                cfg.cores, name="cores" if cfg.cores > 1 else "core"
            )
        )
        if cfg.cores > 1:
            children.append(self.noc(ctx).estimate(ctx))
        controller = self.memory_controller()
        if controller is not None:
            children.append(controller.estimate(ctx))
        if cfg.pcie is not None:
            children.append(cfg.pcie.estimate(ctx))
        if cfg.ici is not None:
            children.append(cfg.ici.estimate(ctx))
        children.append(cfg.dma.estimate(ctx))

        modeled = Estimate.compose("modeled blocks", children)
        whitespace_area = (
            modeled.area_mm2
            * cfg.whitespace_fraction
            / (1.0 - cfg.whitespace_fraction)
        )
        whitespace = Estimate(
            name="white space / unknown", area_mm2=whitespace_area,
            dynamic_w=0.0, leakage_w=0.0,
        )
        return Estimate.compose("chip", children + [whitespace])

    # -- headline numbers ------------------------------------------------------

    def area_mm2(self, ctx: ModelContext) -> float:
        """Die area including white space."""
        return self.estimate(ctx).area_mm2

    @cached_estimate
    def tdp_w(self, ctx: ModelContext) -> float:
        """Thermal design power: guardbanded dynamic plus leakage."""
        estimate = self.estimate(ctx)
        return (
            estimate.dynamic_w * calibration.CHIP_TDP_MARGIN
            + estimate.leakage_w
        )

    def max_freq_ghz(self, ctx: ModelContext) -> float:
        """Highest clock supported by the slowest component."""
        return self.estimate(ctx).max_freq_ghz

    @cached_estimate
    def peak_tops(self, ctx: ModelContext) -> float:
        """Peak TOPS at the context clock."""
        return self.config.peak_tops(ctx.freq_ghz)
