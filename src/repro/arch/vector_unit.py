"""Vector Unit (VU): 1D lanes for pooling, activation, and partial-sum merge.

Per Sec. II-A the VU handles vector operations and merges partial sums when
an operator is tiled across TUs; in vector-only accelerators (EIE-style) it
is the main compute engine.  Each lane carries a MAC-capable ALU plus a
special-function block (piecewise activation / normalization support).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.dff import DffBank
from repro.circuit.gates import LogicBlock
from repro.circuit.mac import MacModel
from repro.datatypes import INT32, DataType
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w, um2_to_mm2

#: Gates of the per-lane special-function block (LUT + shifter + compare).
DEFAULT_SFU_GATES = 2_500

#: VU ALU energy relative to a full MAC (most vector ops skip the multiply).
MAC_ENERGY_FRACTION = 0.6

#: Switching activity of the special-function block.
SFU_ACTIVITY = 0.15


@dataclass(frozen=True)
class VectorUnitConfig:
    """A 1D vector unit.

    Attributes:
        lanes: Parallel lanes; NeuroMeter auto-matches this to the TU array
            length (Sec. III-A).
        dtype: Lane data type — typically the accumulation type, since the
            VU post-processes TU partial sums.
        sfu_gates: Gates in the per-lane special-function block; deep
            activation pipelines (TPU-v1's activation unit) carry an order
            of magnitude more than a lean merge-only VU.
        pipeline_depth: Pipeline registers per lane.
    """

    lanes: int
    dtype: DataType = INT32
    sfu_gates: int = DEFAULT_SFU_GATES
    pipeline_depth: int = 4

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError("vector unit needs at least one lane")
        if self.sfu_gates < 0 or self.pipeline_depth < 1:
            raise ConfigurationError("invalid vector unit sizing")

    @property
    def macs(self) -> int:
        """Equivalent MACs per cycle (one fused op per lane)."""
        return self.lanes


class VectorUnit:
    """Analytical power/area/timing model of one vector unit."""

    def __init__(self, config: VectorUnitConfig):
        self.config = config

    def _lane_mac(self) -> MacModel:
        return MacModel(self.config.dtype, self.config.dtype)

    def _lane_regs(self) -> DffBank:
        bits = self.config.dtype.bits * self.config.pipeline_depth
        return DffBank("vu-lane-regs", bits)

    def lane_energy_pj(self, ctx: ModelContext) -> float:
        """Energy of one lane executing one vector element operation."""
        energy = self._lane_mac().energy_per_mac_pj(ctx.tech) * MAC_ENERGY_FRACTION
        energy += self._lane_regs().energy_per_active_cycle_pj(ctx.tech)
        energy += LogicBlock(
            "vu-sfu", self.config.sfu_gates, activity=SFU_ACTIVITY
        ).energy_per_cycle_pj(ctx.tech)
        return energy

    def energy_per_active_cycle_pj(self, ctx: ModelContext) -> float:
        """Whole-VU energy on a fully active cycle."""
        return (
            self.config.lanes
            * self.lane_energy_pj(ctx)
            * calibration.CLOCK_NETWORK_OVERHEAD
        )

    def area_mm2(self, ctx: ModelContext) -> float:
        """Total VU area."""
        tech = ctx.tech
        lane_um2 = self._lane_mac().area_um2(tech)
        lane_um2 += self._lane_regs().bits * tech.dff_area_um2
        lane_um2 += self.config.sfu_gates * tech.gate_area_um2
        return (
            um2_to_mm2(self.config.lanes * lane_um2)
            * calibration.DATAPATH_ROUTING_OVERHEAD
        )

    def cycle_time_ns(self, ctx: ModelContext) -> float:
        """Clock bound of a lane (MAC path dominates the SFU)."""
        return self._lane_mac().delay_ns(ctx.tech) + self._lane_regs(
        ).setup_plus_clk_to_q_ns(ctx.tech)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full VU estimate."""
        tech = ctx.tech
        lanes = self.config.lanes
        leak = lanes * (
            self._lane_mac().leakage_w(tech)
            + self._lane_regs().leakage_w(tech)
            + LogicBlock("vu-sfu", self.config.sfu_gates).leakage_w(tech)
        )
        return Estimate(
            name="vector unit",
            area_mm2=self.area_mm2(ctx),
            dynamic_w=dynamic_power_w(
                self.energy_per_active_cycle_pj(ctx), ctx.freq_ghz
            )
            * calibration.TDP_ACTIVITY["compute"],
            leakage_w=leak,
            cycle_time_ns=self.cycle_time_ns(ctx),
        )
