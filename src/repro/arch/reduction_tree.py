"""Reduction Tree (RT): a 1D MAC array feeding a log-depth adder tree.

Per Sec. II-A, an RT is (1) an N-input 1D MAC array, (2) a log2(N)-layer
tree of 2-to-1 adders, and (3) optional pipeline DFFs between layers when
the accumulated adder delay exceeds the cycle time.  RTs map sparse
workloads more flexibly than 2D arrays (Sec. IV pairs a 1024-to-1 RT with a
32x32 TU and a 64-to-1 RT with an 8x8 TU, equal OPS per compute unit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.adder import AdderModel
from repro.circuit.dff import DffBank
from repro.circuit.mac import MacModel
from repro.datatypes import INT8, DataType
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w, um2_to_mm2


@dataclass(frozen=True)
class ReductionTreeConfig:
    """An N-input reduction tree.

    Attributes:
        inputs: Fan-in N (number of parallel multipliers); power of two.
        input_dtype: Multiplier operand type.
        accum_dtype: Adder-tree element type; ``None`` picks the MAC default.
        adder_fan_in: Adders per tree node (2 by default, customizable per
            the paper).
    """

    inputs: int
    input_dtype: DataType = INT8
    accum_dtype: DataType = None  # type: ignore[assignment]
    adder_fan_in: int = 2

    def __post_init__(self) -> None:
        if self.inputs < 2:
            raise ConfigurationError("reduction tree needs >= 2 inputs")
        if self.adder_fan_in < 2:
            raise ConfigurationError("adder fan-in must be >= 2")

    @property
    def mac(self) -> MacModel:
        if self.accum_dtype is None:
            return MacModel(self.input_dtype)
        return MacModel(self.input_dtype, self.accum_dtype)

    @property
    def levels(self) -> int:
        """Adder-tree depth."""
        return max(1, math.ceil(math.log(self.inputs, self.adder_fan_in)))

    @property
    def tree_adders(self) -> int:
        """Total adders in the tree (N-1 for fan-in 2)."""
        count, width = 0, self.inputs
        for _ in range(self.levels):
            width = math.ceil(width / self.adder_fan_in)
            count += width
        return count

    @property
    def macs(self) -> int:
        """Equivalent MAC throughput per cycle (N multiplies + N-1 adds)."""
        return self.inputs


class ReductionTree:
    """Analytical power/area/timing model of one reduction tree."""

    def __init__(self, config: ReductionTreeConfig):
        self.config = config

    def _tree_adder(self) -> AdderModel:
        return AdderModel(self.config.mac.accum_dtype)

    def pipeline_levels(self, ctx: ModelContext) -> int:
        """Adder-tree levels that fit in one cycle before a DFF is needed."""
        adder_ns = self._tree_adder().delay_ns(ctx.tech)
        budget = max(ctx.cycle_ns - self.config.mac.delay_ns(ctx.tech), 0.0)
        if adder_ns <= 0:
            return self.config.levels
        return max(1, int(budget / adder_ns))

    def pipeline_registers(self, ctx: ModelContext) -> int:
        """DFF pipeline stages inserted between layers (0 when unneeded)."""
        per_stage = self.pipeline_levels(ctx)
        if per_stage >= self.config.levels:
            return 0
        return math.ceil(self.config.levels / per_stage) - 1

    def _pipeline_bits(self, ctx: ModelContext) -> int:
        """Total DFF bits across all inserted pipeline cuts."""
        cfg = self.config
        stages = self.pipeline_registers(ctx)
        if stages == 0:
            return 0
        # A cut at depth d holds ~inputs / fan_in^d words; bound with the
        # widest cut repeated per stage for a slightly conservative count.
        widest_cut_words = math.ceil(cfg.inputs / cfg.adder_fan_in)
        return stages * widest_cut_words * cfg.mac.accum_dtype.bits

    def energy_per_active_cycle_pj(self, ctx: ModelContext) -> float:
        """Whole-RT energy for one fully utilized reduction."""
        cfg = self.config
        mults = cfg.inputs * cfg.mac.multiply_energy_pj(ctx.tech)
        adds = self.config.tree_adders * self._tree_adder().energy_per_op_pj(
            ctx.tech
        )
        pipes = DffBank(
            "rt-pipe", self._pipeline_bits(ctx)
        ).energy_per_active_cycle_pj(ctx.tech)
        in_regs = DffBank(
            "rt-in", cfg.inputs * cfg.input_dtype.bits * 2
        ).energy_per_active_cycle_pj(ctx.tech)
        return (mults + adds + pipes + in_regs) * (
            calibration.CLOCK_NETWORK_OVERHEAD
        )

    def energy_per_mac_pj(self, ctx: ModelContext) -> float:
        """Average energy per effective MAC at full utilization."""
        return self.energy_per_active_cycle_pj(ctx) / self.config.macs

    def area_mm2(self, ctx: ModelContext) -> float:
        """Total RT area."""
        cfg = self.config
        tech = ctx.tech
        mult_only = (
            cfg.mac.area_um2(tech) - cfg.mac.accumulator.area_um2(tech)
        )
        area_um2 = cfg.inputs * max(mult_only, 0.0)
        area_um2 += self.config.tree_adders * self._tree_adder().area_um2(tech)
        area_um2 += self._pipeline_bits(ctx) * tech.dff_area_um2
        area_um2 += cfg.inputs * cfg.input_dtype.bits * 2 * tech.dff_area_um2
        return um2_to_mm2(area_um2) * calibration.DATAPATH_ROUTING_OVERHEAD

    def cycle_time_ns(self, ctx: ModelContext) -> float:
        """Clock bound: multiplier plus the unpipelined tree segment."""
        per_stage = min(self.pipeline_levels(ctx), self.config.levels)
        adder_ns = self._tree_adder().delay_ns(ctx.tech)
        dff_ns = DffBank("rt", 1).setup_plus_clk_to_q_ns(ctx.tech)
        return self.config.mac.delay_ns(ctx.tech) + per_stage * adder_ns + (
            dff_ns
        )

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full RT estimate with MAC-array and adder-tree children."""
        tech = ctx.tech
        cfg = self.config
        activity = calibration.TDP_ACTIVITY["compute"]
        overhead = calibration.CLOCK_NETWORK_OVERHEAD

        mult_only_area = um2_to_mm2(
            cfg.inputs
            * max(
                cfg.mac.area_um2(tech) - cfg.mac.accumulator.area_um2(tech),
                0.0,
            )
            + cfg.inputs * cfg.input_dtype.bits * 2 * tech.dff_area_um2
        ) * calibration.DATAPATH_ROUTING_OVERHEAD
        mult_energy = cfg.inputs * cfg.mac.multiply_energy_pj(tech) + DffBank(
            "rt-in", cfg.inputs * cfg.input_dtype.bits * 2
        ).energy_per_active_cycle_pj(tech)
        mac_array = Estimate(
            name="mac array",
            area_mm2=mult_only_area,
            dynamic_w=dynamic_power_w(mult_energy * overhead, ctx.freq_ghz)
            * activity,
            leakage_w=cfg.inputs * cfg.mac.leakage_w(tech) * 0.7,
            cycle_time_ns=cfg.mac.delay_ns(tech),
        )

        tree_area = um2_to_mm2(
            self.config.tree_adders * self._tree_adder().area_um2(tech)
            + self._pipeline_bits(ctx) * tech.dff_area_um2
        ) * calibration.DATAPATH_ROUTING_OVERHEAD
        tree_energy = self.config.tree_adders * self._tree_adder(
        ).energy_per_op_pj(tech) + DffBank(
            "rt-pipe", self._pipeline_bits(ctx)
        ).energy_per_active_cycle_pj(
            tech
        )
        tree = Estimate(
            name="adder tree",
            area_mm2=tree_area,
            dynamic_w=dynamic_power_w(tree_energy * overhead, ctx.freq_ghz)
            * activity,
            leakage_w=self.config.tree_adders
            * self._tree_adder().leakage_w(tech),
            cycle_time_ns=self.cycle_time_ns(ctx),
        )

        return Estimate.compose("reduction tree", [mac_array, tree])
