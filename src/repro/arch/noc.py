"""Network-on-Chip: routers and links connecting the cores.

Per Sec. II-A NeuroMeter supports 2D-mesh, ring, bus, and H-tree NoCs.  The
flit width is sized from the configured bisection bandwidth (the Table I
datacenter study fixes 256 GB/s), link length comes from the core pitch,
and routers are modeled as input-buffered wormhole routers (buffers +
crossbar + allocator), the McPAT router decomposition.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.dff import DffBank
from repro.circuit.gates import LogicBlock
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.tech.wire import (
    WireType,
    repeated_wire_delay_ns,
    wire_energy_pj_per_bit,
    wire_params,
)
from repro.units import dynamic_power_w, um_to_mm

#: Flits buffered per router input port.
BUFFER_DEPTH = 8

#: Crossbar gate count per port-pair per flit bit.
CROSSBAR_GATES_PER_BIT = 3

#: Allocation/arbitration logic per router.
ALLOCATOR_GATES = 4_000

MIN_FLIT_BITS = 64


class NocTopology(enum.Enum):
    """Supported NoC topologies."""

    MESH_2D = "mesh"
    RING = "ring"
    BUS = "bus"
    HTREE = "htree"


@dataclass(frozen=True)
class NocConfig:
    """NoC configuration.

    Attributes:
        topology: Network topology.
        nodes_x: Horizontal node count (``T_x`` in the paper).
        nodes_y: Vertical node count (``T_y``).
        bisection_gbps: Required bisection bandwidth per direction (GB/s).
    """

    topology: NocTopology
    nodes_x: int
    nodes_y: int
    bisection_gbps: float

    def __post_init__(self) -> None:
        if self.nodes_x < 1 or self.nodes_y < 1:
            raise ConfigurationError("NoC needs at least one node")
        if self.bisection_gbps <= 0:
            raise ConfigurationError("bisection bandwidth must be positive")

    @property
    def nodes(self) -> int:
        return self.nodes_x * self.nodes_y

    @property
    def bisection_links(self) -> int:
        """Links crossing the canonical bisection cut."""
        if self.topology is NocTopology.MESH_2D:
            return min(self.nodes_x, self.nodes_y)
        if self.topology is NocTopology.RING:
            return 2
        return 1  # bus and H-tree: one shared medium crosses the cut

    @property
    def link_count(self) -> int:
        """Unidirectional-link pairs in the network."""
        if self.nodes == 1:
            return 0
        if self.topology is NocTopology.MESH_2D:
            return self.nodes_x * (self.nodes_y - 1) + self.nodes_y * (
                self.nodes_x - 1
            )
        if self.topology is NocTopology.RING:
            return self.nodes
        if self.topology is NocTopology.HTREE:
            return 2 * self.nodes - 2
        return 1  # bus: one shared medium

    @property
    def router_ports(self) -> int:
        if self.topology is NocTopology.MESH_2D:
            return 5
        if self.topology in (NocTopology.RING, NocTopology.HTREE):
            return 3
        return 2  # bus interface: injection + tap

    def flit_bits(self, freq_ghz: float) -> int:
        """Flit width needed to reach the bisection bandwidth."""
        needed = self.bisection_gbps * 8.0 / (
            self.bisection_links * freq_ghz
        )
        return max(MIN_FLIT_BITS, int(math.ceil(needed)))

    def average_hops(self) -> float:
        """Mean router hops of uniform-random traffic."""
        if self.nodes == 1:
            return 0.0
        if self.topology is NocTopology.MESH_2D:
            return (self.nodes_x + self.nodes_y) / 3.0
        if self.topology is NocTopology.RING:
            return self.nodes / 4.0
        if self.topology is NocTopology.HTREE:
            return 2.0 * math.log2(max(self.nodes, 2))
        return 1.0  # bus: single shared hop


class NetworkOnChip:
    """Analytical model of the NoC at a given core pitch."""

    def __init__(self, config: NocConfig, node_pitch_mm: float):
        if node_pitch_mm <= 0:
            raise ConfigurationError("node pitch must be positive")
        self.config = config
        self.node_pitch_mm = node_pitch_mm

    # -- router ------------------------------------------------------------

    def _router_buffers(self, ctx: ModelContext) -> DffBank:
        flit = self.config.flit_bits(ctx.freq_ghz)
        bits = self.config.router_ports * BUFFER_DEPTH * flit
        return DffBank("noc-buffers", bits)

    def _router_crossbar(self, ctx: ModelContext) -> LogicBlock:
        flit = self.config.flit_bits(ctx.freq_ghz)
        ports = self.config.router_ports
        gates = ports * ports * flit * CROSSBAR_GATES_PER_BIT
        return LogicBlock("noc-crossbar", gates, activity=0.25)

    def router_energy_per_flit_pj(self, ctx: ModelContext) -> float:
        """Energy for one flit to traverse one router."""
        flit = self.config.flit_bits(ctx.freq_ghz)
        buffer_bank = DffBank("noc-buf-access", flit)
        buffer_energy = 2.0 * buffer_bank.energy_per_active_cycle_pj(
            ctx.tech
        )  # write + read
        crossbar = self._router_crossbar(ctx).energy_per_cycle_pj(ctx.tech)
        allocator = LogicBlock(
            "noc-alloc", ALLOCATOR_GATES, activity=0.3
        ).energy_per_cycle_pj(ctx.tech)
        return buffer_energy + crossbar / self.config.router_ports + allocator

    # -- link ------------------------------------------------------------

    def link_length_mm(self) -> float:
        """Length of one link (bus spans the chip edge-to-edge)."""
        if self.config.topology is NocTopology.BUS:
            return self.node_pitch_mm * max(
                self.config.nodes_x, self.config.nodes_y
            )
        return self.node_pitch_mm

    def link_energy_per_flit_pj(self, ctx: ModelContext) -> float:
        """Energy for one flit to traverse one link."""
        wire = wire_params(ctx.tech, WireType.GLOBAL)
        flit = self.config.flit_bits(ctx.freq_ghz)
        return flit * wire_energy_pj_per_bit(
            ctx.tech, wire, self.link_length_mm()
        )

    def link_latency_ns(self, ctx: ModelContext) -> float:
        """Propagation delay of one (repeated) link."""
        wire = wire_params(ctx.tech, WireType.GLOBAL)
        return repeated_wire_delay_ns(ctx.tech, wire, self.link_length_mm())

    # -- traffic (used by the performance simulator) -------------------------

    def energy_per_byte_pj(self, ctx: ModelContext) -> float:
        """Average NoC energy to move one byte between two random cores."""
        if self.config.nodes == 1:
            return 0.0
        flit = self.config.flit_bits(ctx.freq_ghz)
        hops = self.config.average_hops()
        per_flit = hops * (
            self.router_energy_per_flit_pj(ctx)
            + self.link_energy_per_flit_pj(ctx)
        )
        return per_flit * 8.0 / flit

    # -- rollup ------------------------------------------------------------

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Routers + links rollup at TDP interconnect activity."""
        cfg = self.config
        tech = ctx.tech
        if cfg.nodes == 1:
            return Estimate(
                name="network-on-chip",
                area_mm2=0.0,
                dynamic_w=0.0,
                leakage_w=0.0,
            )
        activity = calibration.TDP_ACTIVITY["interconnect"]
        overhead = calibration.CLOCK_NETWORK_OVERHEAD

        buffers = self._router_buffers(ctx)
        crossbar = self._router_crossbar(ctx)
        allocator = LogicBlock("noc-alloc", ALLOCATOR_GATES, activity=0.3)
        router_area = (
            buffers.area_mm2(tech)
            + crossbar.area_mm2(tech)
            + allocator.area_mm2(tech)
        )
        router_energy = (
            self.router_energy_per_flit_pj(ctx) * cfg.router_ports * 0.5
        )
        routers = Estimate(
            name="noc routers",
            area_mm2=cfg.nodes * router_area,
            dynamic_w=cfg.nodes
            * dynamic_power_w(router_energy * overhead, ctx.freq_ghz)
            * activity,
            leakage_w=cfg.nodes
            * (
                buffers.leakage_w(tech)
                + crossbar.leakage_w(tech)
                + allocator.leakage_w(tech)
            ),
            cycle_time_ns=crossbar.delay_ns(tech),
        )

        wire = wire_params(tech, WireType.GLOBAL)
        flit = cfg.flit_bits(ctx.freq_ghz)
        # Each link pair carries flit bits in both directions.
        track_area = (
            um_to_mm(cfg.link_count * 2 * flit * wire.pitch_um)
            * self.link_length_mm()
        )
        links = Estimate(
            name="noc links",
            area_mm2=track_area,
            dynamic_w=cfg.link_count
            * dynamic_power_w(
                self.link_energy_per_flit_pj(ctx) * overhead, ctx.freq_ghz
            )
            * activity,
            leakage_w=0.0,
            cycle_time_ns=self.link_latency_ns(ctx)
            if cfg.topology is NocTopology.BUS
            else 0.0,
        )

        return Estimate.compose("network-on-chip", [routers, links])
