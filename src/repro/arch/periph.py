"""Peripheral blocks: memory controllers, PCIe, inter-chip links, DMA.

These blocks (Sec. II: "Other peripheral blocks, including Memory
Controllers and DMA controllers, are also modeled") mix digital control
logic with analog PHYs.  Digital parts scale with the logic node; PHYs are
dominated by I/O drivers and scale only weakly, modeled with the square
root of the logic area scaling — the usual McPAT I/O convention.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.gates import LogicBlock
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.tech.node import REFERENCE_NODE_NM, node
from repro.units import dynamic_power_w, interface_power_w


class DramKind(enum.Enum):
    """Off-chip memory technology behind a controller."""

    DDR3 = "ddr3"
    DDR4 = "ddr4"
    HBM = "hbm"
    HBM2 = "hbm2"


# Per-channel/stack: (bandwidth GB/s, PHY+ctrl area mm^2 at 45 nm,
# interface energy pJ/bit on the accelerator side, on-package device TDP W).
# DDR DIMMs are off-package, so their device power does not enter the chip
# TDP; HBM stacks share the package and substrate thermal budget, so their
# worst-case draw is carried (TPU-v2's published 280 W is a package number).
_DRAM_TABLE = {
    DramKind.DDR3: (12.8, 10.0, 18.0, 0.0),
    DramKind.DDR4: (21.3, 9.0, 14.0, 0.0),
    DramKind.HBM: (128.0, 20.0, 5.0, 14.0),
    DramKind.HBM2: (256.0, 22.0, 3.5, 17.0),
}

#: PCIe per-lane bandwidth (GB/s, gen3) and per-lane PHY area at 45 nm.
_PCIE_LANE_GBPS = 0.985
_PCIE_LANE_AREA_MM2 = 0.80
_PCIE_ENERGY_PJ_PER_BIT = 5.0

#: ICI SerDes: per-link area at 45 nm per 100 Gb/s, and energy per bit.
#: Sized to reproduce the paper's own (over-)estimate of the TPU-v2 ICI
#: (12% of die modeled vs 5% published).
_ICI_AREA_MM2_PER_100GBIT = 6.5
_ICI_ENERGY_PJ_PER_BIT = 12.0
_ICI_SWITCH_GATES_PER_LINK = 250_000

#: PHY/pad-frame leakage per mm^2 of interface area (drivers, bias, term).
_PHY_LEAKAGE_W_PER_MM2 = 0.01


def _phy_area_scale(ctx: ModelContext) -> float:
    """Analog-ish PHY area scaling: sqrt of the logic area scaling."""
    return math.sqrt(ctx.tech.area_scale_from(node(REFERENCE_NODE_NM)))


def _interface_estimate(
    name: str,
    ctx: ModelContext,
    area_mm2: float,
    bandwidth_gbps: float,
    energy_pj_per_bit: float,
    control_gates: int,
) -> Estimate:
    """Common rollup for bandwidth-driven interface blocks."""
    tech = ctx.tech
    control = LogicBlock(f"{name}-ctrl", control_gates, activity=0.2)
    bandwidth_w = interface_power_w(bandwidth_gbps, energy_pj_per_bit)
    return Estimate(
        name=name,
        area_mm2=area_mm2 + control.area_mm2(tech),
        dynamic_w=bandwidth_w * calibration.TDP_ACTIVITY["memory"]
        + dynamic_power_w(control.energy_per_cycle_pj(tech), ctx.freq_ghz),
        leakage_w=control.leakage_w(tech)
        + area_mm2 * _PHY_LEAKAGE_W_PER_MM2,
        cycle_time_ns=0.0,
    )


@dataclass(frozen=True)
class MemoryController:
    """Off-chip memory controller + PHY.

    Attributes:
        kind: DRAM technology.
        bandwidth_gbps: Required off-chip bandwidth; the model instantiates
            enough channels/stacks to cover it.
    """

    kind: DramKind
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("off-chip bandwidth must be positive")

    @property
    def channels(self) -> int:
        """Channels/stacks needed for the requested bandwidth."""
        per_channel = _DRAM_TABLE[self.kind][0]
        return max(1, math.ceil(self.bandwidth_gbps / per_channel))

    def energy_per_byte_pj(self) -> float:
        """Chip-side interface energy per byte transferred."""
        pj_per_bit = _DRAM_TABLE[self.kind][2]
        return pj_per_bit * 8.0

    def device_power_w(self) -> float:
        """On-package DRAM device power counted toward the TDP (HBM only)."""
        per_stack_w = _DRAM_TABLE[self.kind][3]
        return self.channels * per_stack_w

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """All channels of controller + PHY (+ on-package device power)."""
        per_channel_bw, area_45nm, pj_per_bit, _ = _DRAM_TABLE[self.kind]
        area = self.channels * area_45nm * _phy_area_scale(ctx)
        bandwidth = min(self.bandwidth_gbps, self.channels * per_channel_bw)
        interface = _interface_estimate(
            f"{self.kind.value} port",
            ctx,
            area_mm2=area,
            bandwidth_gbps=bandwidth,
            energy_pj_per_bit=pj_per_bit,
            control_gates=60_000 * self.channels,
        )
        # Device power is a worst-case package rating; it enters the rollup
        # as static draw so the chip TDP guardband is not applied twice.
        return Estimate(
            name=interface.name,
            area_mm2=interface.area_mm2,
            dynamic_w=interface.dynamic_w,
            leakage_w=interface.leakage_w + self.device_power_w(),
            cycle_time_ns=interface.cycle_time_ns,
        )


@dataclass(frozen=True)
class PcieInterface:
    """PCIe host interface.

    Attributes:
        lanes: Lane count (16 for the validated chips).
        generation: PCIe generation; bandwidth scales 2x per generation
            from gen3.
    """

    lanes: int = 16
    generation: int = 3

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigurationError("PCIe needs at least one lane")
        if self.generation < 1:
            raise ConfigurationError("PCIe generation must be >= 1")

    @property
    def bandwidth_gbps(self) -> float:
        """Per-direction bandwidth."""
        return self.lanes * _PCIE_LANE_GBPS * 2.0 ** (self.generation - 3)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """SerDes lanes + link controller."""
        area = self.lanes * _PCIE_LANE_AREA_MM2 * _phy_area_scale(ctx)
        return _interface_estimate(
            "pcie interface",
            ctx,
            area_mm2=area,
            bandwidth_gbps=self.bandwidth_gbps,
            energy_pj_per_bit=_PCIE_ENERGY_PJ_PER_BIT,
            control_gates=80_000,
        )


@dataclass(frozen=True)
class InterChipInterconnect:
    """ICI: the NIU + switch that links accelerator chips (TPU-v2 style).

    Attributes:
        links: Point-to-point links.
        link_gbit_per_dir: Per-link bandwidth per direction in Gb/s
            (TPU-v2 publishes 496 Gb/s).
    """

    links: int = 4
    link_gbit_per_dir: float = 496.0

    def __post_init__(self) -> None:
        if self.links < 1:
            raise ConfigurationError("ICI needs at least one link")
        if self.link_gbit_per_dir <= 0:
            raise ConfigurationError("ICI link bandwidth must be positive")

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """SerDes per link plus the on-chip switch."""
        serdes_area = (
            self.links
            * self.link_gbit_per_dir
            / 100.0
            * _ICI_AREA_MM2_PER_100GBIT
            * _phy_area_scale(ctx)
        )
        bandwidth_gbps = self.links * self.link_gbit_per_dir / 8.0
        return _interface_estimate(
            "ici link+switch",
            ctx,
            area_mm2=serdes_area,
            bandwidth_gbps=bandwidth_gbps,
            energy_pj_per_bit=_ICI_ENERGY_PJ_PER_BIT,
            control_gates=_ICI_SWITCH_GATES_PER_LINK * self.links,
        )


@dataclass(frozen=True)
class DmaController:
    """DMA engine moving blocks between off-chip memory and the cores.

    Attributes:
        channels: Concurrent DMA channels.
    """

    channels: int = 4

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError("DMA needs at least one channel")

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Descriptor engines + datapath control."""
        control = LogicBlock(
            "dma-ctrl", 45_000 * self.channels, activity=0.15
        )
        tech = ctx.tech
        return Estimate(
            name="dma controller",
            area_mm2=control.area_mm2(tech),
            dynamic_w=dynamic_power_w(
                control.energy_per_cycle_pj(tech), ctx.freq_ghz
            )
            * calibration.TDP_ACTIVITY["control"],
            leakage_w=control.leakage_w(tech),
        )
