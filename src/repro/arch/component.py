"""The estimate tree every architectural component produces.

An :class:`Estimate` is an inclusive rollup: a node's ``area_mm2``,
``dynamic_w``, and ``leakage_w`` already contain its children, and the
children provide the breakdown (this is what the ring charts in Figs. 3-5
report).  ``dynamic_w`` is the power at the component's thermal-design
activity — the chip model converts the rollup into TDP with a uniform
guardband.

The :class:`ModelContext` carries the two globals every model needs: the
technology node and the clock.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, TypeVar

from repro.cache.keys import stable_hash
from repro.cache.store import get_estimate_cache
from repro.errors import ConfigurationError
from repro.integrity.contracts import screen_value
from repro.integrity.diagnostics import (
    DIGEST_LENGTH,
    component_label,
    component_scope,
    current_component_path,
)
from repro.integrity.faults import active_fault_plan
from repro.tech.node import TechNode
from repro.units import cycle_time_ns

_R = TypeVar("_R")


def cached_estimate(
    method: Callable[..., _R]
) -> Callable[..., _R]:
    """Memoize a pure ``(self, ctx)`` model method through the estimate cache.

    The analytical models are deterministic functions of the component's
    configuration and the :class:`ModelContext`, so their results are
    content-addressed: the key hashes the method's qualified name, the
    component's public state (configs, nested sub-components — derived
    ``_``-prefixed caches are excluded), and the context, salted with the
    package version.  Identical sub-structures therefore share one
    computation across design points, sweeps, and forked sweep workers.

    The wrapped method is bypassed entirely — no key is derived — when the
    process-wide cache is disabled, and falls back to a plain call for
    components whose state cannot be canonicalized.

    This wrapper is also the model stack's integrity boundary:

    * every call pushes the component's label onto the diagnostics path
      stack, so a failure deep in the tree reads
      ``chip.core.tensor_unit`` instead of "invalid result";
    * every freshly *computed* value passes the
      :func:`repro.integrity.contracts.screen_value` numeric screen
      before it can enter the cache — a NaN, infinity, or negative field
      raises :class:`~repro.errors.NumericalError` (with path and config
      digest) and is never stored, so the cache cannot serve a poisoned
      entry;
    * an armed :class:`~repro.integrity.faults.FaultPlan` intercepts
      matching calls here, corrupting the computed value *outside* the
      cache so injected faults can never pollute it.
    """
    qualname = method.__qualname__
    method_name = method.__name__

    @functools.wraps(method)
    def wrapper(self, ctx):
        with component_scope(component_label(self, method_name)):
            plan = active_fault_plan()
            if plan is not None:
                spec = plan.pick(qualname, current_component_path())
                if spec is not None:
                    # Faulted computations bypass the cache in both
                    # directions: no clean hit masks the injection, and
                    # no corrupted value is ever stored.
                    return screen_value(
                        plan.apply(spec, method(self, ctx))
                    )
            cache = get_estimate_cache()
            if not cache.enabled:
                return screen_value(method(self, ctx))
            try:
                key = stable_hash(qualname, self, ctx)
            except ConfigurationError:
                return screen_value(method(self, ctx))
            return cache.get_or_compute(
                key,
                lambda: screen_value(
                    method(self, ctx), digest=key[:DIGEST_LENGTH]
                ),
            )

    return wrapper


@dataclass(frozen=True)
class ModelContext:
    """Shared modeling context: technology node and target clock."""

    tech: TechNode
    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ConfigurationError(
                f"clock rate must be positive, got {self.freq_ghz} GHz"
            )

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return cycle_time_ns(self.freq_ghz)


@dataclass(frozen=True)
class Estimate:
    """Inclusive power/area/timing rollup for one component.

    Attributes:
        name: Component label, used in breakdown reports.
        area_mm2: Total silicon area, children included.
        dynamic_w: Dynamic power at the component's TDP activity factor,
            children included.
        leakage_w: Static power, children included.
        cycle_time_ns: Minimum clock period this component supports
            (0 means it imposes no clock constraint).
        children: Sub-component breakdown.
    """

    name: str
    area_mm2: float
    dynamic_w: float
    leakage_w: float
    cycle_time_ns: float = 0.0
    children: tuple["Estimate", ...] = ()

    def __post_init__(self) -> None:
        if self.area_mm2 < 0 or self.dynamic_w < 0 or self.leakage_w < 0:
            raise ConfigurationError(
                f"estimate {self.name!r} has a negative area or power"
            )

    # -- composition ----------------------------------------------------------

    @classmethod
    def compose(
        cls,
        name: str,
        children: list["Estimate"],
        self_area_mm2: float = 0.0,
        self_dynamic_w: float = 0.0,
        self_leakage_w: float = 0.0,
        self_cycle_time_ns: float = 0.0,
    ) -> "Estimate":
        """Roll child estimates (plus optional glue) into a parent node."""
        return cls(
            name=name,
            area_mm2=self_area_mm2 + sum(c.area_mm2 for c in children),
            dynamic_w=self_dynamic_w + sum(c.dynamic_w for c in children),
            leakage_w=self_leakage_w + sum(c.leakage_w for c in children),
            cycle_time_ns=max(
                [self_cycle_time_ns] + [c.cycle_time_ns for c in children]
            ),
            children=tuple(children),
        )

    def replicated(self, count: int, name: Optional[str] = None) -> "Estimate":
        """This component instantiated ``count`` times (area/power scale)."""
        if count < 1:
            raise ConfigurationError(f"replication count must be >= 1: {count}")
        label = name if name is not None else f"{count}x {self.name}"
        return Estimate(
            name=label,
            area_mm2=self.area_mm2 * count,
            dynamic_w=self.dynamic_w * count,
            leakage_w=self.leakage_w * count,
            cycle_time_ns=self.cycle_time_ns,
            children=(self,) if count > 1 else self.children,
        )

    def renamed(self, name: str) -> "Estimate":
        """The same estimate under a different label."""
        return replace(self, name=name)

    # -- queries ------------------------------------------------------------

    @property
    def total_power_w(self) -> float:
        """Dynamic plus leakage power."""
        return self.dynamic_w + self.leakage_w

    @property
    def max_freq_ghz(self) -> float:
        """Highest clock the component's critical path supports."""
        if self.cycle_time_ns <= 0:
            return float("inf")
        return 1.0 / self.cycle_time_ns

    def walk(self) -> Iterator["Estimate"]:
        """Yield this node and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Estimate":
        """Locate a descendant (or self) by exact name.

        Raises:
            KeyError: no node with that name exists.
        """
        for node in self.walk():
            if node.name == name:
                return node
        raise KeyError(f"no component named {name!r} under {self.name!r}")

    def share_of(self, metric: Callable[["Estimate"], float]) -> dict[str, float]:
        """Fraction of a metric contributed by each direct child."""
        total = metric(self)
        if total <= 0:
            return {child.name: 0.0 for child in self.children}
        return {child.name: metric(child) / total for child in self.children}

    def area_shares(self) -> dict[str, float]:
        """Per-child area fractions (the paper's area ring charts)."""
        return self.share_of(lambda e: e.area_mm2)

    def power_shares(self) -> dict[str, float]:
        """Per-child total-power fractions (the paper's power ring charts)."""
        return self.share_of(lambda e: e.total_power_w)
