"""Architectural components of NeuroMeter's micro-architecture model.

Components follow the paper's top-down decomposition (Fig. 2): a chip is
cores + NoC + peripherals; a core is IFU + LSU + EXU + SU; the EXU contains
the tensor units, reduction trees, vector units, the vector register file,
and the central data bus.  Every component turns a configuration plus a
:class:`~repro.arch.component.ModelContext` into an
:class:`~repro.arch.component.Estimate` tree carrying area, power, and
timing with full per-child breakdowns.
"""

from repro.arch.component import Estimate, ModelContext
from repro.arch.tensor_unit import (
    Dataflow,
    InterconnectKind,
    SystolicCellConfig,
    TensorUnit,
    TensorUnitConfig,
)
from repro.arch.reduction_tree import ReductionTree, ReductionTreeConfig
from repro.arch.vector_unit import VectorUnit, VectorUnitConfig
from repro.arch.vreg import VectorRegisterFile, VRegConfig
from repro.arch.scalar_unit import ScalarUnit
from repro.arch.memory import MemCellKind, OnChipMemory, OnChipMemoryConfig
from repro.arch.cdb import CentralDataBus
from repro.arch.frontend import InstructionFetchUnit, LoadStoreUnit
from repro.arch.noc import NetworkOnChip, NocConfig, NocTopology
from repro.arch.periph import (
    DmaController,
    DramKind,
    InterChipInterconnect,
    MemoryController,
    PcieInterface,
)
from repro.arch.core import Core, CoreConfig
from repro.arch.pod import Pod
from repro.arch.clock_network import ClockNetwork
from repro.arch.floorplan import Floorplan, floorplan_chip, shelf_pack
from repro.arch.chip import Chip, ChipConfig

__all__ = [
    "CentralDataBus",
    "ClockNetwork",
    "Floorplan",
    "Chip",
    "ChipConfig",
    "Core",
    "CoreConfig",
    "Dataflow",
    "DmaController",
    "DramKind",
    "Estimate",
    "InstructionFetchUnit",
    "InterChipInterconnect",
    "InterconnectKind",
    "LoadStoreUnit",
    "MemCellKind",
    "MemoryController",
    "ModelContext",
    "NetworkOnChip",
    "NocConfig",
    "NocTopology",
    "OnChipMemory",
    "OnChipMemoryConfig",
    "Pod",
    "floorplan_chip",
    "shelf_pack",
    "PcieInterface",
    "ReductionTree",
    "ReductionTreeConfig",
    "ScalarUnit",
    "SystolicCellConfig",
    "TensorUnit",
    "TensorUnitConfig",
    "VRegConfig",
    "VectorRegisterFile",
    "VectorUnit",
    "VectorUnitConfig",
]
