"""Multi-chip pods connected by the inter-chip interconnect (ICI).

TPU-v2-style accelerators scale out into pods over their ICI links
(Sec. II-C models the link + switch).  This extension composes N chips
into a pod: aggregate peak compute, power, and area, plus a first-order
ring all-reduce model — the collective that dominates data-parallel
training — so pod-level scaling efficiency can be studied with the same
framework.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.errors import ConfigurationError
from repro.units import GIGA


@dataclass(frozen=True)
class Pod:
    """A pod of identical accelerator chips on a 2D-torus ICI.

    Attributes:
        chip: The member chip (must carry an ICI block).
        chips_x / chips_y: Pod grid dimensions.
    """

    chip: Chip
    chips_x: int
    chips_y: int

    def __post_init__(self) -> None:
        if self.chips_x < 1 or self.chips_y < 1:
            raise ConfigurationError("pod needs at least one chip")
        if self.chips > 1 and self.chip.config.ici is None:
            raise ConfigurationError(
                "multi-chip pods need chips with an ICI block"
            )

    @property
    def chips(self) -> int:
        return self.chips_x * self.chips_y

    # -- aggregate capacity ------------------------------------------------------

    def peak_tops(self, ctx: ModelContext) -> float:
        """Aggregate peak compute."""
        return self.chips * self.chip.peak_tops(ctx)

    def tdp_w(self, ctx: ModelContext) -> float:
        """Aggregate thermal design power."""
        return self.chips * self.chip.tdp_w(ctx)

    def silicon_mm2(self, ctx: ModelContext) -> float:
        """Total silicon across the pod."""
        return self.chips * self.chip.area_mm2(ctx)

    # -- collectives ------------------------------------------------------------

    def ici_link_bytes_per_s(self) -> float:
        """Per-direction bandwidth of one ICI link."""
        ici = self.chip.config.ici
        if ici is None:
            return 0.0
        return ici.link_gbit_per_dir / 8.0 * GIGA

    def all_reduce_time_s(self, payload_bytes: float) -> float:
        """Ring all-reduce time over the pod's torus.

        The standard ``2 (N-1) / N * payload / link_bw`` cost, using the
        torus rings along both dimensions (payload split across them).
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload must be >= 0")
        if self.chips == 1 or payload_bytes == 0:
            return 0.0
        link = self.ici_link_bytes_per_s()
        rings = 2 if min(self.chips_x, self.chips_y) > 1 else 1
        effective_bw = link * rings
        factor = 2.0 * (self.chips - 1) / self.chips
        return factor * payload_bytes / effective_bw

    def data_parallel_step_time_s(
        self, compute_time_s: float, gradient_bytes: float, overlap: float = 0.5
    ) -> float:
        """One data-parallel training step across the pod.

        The all-reduce partially overlaps the backward pass; ``overlap``
        is the hidden fraction.
        """
        if not 0.0 <= overlap <= 1.0:
            raise ConfigurationError("overlap must be in [0, 1]")
        reduce_time = self.all_reduce_time_s(gradient_bytes)
        return compute_time_s + (1.0 - overlap) * reduce_time

    def scaling_efficiency(
        self, compute_time_s: float, gradient_bytes: float, overlap: float = 0.5
    ) -> float:
        """Throughput efficiency vs. perfect linear scaling."""
        step = self.data_parallel_step_time_s(
            compute_time_s, gradient_bytes, overlap
        )
        return compute_time_s / step


def pod_sizes_up_to(max_chips: int) -> list[tuple[int, int]]:
    """Near-square power-of-two pod grids up to ``max_chips``."""
    if max_chips < 1:
        raise ConfigurationError("max_chips must be >= 1")
    sizes = []
    x = 1
    while x * x <= max_chips:
        for y in (x, 2 * x):
            if x * y <= max_chips:
                sizes.append((x, y))
        x *= 2
    return sizes


def chips_for_tops(
    chip: Chip, ctx: ModelContext, target_tops: float
) -> int:
    """Minimum pod size reaching an aggregate compute target."""
    if target_tops <= 0:
        raise ConfigurationError("target must be positive")
    per_chip = chip.peak_tops(ctx)
    return max(1, math.ceil(target_tops / per_chip))
