"""On-chip Memory (Mem): the scratchpad / cache storage of a core.

Per Sec. II-A, the user configures only capacity, block size, target
latency, and target throughput; the internal optimizer picks banks and
read/write ports (this is how NeuroMeter "automatically searched" TPU-v2's
two-read-one-write VMem banking).  The cell type is selectable between
DFF, SRAM, and eDRAM, and the structure may be unified (TPU-v1's unified
buffer) or dedicated (Eyeriss's per-function banks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.dff import DffBank
from repro.circuit.edram import EdramArray
from repro.circuit.gates import LogicBlock
from repro.circuit.sram import SramArray, SramRequirements, optimize_sram
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w

#: Default pipelined access-latency budget, in cycles.
DEFAULT_LATENCY_CYCLES = 4

#: Tag + state storage overhead when configured as a cache, per block.
CACHE_TAG_BITS_PER_BLOCK = 28

#: Memory controller / arbitration logic per bank.
BANK_CONTROL_GATES = 3_000


class MemCellKind(enum.Enum):
    """Storage cell used by the on-chip memory."""

    SRAM = "sram"
    EDRAM = "edram"
    DFF = "dff"


@dataclass(frozen=True)
class OnChipMemoryConfig:
    """High-level on-chip memory configuration (the NeuroMeter inputs).

    Attributes:
        capacity_bytes: Logical capacity.
        block_bytes: Bytes per access.
        cell: Storage cell kind.
        scratchpad: Software-managed scratchpad (True) or cache (False).
        unified: Unified structure (weights + activations together) or
            dedicated per-function banks.
        read_bandwidth_gbps: Required aggregate read throughput.
        write_bandwidth_gbps: Required aggregate write throughput.
        latency_cycles: Pipelined access-latency budget in cycles.
        min_banks: Lower bound on banking (Eyeriss dedicates 27 banks).
    """

    capacity_bytes: int
    block_bytes: int
    cell: MemCellKind = MemCellKind.SRAM
    scratchpad: bool = True
    unified: bool = True
    read_bandwidth_gbps: float = 0.0
    write_bandwidth_gbps: float = 0.0
    latency_cycles: int = DEFAULT_LATENCY_CYCLES
    min_banks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.block_bytes <= 0:
            raise ConfigurationError("memory capacity/block must be positive")
        if self.latency_cycles < 1:
            raise ConfigurationError("latency budget must be >= 1 cycle")
        if self.min_banks < 1:
            raise ConfigurationError("min_banks must be >= 1")


class OnChipMemory:
    """Analytical model of the on-chip memory with auto-banking."""

    def __init__(self, config: OnChipMemoryConfig):
        if config.cell is MemCellKind.DFF and config.capacity_bytes > 65536:
            raise ConfigurationError(
                "DFF-based Mem above 64 KiB is not a sensible design point"
            )
        self.config = config
        self._organization_cache: dict[
            tuple[float, float], SramArray
        ] = {}

    # -- organization ------------------------------------------------------

    def organization(self, ctx: ModelContext) -> SramArray:
        """The bank/port organization chosen by the internal optimizer.

        Memoized twice over: per instance (the dict below) and across
        instances with identical configs through the process-wide estimate
        cache, so one bank search serves every core and design point that
        shares the Mem configuration.
        """
        key = (ctx.tech.feature_nm, ctx.freq_ghz)
        if key not in self._organization_cache:
            self._organization_cache[key] = self._cached_optimize(ctx)
        return self._organization_cache[key]

    @cached_estimate
    def _cached_optimize(self, ctx: ModelContext) -> SramArray:
        return self._optimize(ctx)

    def _optimize(self, ctx: ModelContext) -> SramArray:
        cfg = self.config
        requirements = SramRequirements(
            capacity_bytes=cfg.capacity_bytes,
            block_bytes=cfg.block_bytes,
            freq_ghz=ctx.freq_ghz,
            target_latency_ns=cfg.latency_cycles * ctx.cycle_ns,
            target_read_bandwidth_gbps=cfg.read_bandwidth_gbps,
            target_write_bandwidth_gbps=cfg.write_bandwidth_gbps,
        )
        organization = optimize_sram(requirements, ctx.tech)
        if organization.banks < cfg.min_banks:
            organization = SramArray(
                capacity_bytes=cfg.capacity_bytes,
                block_bytes=cfg.block_bytes,
                banks=cfg.min_banks,
                read_ports=organization.read_ports,
                write_ports=organization.write_ports,
                subarray_rows=organization.subarray_rows,
            )
        return organization

    def _array(self, ctx: ModelContext):
        organization = self.organization(ctx)
        if self.config.cell is MemCellKind.EDRAM:
            return EdramArray(organization)
        return organization

    # -- per-access quantities (used by the runtime power model) ------------

    def read_energy_pj(self, ctx: ModelContext) -> float:
        """Energy of one block read."""
        if self.config.cell is MemCellKind.DFF:
            return self._dff_bank().energy_per_active_cycle_pj(ctx.tech) * 0.5
        return self._array(ctx).read_energy_pj(ctx.tech)

    def write_energy_pj(self, ctx: ModelContext) -> float:
        """Energy of one block write."""
        if self.config.cell is MemCellKind.DFF:
            return self._dff_bank().energy_per_active_cycle_pj(ctx.tech)
        return self._array(ctx).write_energy_pj(ctx.tech)

    def access_latency_ns(self, ctx: ModelContext) -> float:
        """Random-access read latency."""
        if self.config.cell is MemCellKind.DFF:
            return self._dff_bank().setup_plus_clk_to_q_ns(ctx.tech)
        return self._array(ctx).access_latency_ns(ctx.tech)

    def peak_read_bandwidth_gbps(self, ctx: ModelContext) -> float:
        """Aggregate read bandwidth of the chosen organization."""
        return self.organization(ctx).read_bandwidth_gbps(ctx.freq_ghz)

    def peak_write_bandwidth_gbps(self, ctx: ModelContext) -> float:
        """Aggregate write bandwidth of the chosen organization."""
        return self.organization(ctx).write_bandwidth_gbps(ctx.freq_ghz)

    def _dff_bank(self) -> DffBank:
        return DffBank("mem-dff", self.config.capacity_bytes * 8)

    def _tag_overhead(self, ctx: ModelContext) -> Optional[LogicBlock]:
        if self.config.scratchpad:
            return None
        blocks = self.config.capacity_bytes // self.config.block_bytes
        tag_gates = blocks * CACHE_TAG_BITS_PER_BLOCK // 2
        return LogicBlock("mem-tags", tag_gates, activity=0.2)

    # -- rollup ------------------------------------------------------------

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full Mem estimate, sized at the TDP access rate."""
        tech = ctx.tech
        activity = calibration.TDP_ACTIVITY["memory"]
        overhead = calibration.CLOCK_NETWORK_OVERHEAD

        if self.config.cell is MemCellKind.DFF:
            bank = self._dff_bank()
            return Estimate(
                name="on-chip memory",
                area_mm2=bank.area_mm2(tech) * 1.15,
                dynamic_w=dynamic_power_w(
                    bank.energy_per_active_cycle_pj(tech) * overhead,
                    ctx.freq_ghz,
                )
                * activity,
                leakage_w=bank.leakage_w(tech),
            )

        array = self._array(ctx)
        organization = self.organization(ctx)
        # TDP traffic: sustain the configured bandwidth targets (what the
        # compute units actually demand), bounded by the physical ports.
        bytes_per_cycle = self.config.block_bytes * ctx.freq_ghz
        reads_per_cycle = min(
            max(self.config.read_bandwidth_gbps / bytes_per_cycle, 1.0),
            organization.banks * organization.read_ports,
        )
        writes_per_cycle = min(
            max(self.config.write_bandwidth_gbps / bytes_per_cycle, 0.5),
            organization.banks * organization.write_ports,
        )
        energy = (
            reads_per_cycle * array.read_energy_pj(tech)
            + writes_per_cycle * array.write_energy_pj(tech)
        )
        control = LogicBlock(
            "mem-ctrl", BANK_CONTROL_GATES * organization.banks
        )
        tags = self._tag_overhead(ctx)
        area = array.area_mm2(tech) + control.area_mm2(tech)
        leak = array.leakage_w(tech) + control.leakage_w(tech)
        energy += control.energy_per_cycle_pj(tech)
        if tags is not None:
            area += tags.area_mm2(tech)
            leak += tags.leakage_w(tech)
            energy += tags.energy_per_cycle_pj(tech)
        return Estimate(
            name="on-chip memory",
            area_mm2=area,
            dynamic_w=dynamic_power_w(energy * overhead, ctx.freq_ghz)
            * activity,
            leakage_w=leak,
            cycle_time_ns=array.access_latency_ns(tech)
            / self.config.latency_cycles,
        )
