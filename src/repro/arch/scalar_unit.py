"""Scalar Unit (SU): the control-flow helper core.

Per Sec. II-A the SU handles auxiliary control-flow work (address
calculation).  Following the paper, it is a stripped "ARM Cortex-A9 class"
in-order core: instruction fetch without branch prediction, an integer
register file, an ALU, and a small load/store path — everything else of the
A9 removed.  The gate budgets below are McPAT-style structure counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.adder import AdderModel
from repro.circuit.gates import LogicBlock
from repro.circuit.regfile import RegisterFile
from repro.circuit.sram import SramArray
from repro.datatypes import INT32
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import KiB, dynamic_power_w, ps_to_ns, um2_to_mm2

#: Gate budgets for the surviving A9 structures (decode, issue, bypass,
#: pipeline control), sized from McPAT's in-order configurations.
_FETCH_DECODE_GATES = 70_000
_ISSUE_BYPASS_GATES = 45_000
_LSU_CONTROL_GATES = 35_000

#: Instruction buffer and data buffer capacities.
_IBUF_BYTES = 16 * KiB
_DBUF_BYTES = 32 * KiB


@dataclass(frozen=True)
class ScalarUnit:
    """The simplified scalar control core; one per accelerator core.

    Attributes:
        scale: Relative size of the control core.  1.0 is the stripped
            A9-class default of the datacenter study; test chips with a
            bare top-level controller (Eyeriss's control + config scan
            chain) use a fraction of it.
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scalar unit scale must be positive")

    def _gates(self, budget: int) -> int:
        return max(1, int(budget * self.scale))

    def _buffer_bytes(self, budget: int) -> int:
        return max(1024, int(budget * self.scale))

    def _int_rf(self) -> RegisterFile:
        return RegisterFile(
            entries=32, word_bits=32, read_ports=2, write_ports=1
        )

    def _ibuf(self) -> SramArray:
        return SramArray(
            capacity_bytes=self._buffer_bytes(_IBUF_BYTES),
            block_bytes=16,
            subarray_rows=64,
        )

    def _dbuf(self) -> SramArray:
        return SramArray(
            capacity_bytes=self._buffer_bytes(_DBUF_BYTES),
            block_bytes=16,
            subarray_rows=64,
        )

    def _alu(self) -> AdderModel:
        return AdderModel(INT32)

    def area_mm2(self, ctx: ModelContext) -> float:
        """Total SU area."""
        return self.estimate(ctx).area_mm2

    def energy_per_active_cycle_pj(self, ctx: ModelContext) -> float:
        """One scalar instruction per cycle: fetch + decode + RF + ALU."""
        tech = ctx.tech
        energy = self._ibuf().read_energy_pj(tech) * 0.25  # fetch-buffer hit
        energy += LogicBlock(
            "su-frontend",
            self._gates(_FETCH_DECODE_GATES + _ISSUE_BYPASS_GATES),
        ).energy_per_cycle_pj(tech)
        rf = self._int_rf()
        energy += 2 * rf.read_energy_pj(tech) + rf.write_energy_pj(tech)
        energy += self._alu().energy_per_op_pj(tech)
        energy += LogicBlock(
            "su-lsu", self._gates(_LSU_CONTROL_GATES)
        ).energy_per_cycle_pj(tech)
        energy += self._dbuf().read_energy_pj(tech) * 0.2
        return energy * calibration.CLOCK_NETWORK_OVERHEAD

    def cycle_time_ns(self, ctx: ModelContext) -> float:
        """ALU plus bypass path bounds the scalar clock."""
        return self._alu().delay_ns(ctx.tech) + ps_to_ns(4 * ctx.tech.fo4_ps)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full SU estimate with frontend / RF+ALU / LSU children."""
        tech = ctx.tech
        activity = calibration.TDP_ACTIVITY["control"]
        overhead = calibration.CLOCK_NETWORK_OVERHEAD

        frontend_logic = LogicBlock(
            "su-frontend",
            self._gates(_FETCH_DECODE_GATES + _ISSUE_BYPASS_GATES),
        )
        ibuf = self._ibuf()
        frontend = Estimate(
            name="fetch+decode",
            area_mm2=frontend_logic.area_mm2(tech) + ibuf.area_mm2(tech),
            dynamic_w=dynamic_power_w(
                (
                    frontend_logic.energy_per_cycle_pj(tech)
                    + 0.25 * ibuf.read_energy_pj(tech)
                )
                * overhead,
                ctx.freq_ghz,
            )
            * activity,
            leakage_w=frontend_logic.leakage_w(tech) + ibuf.leakage_w(tech),
        )

        rf = self._int_rf()
        alu = self._alu()
        exec_energy = (
            2 * rf.read_energy_pj(tech)
            + rf.write_energy_pj(tech)
            + alu.energy_per_op_pj(tech)
        )
        execute = Estimate(
            name="int rf + alu",
            area_mm2=rf.area_mm2(tech)
            + um2_to_mm2(alu.area_um2(tech))
            * calibration.DATAPATH_ROUTING_OVERHEAD,
            dynamic_w=dynamic_power_w(exec_energy * overhead, ctx.freq_ghz)
            * activity,
            leakage_w=rf.leakage_w(tech) + alu.leakage_w(tech),
            cycle_time_ns=self.cycle_time_ns(ctx),
        )

        lsu_logic = LogicBlock("su-lsu", self._gates(_LSU_CONTROL_GATES))
        dbuf = self._dbuf()
        lsu = Estimate(
            name="scalar lsu",
            area_mm2=lsu_logic.area_mm2(tech) + dbuf.area_mm2(tech),
            dynamic_w=dynamic_power_w(
                (
                    lsu_logic.energy_per_cycle_pj(tech)
                    + 0.2 * dbuf.read_energy_pj(tech)
                )
                * overhead,
                ctx.freq_ghz,
            )
            * activity,
            leakage_w=lsu_logic.leakage_w(tech) + dbuf.leakage_w(tech),
        )

        return Estimate.compose("scalar unit", [frontend, execute, lsu])
