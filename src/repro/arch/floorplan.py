"""First-order floorplanning: shelf-packed block placement.

NeuroMeter's wire models estimate lengths from block areas (Sec. II-A:
"wires are assumed to route around the functional components, and their
length is estimated by the square root of the functional component
area").  This module makes that geometry explicit: it shelf-packs the
chip's top-level blocks into a near-square outline, so users can inspect
block adjacency, center-to-center wire distances, and packing efficiency
— and sanity-check the sqrt-of-area assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.arch.component import Estimate
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlacedBlock:
    """One placed rectangle.

    Attributes:
        name: Block label.
        x_mm / y_mm: Lower-left corner.
        width_mm / height_mm: Dimensions.
    """

    name: str
    x_mm: float
    y_mm: float
    width_mm: float
    height_mm: float

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def center(self) -> tuple[float, float]:
        return (
            self.x_mm + self.width_mm / 2.0,
            self.y_mm + self.height_mm / 2.0,
        )


@dataclass(frozen=True)
class Floorplan:
    """A packed floorplan.

    Attributes:
        blocks: Placed blocks, in placement order.
        width_mm / height_mm: Chip outline.
    """

    blocks: tuple[PlacedBlock, ...]
    width_mm: float
    height_mm: float

    @property
    def outline_mm2(self) -> float:
        return self.width_mm * self.height_mm

    @property
    def placed_mm2(self) -> float:
        return sum(block.area_mm2 for block in self.blocks)

    @property
    def packing_efficiency(self) -> float:
        """Placed area over outline area (1.0 = no dead space)."""
        if self.outline_mm2 <= 0:
            return 0.0
        return self.placed_mm2 / self.outline_mm2

    @property
    def aspect_ratio(self) -> float:
        """Outline width over height (>= 1)."""
        if self.height_mm <= 0:
            return float("inf")
        ratio = self.width_mm / self.height_mm
        return ratio if ratio >= 1 else 1.0 / ratio

    def block(self, name: str) -> PlacedBlock:
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no block named {name!r} in the floorplan")

    def wire_length_mm(self, source: str, sink: str) -> float:
        """Manhattan center-to-center distance between two blocks."""
        a = self.block(source).center
        b = self.block(sink).center
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def render(self, columns: int = 48) -> str:
        """Coarse ASCII rendering of the floorplan."""
        if columns < 8:
            raise ConfigurationError("rendering needs at least 8 columns")
        rows = max(4, int(columns * self.height_mm / max(self.width_mm, 1e-9) / 2))
        grid = [[" "] * columns for _ in range(rows)]
        for index, block in enumerate(self.blocks):
            glyph = chr(ord("A") + index % 26)
            x0 = int(block.x_mm / self.width_mm * columns)
            x1 = max(
                x0 + 1,
                int((block.x_mm + block.width_mm) / self.width_mm * columns),
            )
            y0 = int(block.y_mm / self.height_mm * rows)
            y1 = max(
                y0 + 1,
                int(
                    (block.y_mm + block.height_mm)
                    / self.height_mm
                    * rows
                ),
            )
            for row in range(y0, min(y1, rows)):
                for col in range(x0, min(x1, columns)):
                    grid[row][col] = glyph
        legend = [
            f"  {chr(ord('A') + i % 26)}: {block.name} "
            f"({block.area_mm2:.1f} mm^2)"
            for i, block in enumerate(self.blocks)
        ]
        body = "\n".join("|" + "".join(row) + "|" for row in reversed(grid))
        border = "+" + "-" * columns + "+"
        return "\n".join([border, body, border] + legend)


def shelf_pack(
    blocks: Sequence[tuple[str, float]],
    target_aspect: float = 1.0,
) -> Floorplan:
    """Pack named areas onto shelves inside a near-square outline.

    Blocks are sorted by area (largest first) and laid out on horizontal
    shelves of the outline width; each block becomes a rectangle as tall
    as its shelf.  Simple, deterministic, and within ~20% dead space for
    typical accelerator block mixes.
    """
    if not blocks:
        raise ConfigurationError("cannot floorplan zero blocks")
    if target_aspect <= 0:
        raise ConfigurationError("aspect ratio must be positive")
    for name, area in blocks:
        if area <= 0:
            raise ConfigurationError(
                f"block {name!r} needs a positive area"
            )

    total = sum(area for _, area in blocks)
    width = math.sqrt(total * target_aspect)
    ordered = sorted(blocks, key=lambda item: -item[1])

    placed: list[PlacedBlock] = []
    shelf_y = 0.0
    shelf_height = 0.0
    cursor_x = 0.0
    for name, area in ordered:
        # Shelf height is set by its first (largest remaining) block,
        # aiming for a near-square shape.
        if cursor_x == 0.0:
            shelf_height = min(math.sqrt(area), width)
        block_width = min(area / shelf_height, width)
        if cursor_x + block_width > width + 1e-9:
            shelf_y += shelf_height
            cursor_x = 0.0
            shelf_height = min(math.sqrt(area), width)
            block_width = min(area / shelf_height, width)
        placed.append(
            PlacedBlock(
                name=name,
                x_mm=cursor_x,
                y_mm=shelf_y,
                width_mm=block_width,
                height_mm=area / block_width,
            )
        )
        cursor_x += block_width
    height = max(
        block.y_mm + block.height_mm for block in placed
    )
    return Floorplan(
        blocks=tuple(placed), width_mm=width, height_mm=height
    )


def floorplan_chip(
    estimate: Estimate, min_block_mm2: float = 0.05
) -> Floorplan:
    """Floorplan a chip estimate's top-level blocks.

    White space is distributed implicitly (it shows up as the packing
    slack); blocks below ``min_block_mm2`` are merged into a "misc"
    block so the rendering stays readable.
    """
    named: list[tuple[str, float]] = []
    misc = 0.0
    for child in estimate.children:
        if child.name.startswith("white space"):
            continue
        if child.area_mm2 < min_block_mm2:
            misc += child.area_mm2
            continue
        named.append((child.name, child.area_mm2))
    if misc > 0:
        named.append(("misc", misc))
    if not named:
        raise ConfigurationError("estimate has no placeable blocks")
    return shelf_pack(named)
