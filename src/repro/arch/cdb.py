"""Central Data Bus (CDB): the intra-core interconnect.

Per Sec. II-A the CDB connects the VReg with the TU(s), VU, and Mem.  Wires
route around the functional components, so their length is estimated as the
square root of the connected components' area; when the repeated-wire delay
exceeds the cycle time, the bus is pipelined to preserve throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.dff import DffBank
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.tech.wire import (
    WireType,
    repeated_wire_delay_ns,
    wire_energy_pj_per_bit,
    wire_params,
    wire_pipeline_stages,
)
from repro.units import dynamic_power_w, um_to_mm


@dataclass(frozen=True)
class CentralDataBus:
    """The core-internal bus between VReg and the functional units.

    Attributes:
        width_bits: Bus width (one vector of accumulation-width elements in
            each direction by default).
        connected_area_mm2: Total area of the components the bus routes
            around; the wire length is its square root.
        endpoints: Functional units hanging off the bus.
    """

    width_bits: int
    connected_area_mm2: float
    endpoints: int = 3

    def __post_init__(self) -> None:
        if self.width_bits < 1:
            raise ConfigurationError("CDB width must be positive")
        if self.connected_area_mm2 < 0:
            raise ConfigurationError("connected area must be >= 0")
        if self.endpoints < 2:
            raise ConfigurationError("CDB needs at least two endpoints")

    @property
    def length_mm(self) -> float:
        """Routed bus length (the paper's sqrt-of-area estimate)."""
        return math.sqrt(self.connected_area_mm2)

    def pipeline_stages(self, ctx: ModelContext) -> int:
        """Registers inserted to meet the clock (>= 1)."""
        wire = wire_params(ctx.tech, WireType.INTERMEDIATE)
        return wire_pipeline_stages(
            ctx.tech, wire, self.length_mm, ctx.cycle_ns
        )

    def transfer_energy_pj(self, ctx: ModelContext) -> float:
        """Energy to move one full bus word end to end."""
        wire = wire_params(ctx.tech, WireType.INTERMEDIATE)
        wire_energy = self.width_bits * wire_energy_pj_per_bit(
            ctx.tech, wire, self.length_mm
        )
        pipes = DffBank(
            "cdb-pipe", self.width_bits * self.pipeline_stages(ctx)
        )
        return wire_energy + pipes.energy_per_active_cycle_pj(ctx.tech)

    def latency_ns(self, ctx: ModelContext) -> float:
        """End-to-end propagation delay of the repeated bus."""
        wire = wire_params(ctx.tech, WireType.INTERMEDIATE)
        return repeated_wire_delay_ns(ctx.tech, wire, self.length_mm)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Wire tracks plus pipeline registers."""
        tech = ctx.tech
        wire = wire_params(tech, WireType.INTERMEDIATE)
        track_area = um_to_mm(self.width_bits * wire.pitch_um) * self.length_mm
        pipes = DffBank(
            "cdb-pipe", self.width_bits * self.pipeline_stages(ctx)
        )
        energy = self.transfer_energy_pj(ctx) * (
            calibration.CLOCK_NETWORK_OVERHEAD
        )
        return Estimate(
            name="central data bus",
            area_mm2=track_area + pipes.area_mm2(tech),
            dynamic_w=dynamic_power_w(energy, ctx.freq_ghz)
            * calibration.TDP_ACTIVITY["interconnect"],
            leakage_w=pipes.leakage_w(tech),
            cycle_time_ns=self.latency_ns(ctx) / self.pipeline_stages(ctx),
        )
