"""Explicit clock-network model (an ablation of the amortization constant).

The paper "does not model the clock network as a separate component" —
its power is amortized into every block (our
``calibration.CLOCK_NETWORK_OVERHEAD``).  This module models the clock
distribution explicitly — an H-tree of repeated global wires down to
local meshes, plus the leaf load of every flip-flop — so the amortization
constant can be validated instead of assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.errors import ConfigurationError
from repro.tech.wire import WireType, wire_energy_pj_per_bit, wire_params
from repro.units import dynamic_power_w, fj_to_pj

#: Wire length of an H-tree covering a square of side S: ~1.5 S per level
#: cascade converges to ~3 S for deep trees.
_HTREE_LENGTH_FACTOR = 3.0

#: Local clock mesh adds roughly this much wire per mm^2 of clocked logic.
_LOCAL_MESH_MM_PER_MM2 = 8.0

#: Fraction of a DFF's energy drawn by its clock pin (matches the DFF model).
_CLOCK_PIN_FRACTION = 0.4


@dataclass(frozen=True)
class ClockNetwork:
    """A chip-wide clock distribution network.

    Attributes:
        chip_area_mm2: Die area the tree must cover.
        clocked_bits: Total flip-flop count fed by the network (leaf load).
        mesh_fraction: Fraction of the die covered by local clock meshes
            (datapath-dense regions).
    """

    chip_area_mm2: float
    clocked_bits: int
    mesh_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.chip_area_mm2 <= 0:
            raise ConfigurationError("chip area must be positive")
        if self.clocked_bits < 0:
            raise ConfigurationError("clocked bits must be >= 0")
        if not 0.0 <= self.mesh_fraction <= 1.0:
            raise ConfigurationError("mesh fraction must be in [0, 1]")

    def htree_length_mm(self) -> float:
        """Global H-tree wire length."""
        side = math.sqrt(self.chip_area_mm2)
        return _HTREE_LENGTH_FACTOR * side

    def mesh_length_mm(self) -> float:
        """Local clock-mesh wire length."""
        return (
            _LOCAL_MESH_MM_PER_MM2
            * self.chip_area_mm2
            * self.mesh_fraction
        )

    def energy_per_cycle_pj(self, ctx: ModelContext) -> float:
        """Energy of one clock edge pair across the whole network."""
        tech = ctx.tech
        global_wire = wire_params(tech, WireType.GLOBAL)
        local_wire = wire_params(tech, WireType.LOCAL)
        # The clock toggles twice per cycle; wire energy is per transition.
        tree = 2.0 * wire_energy_pj_per_bit(
            tech, global_wire, self.htree_length_mm()
        )
        mesh = 2.0 * wire_energy_pj_per_bit(
            tech, local_wire, self.mesh_length_mm()
        )
        leaves = fj_to_pj(
            self.clocked_bits
            * tech.dff_energy_fj
            * _CLOCK_PIN_FRACTION
        )
        return tree + mesh + leaves

    def power_w(self, ctx: ModelContext) -> float:
        """Clock-network power at the context clock (never gated)."""
        return dynamic_power_w(self.energy_per_cycle_pj(ctx), ctx.freq_ghz)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Rollup (wire area is routed over other blocks: zero footprint)."""
        return Estimate(
            name="clock network",
            area_mm2=0.0,
            dynamic_w=self.power_w(ctx),
            leakage_w=0.0,
        )


def implied_overhead_factor(
    clock_power_w: float, chip_dynamic_w: float
) -> float:
    """The amortization constant this clock network implies.

    ``1 + clock / (dynamic - clock)`` — comparable to
    ``calibration.CLOCK_NETWORK_OVERHEAD``.
    """
    if chip_dynamic_w <= clock_power_w:
        raise ConfigurationError(
            "chip dynamic power must exceed the clock power"
        )
    return 1.0 + clock_power_w / (chip_dynamic_w - clock_power_w)
