"""Core front-end blocks: Instruction Fetch Unit and Load-Store Unit.

Per Sec. II-A, the IFU of an ML accelerator is deliberately lightweight
(no branch prediction, wide fixed-format instructions fetched from a small
buffer), and the LSU owns the data/control paths between the execution
units, the on-chip memory, and the off-chip interface (DMA descriptors,
address generation, outstanding-transfer tracking).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.circuit.gates import LogicBlock
from repro.circuit.sram import SramArray
from repro.errors import ConfigurationError
from repro.tech import calibration
from repro.units import dynamic_power_w

IFU_CONTROL_GATES = 12_000
LSU_GATES_PER_QUEUE_ENTRY = 900

#: LSU datapath muxing gates per datapath bit.
LSU_DATAPATH_GATES_PER_BIT = 30


@dataclass(frozen=True)
class InstructionFetchUnit:
    """Lightweight VLIW-style instruction fetch.

    Attributes:
        instruction_bytes: Width of one (wide) instruction word.
        buffer_entries: Instructions held in the fetch buffer.
    """

    instruction_bytes: int = 32
    buffer_entries: int = 256

    def __post_init__(self) -> None:
        if self.instruction_bytes < 1 or self.buffer_entries < 1:
            raise ConfigurationError("IFU sizes must be positive")

    def _buffer(self) -> SramArray:
        return SramArray(
            capacity_bytes=self.instruction_bytes * self.buffer_entries,
            block_bytes=self.instruction_bytes,
            subarray_rows=64,
        )

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Fetch buffer plus sequencing control."""
        tech = ctx.tech
        buffer = self._buffer()
        control = LogicBlock("ifu-ctrl", IFU_CONTROL_GATES)
        energy = (
            buffer.read_energy_pj(tech) * 0.5
            + control.energy_per_cycle_pj(tech)
        ) * calibration.CLOCK_NETWORK_OVERHEAD
        return Estimate(
            name="instruction fetch unit",
            area_mm2=buffer.area_mm2(tech) + control.area_mm2(tech),
            dynamic_w=dynamic_power_w(energy, ctx.freq_ghz)
            * calibration.TDP_ACTIVITY["control"],
            leakage_w=buffer.leakage_w(tech) + control.leakage_w(tech),
            cycle_time_ns=control.delay_ns(tech),
        )


@dataclass(frozen=True)
class LoadStoreUnit:
    """Data movement engine between Mem, the EXU, and off-chip memory.

    Attributes:
        queue_entries: Outstanding transfer descriptors tracked.
        datapath_bytes: Width of the load/store datapath in bytes; scaled
            by the core model to match the TU operand bandwidth.
    """

    queue_entries: int = 32
    datapath_bytes: int = 64

    def __post_init__(self) -> None:
        if self.queue_entries < 1 or self.datapath_bytes < 1:
            raise ConfigurationError("LSU sizes must be positive")

    def _control(self) -> LogicBlock:
        gates = (
            self.queue_entries * LSU_GATES_PER_QUEUE_ENTRY
            + self.datapath_bytes * 8 * LSU_DATAPATH_GATES_PER_BIT
        )
        return LogicBlock("lsu-ctrl", gates, activity=0.15)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Descriptor queue plus datapath control."""
        tech = ctx.tech
        control = self._control()
        energy = control.energy_per_cycle_pj(tech) * (
            calibration.CLOCK_NETWORK_OVERHEAD
        )
        return Estimate(
            name="load-store unit",
            area_mm2=control.area_mm2(tech),
            dynamic_w=dynamic_power_w(energy, ctx.freq_ghz)
            * calibration.TDP_ACTIVITY["control"],
            leakage_w=control.leakage_w(tech),
            cycle_time_ns=control.delay_ns(tech),
        )
