"""Core assembly: IFU + LSU + EXU (TUs, RTs, VU, VReg, CDB) + SU + Mem.

This module implements NeuroMeter's dependent-parameter auto-scaling
(Sec. III-A, Fig. 6): given the TU length ``X`` and TU count ``N``, the
core automatically sizes the VU lane count (= X), the VReg width, issue
width and port count (2R + 1W per functional unit), the Mem bandwidth
targets (enough to stream operands to every TU), and the CDB width.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.arch.cdb import CentralDataBus
from repro.arch.component import Estimate, ModelContext, cached_estimate
from repro.arch.frontend import InstructionFetchUnit, LoadStoreUnit
from repro.arch.memory import OnChipMemory, OnChipMemoryConfig
from repro.arch.reduction_tree import ReductionTree, ReductionTreeConfig
from repro.arch.scalar_unit import ScalarUnit
from repro.arch.tensor_unit import TensorUnit, TensorUnitConfig
from repro.arch.vector_unit import VectorUnit, VectorUnitConfig
from repro.arch.vreg import VectorRegisterFile, VRegConfig
from repro.errors import ConfigurationError
from repro.units import tops


@dataclass(frozen=True)
class CoreConfig:
    """One accelerator core.

    Attributes:
        tu: Tensor-unit configuration (shared by all TUs in the core);
            ``None`` for TU-less (reduction-tree or vector-only) cores.
        tensor_units: Number of identical TUs (``N`` in the design tuple).
        rt: Optional reduction-tree configuration.
        reduction_trees: Number of identical RTs.
        vu: Vector unit; ``None`` auto-scales lanes to the TU length.
        mem: On-chip memory slice owned by this core; bandwidth targets of
            0 are auto-filled from the compute units' operand demand.
        extra_memories: Additional named memory structures beyond the main
            Mem (e.g. TPU-v1's accumulator buffer and weight FIFO), as
            ``(name, config)`` pairs.
        vreg_shared_ports: Share one VReg port group across all TUs.
        include_scalar_unit: Whether the core carries an SU for control.
    """

    tu: Optional[TensorUnitConfig]
    tensor_units: int = 1
    rt: Optional[ReductionTreeConfig] = None
    reduction_trees: int = 0
    vu: Optional[VectorUnitConfig] = None
    mem: OnChipMemoryConfig = field(
        default_factory=lambda: OnChipMemoryConfig(
            capacity_bytes=1 << 20, block_bytes=64
        )
    )
    extra_memories: tuple[tuple[str, OnChipMemoryConfig], ...] = ()
    vreg_shared_ports: bool = False
    include_scalar_unit: bool = True
    scalar_unit_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.tu is None and self.rt is None:
            raise ConfigurationError("a core needs at least one compute unit")
        if self.tu is not None and self.tensor_units < 1:
            raise ConfigurationError("tensor_units must be >= 1 when tu set")
        if self.rt is not None and self.reduction_trees < 1:
            raise ConfigurationError(
                "reduction_trees must be >= 1 when rt set"
            )

    # -- dependent parameters (Fig. 6 auto-scaling) ---------------------------

    @property
    def vector_lanes(self) -> int:
        """VU lanes / VReg vector width, auto-matched to the TU length."""
        if self.vu is not None:
            return self.vu.lanes
        if self.tu is not None:
            return self.tu.rows
        assert self.rt is not None
        return max(16, self.rt.inputs // 16)

    @property
    def functional_units(self) -> int:
        """Units attached to the VReg (TUs + RTs + the VU)."""
        units = 1  # the VU
        if self.tu is not None:
            units += self.tensor_units
        if self.rt is not None:
            units += self.reduction_trees
        return units

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput of the core."""
        macs = 0
        if self.tu is not None:
            macs += self.tensor_units * self.tu.macs
        if self.rt is not None:
            macs += self.reduction_trees * self.rt.macs
        return macs

    def vreg_config(self) -> VRegConfig:
        """The auto-scaled VReg."""
        return VRegConfig(
            vector_lanes=self.vector_lanes,
            attached_units=self.functional_units,
            shared_ports=self.vreg_shared_ports,
        )

    def operand_bytes_per_cycle(self) -> int:
        """Input operand stream the Mem must sustain at full compute."""
        total = 0
        if self.tu is not None:
            total += (
                self.tensor_units * self.tu.rows * self.tu.cell.input_dtype.bits
            ) // 8
        if self.rt is not None:
            total += (
                self.reduction_trees
                * self.rt.inputs
                * self.rt.input_dtype.bits
            ) // 8
        return max(total, 1)

    def peak_tops(self, freq_ghz: float) -> float:
        """Peak TOPS of one core at ``freq_ghz``."""
        return tops(self.macs_per_cycle, freq_ghz)


class Core:
    """Analytical model of one core, assembled from its units."""

    def __init__(self, config: CoreConfig):
        self.config = config
        self.ifu = InstructionFetchUnit()
        self.tensor_unit = (
            TensorUnit(config.tu) if config.tu is not None else None
        )
        self.reduction_tree = (
            ReductionTree(config.rt) if config.rt is not None else None
        )
        vu_config = config.vu or VectorUnitConfig(lanes=config.vector_lanes)
        self.vector_unit = VectorUnit(vu_config)
        self.vreg = VectorRegisterFile(config.vreg_config())
        self.scalar_unit = (
            ScalarUnit(scale=config.scalar_unit_scale)
            if config.include_scalar_unit
            else None
        )
        self.lsu = LoadStoreUnit(
            datapath_bytes=config.operand_bytes_per_cycle()
        )

    def memory(self, ctx: ModelContext) -> OnChipMemory:
        """The Mem slice with auto-filled bandwidth targets."""
        cfg = self.config.mem
        operand_gbps = self.config.operand_bytes_per_cycle() * ctx.freq_ghz
        if cfg.read_bandwidth_gbps <= 0:
            cfg = replace(cfg, read_bandwidth_gbps=operand_gbps)
        if cfg.write_bandwidth_gbps <= 0:
            cfg = replace(cfg, write_bandwidth_gbps=operand_gbps / 2.0)
        return OnChipMemory(cfg)

    @cached_estimate
    def estimate(self, ctx: ModelContext) -> Estimate:
        """Full core estimate with per-unit children."""
        children: list[Estimate] = [self.ifu.estimate(ctx)]

        if self.tensor_unit is not None:
            tu_est = self.tensor_unit.estimate(ctx)
            children.append(
                tu_est.replicated(
                    self.config.tensor_units,
                    name="tensor units"
                    if self.config.tensor_units > 1
                    else "tensor unit",
                )
            )
        if self.reduction_tree is not None:
            rt_est = self.reduction_tree.estimate(ctx)
            children.append(
                rt_est.replicated(
                    self.config.reduction_trees,
                    name="reduction trees"
                    if self.config.reduction_trees > 1
                    else "reduction tree",
                )
            )

        children.append(self.vector_unit.estimate(ctx))
        children.append(self.vreg.estimate(ctx))
        if self.scalar_unit is not None:
            children.append(self.scalar_unit.estimate(ctx))
        children.append(self.lsu.estimate(ctx))

        memory = self.memory(ctx)
        children.append(memory.estimate(ctx))
        for name, extra_config in self.config.extra_memories:
            extra = OnChipMemory(extra_config)
            children.append(extra.estimate(ctx).renamed(name))

        connected = sum(child.area_mm2 for child in children)
        cdb = CentralDataBus(
            width_bits=self._cdb_width_bits(),
            connected_area_mm2=connected,
            endpoints=self.config.functional_units + 1,
        )
        children.append(cdb.estimate(ctx))

        return Estimate.compose("core", children)

    def _cdb_width_bits(self) -> int:
        """CDB width: one TU-wide operand vector in each direction.

        The bus matches the widest *systolic* interface, not the VU lane
        count — a 1024-lane VPU reads the VReg locally, it does not stream
        over the CDB every cycle.
        """
        cfg = self.config
        if cfg.tu is not None:
            return 2 * cfg.tu.rows * cfg.tu.cell.input_dtype.bits
        if cfg.rt is not None:
            return 2 * cfg.rt.inputs * cfg.rt.input_dtype.bits
        return 2 * cfg.vector_lanes * 32
