"""Physical-invariant contracts checked at the component level.

The sweep engine's boundary guardrails (kept here, re-exported by
:mod:`repro.dse.guardrails`) catch the grossest symptoms — NaN, negative
area, utilization above 1 — but only after a bad number has already rolled
through every intermediate sum.  This module pushes the checks down to
where the numbers are made:

* :func:`screen_value` — the always-on numeric screen every
  :func:`~repro.arch.component.cached_estimate` result passes *before*
  being stored in the estimate cache, so a poisoned entry can never be
  cached or served.  Failures raise :class:`~repro.errors.NumericalError`
  carrying the component path and config digest.
* :func:`estimate_contracts` — opt-in per-``estimate()`` hooks that
  additionally verify rollup superadditivity on every composed node.
* :func:`verify_invariants` / :func:`enforce_invariants` — the whole-chip
  invariant walker: rollup consistency, TDP >= dynamic + leakage, timing
  sanity (clock period >= modeled critical path), peak-TOPS sanity.
* :func:`probe_tech_monotonicity` / :func:`probe_mac_energy_monotonicity`
  — cross-configuration probes: area/energy must not increase as the
  technology node shrinks 65 -> 7 nm, and MAC energy must not decrease
  with datatype width.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Optional, Sequence

from repro.errors import InvariantViolation, NumericalError
from repro.integrity.diagnostics import current_component_path

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.arch.chip import Chip
    from repro.arch.component import Estimate, ModelContext
    from repro.dse.sweep import DesignPointResult

#: Tolerance above 1.0 still accepted for utilizations (float round-off).
#: Values inside the band are clamped back to exactly 1.0 on return.
UTILIZATION_SLACK = 1e-6

#: Relative tolerance for rollup/consistency comparisons (float summation
#: across a few hundred children).
ROLLUP_RTOL = 1e-9

#: Estimate fields the numeric screen inspects on every tree node.
_ESTIMATE_FIELDS = ("area_mm2", "dynamic_w", "leakage_w", "cycle_time_ns")


# -- boundary guardrail primitives (re-exported by repro.dse.guardrails) --------


def check_finite(field: str, value: float) -> float:
    """Reject NaN and +/-inf."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise NumericalError(field, value, "not a number")
    if math.isnan(value):
        raise NumericalError(field, value, "NaN")
    if math.isinf(value):
        raise NumericalError(field, value, "infinite")
    return float(value)


def check_positive(field: str, value: float) -> float:
    """Reject NaN/inf and values <= 0 (areas, powers, energies, TOPS)."""
    checked = check_finite(field, value)
    if checked <= 0.0:
        raise NumericalError(field, value, "must be positive")
    return checked


def check_nonnegative(field: str, value: float) -> float:
    """Reject NaN/inf and values < 0."""
    checked = check_finite(field, value)
    if checked < 0.0:
        raise NumericalError(field, value, "must be non-negative")
    return checked


def check_fraction(field: str, value: float) -> float:
    """Reject NaN/inf and values outside [0, 1] (utilizations).

    Values inside the float round-off band ``(1, 1 + UTILIZATION_SLACK]``
    are clamped back to exactly 1.0, so downstream metrics never see a
    utilization greater than one.
    """
    checked = check_finite(field, value)
    if not 0.0 <= checked <= 1.0 + UTILIZATION_SLACK:
        raise NumericalError(field, value, "must be within [0, 1]")
    return min(checked, 1.0)


def validate_metrics(metrics: Mapping[str, float], prefix: str = "") -> None:
    """Validate a flat metrics mapping (journal rows, ad-hoc summaries)."""
    for name, value in metrics.items():
        field = f"{prefix}{name}"
        if name.endswith("utilization"):
            check_fraction(field, value)
        else:
            check_nonnegative(field, value)


def validate_result(result: "DesignPointResult") -> "DesignPointResult":
    """Validate one evaluated design point; return it when clean.

    Checks the chip-level numbers (area, TDP, peak TOPS must be positive
    and finite) and every workload outcome (achieved TOPS non-negative,
    utilization within [0, 1], runtime power positive, batch >= 1).

    Raises:
        NumericalError: naming the offending field path.
    """
    check_positive("area_mm2", result.area_mm2)
    check_positive("tdp_w", result.tdp_w)
    check_positive("peak_tops", result.peak_tops)
    for i, outcome in enumerate(result.outcomes):
        path = f"outcomes[{i}]"
        check_nonnegative(f"{path}.achieved_tops", outcome.achieved_tops)
        check_fraction(f"{path}.utilization", outcome.utilization)
        check_positive(f"{path}.runtime_power_w", outcome.runtime_power_w)
        if outcome.batch < 1:
            raise NumericalError(
                f"{path}.batch", outcome.batch, "must be >= 1"
            )
        # Fresh outcomes carry a SimulationResult; journal/vector rows
        # carry latency_ms directly (possibly None on pre-upgrade rows).
        sim = getattr(outcome, "result", None)
        latency_ms = (
            sim.latency_ms
            if sim is not None
            else getattr(outcome, "latency_ms", None)
        )
        if latency_ms is not None:
            check_nonnegative(f"{path}.latency_ms", latency_ms)
    return result


# -- the component-boundary screen ----------------------------------------------

_STRICT = threading.local()


def _strict_enabled() -> bool:
    return getattr(_STRICT, "enabled", False)


@contextmanager
def estimate_contracts() -> Iterator[None]:
    """Opt into per-``estimate()`` rollup contracts for the block.

    While active, every estimate computed through ``cached_estimate`` is
    additionally checked for rollup superadditivity on each composed node
    (parent area/power >= sum of children, parent critical path >= every
    child's), on top of the always-on numeric screen.
    """
    previous = _strict_enabled()
    _STRICT.enabled = True
    try:
        yield
    finally:
        _STRICT.enabled = previous


def _screen_scalar(
    field: str, value: float, digest: Optional[str]
) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        kind: Optional[str] = "not a number"
    elif math.isnan(value):
        kind = "NaN"
    elif math.isinf(value):
        kind = "infinite"
    elif value < 0.0:
        kind = "must be non-negative"
    else:
        return
    raise NumericalError(
        field,
        value,
        kind,
        component_path=current_component_path(),
        config_digest=digest,
    )


def _screen_rollup(
    node: "Estimate", digest: Optional[str]
) -> None:
    for field in ("area_mm2", "dynamic_w", "leakage_w"):
        parent = getattr(node, field)
        total = sum(getattr(child, field) for child in node.children)
        if parent < total * (1.0 - ROLLUP_RTOL) - 1e-12:
            raise NumericalError(
                f"{node.name}.{field}",
                parent,
                f"rollup smaller than the sum of children ({total!r})",
                component_path=current_component_path(),
                config_digest=digest,
            )
    slowest = max(child.cycle_time_ns for child in node.children)
    if node.cycle_time_ns < slowest * (1.0 - ROLLUP_RTOL):
        raise NumericalError(
            f"{node.name}.cycle_time_ns",
            node.cycle_time_ns,
            f"faster than the slowest child ({slowest!r})",
            component_path=current_component_path(),
            config_digest=digest,
        )


def screen_value(value: object, digest: Optional[str] = None) -> object:
    """Screen one freshly computed model result before it can be cached.

    Estimate trees are walked fully (a composed sub-block never passed
    through ``cached_estimate`` on its own, so the root check alone would
    miss it); scalar results (``tdp_w``, ``peak_tops``) are checked
    directly.  All four numeric fields must be finite and non-negative;
    with :func:`estimate_contracts` active, every composed node must also
    satisfy rollup superadditivity.

    Raises:
        NumericalError: carrying the in-flight component path and the
            config digest of the offending configuration.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        _screen_scalar("result", value, digest)
        return value
    walk = getattr(value, "walk", None)
    if walk is None:
        return value
    strict = _strict_enabled()
    for node in walk():
        for field in _ESTIMATE_FIELDS:
            _screen_scalar(
                f"{node.name}.{field}", getattr(node, field), digest
            )
        if strict and node.children:
            _screen_rollup(node, digest)
    return value


# -- the whole-chip invariant walker --------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One broken physical invariant.

    Attributes:
        invariant: Which contract failed (``rollup-area``,
            ``tdp-consistency``, ``timing-sanity``, ...).
        path: Where in the estimate tree (slash-joined node names) or
            which probe configuration.
        message: Human-readable account with the numbers involved.
    """

    invariant: str
    path: str
    message: str

    def describe(self) -> str:
        return f"[{self.invariant}] {self.path}: {self.message}"


def diff_payloads(
    path: str,
    first: object,
    second: object,
    invariant: str = "payload-divergence",
    _prefix: str = "",
) -> "list[Violation]":
    """Structural diff of two JSON-like payloads as :class:`Violation` rows.

    The sharded-sweep merge uses this when two shard journals carry the
    *same* design point with *different* results: each leaf-level
    disagreement becomes one violation naming the diverging key path and
    both values, so the integrity report pinpoints what disagreed instead
    of flagging an opaque blob mismatch.  Floats are compared exactly —
    bit-identical replay is the contract being enforced.
    """
    where = f"{path}.{_prefix}" if _prefix else path
    if isinstance(first, dict) and isinstance(second, dict):
        violations: list[Violation] = []
        for key in sorted(set(first) | set(second), key=repr):
            inner = f"{_prefix}.{key}" if _prefix else str(key)
            if key not in first or key not in second:
                missing = "first" if key not in first else "second"
                violations.append(Violation(
                    invariant=invariant,
                    path=f"{path}.{inner}",
                    message=f"key absent from the {missing} payload",
                ))
                continue
            violations.extend(diff_payloads(
                path, first[key], second[key], invariant, _prefix=inner
            ))
        return violations
    if isinstance(first, (list, tuple)) and isinstance(
        second, (list, tuple)
    ):
        if len(first) != len(second):
            return [Violation(
                invariant=invariant,
                path=where,
                message=f"length {len(first)} != {len(second)}",
            )]
        violations = []
        for index, (a, b) in enumerate(zip(first, second)):
            inner = f"{_prefix}[{index}]" if _prefix else f"[{index}]"
            violations.extend(diff_payloads(
                path, a, b, invariant, _prefix=inner
            ))
        return violations
    if type(first) is type(second) and first == second:
        return []
    if isinstance(first, (int, float)) and isinstance(
        second, (int, float)
    ) and not isinstance(first, bool) and not isinstance(second, bool) \
            and first == second:
        return []  # 1 vs 1.0: numerically identical across JSON round-trips
    return [Violation(
        invariant=invariant,
        path=where,
        message=f"{first!r} != {second!r}",
    )]


def _walk_with_paths(
    node: "Estimate", prefix: str = ""
) -> Iterator[tuple[str, "Estimate"]]:
    path = f"{prefix}/{node.name}" if prefix else node.name
    yield path, node
    for child in node.children:
        yield from _walk_with_paths(child, path)


def _tree_violations(estimate: "Estimate") -> list[Violation]:
    violations: list[Violation] = []
    for path, node in _walk_with_paths(estimate):
        for field in _ESTIMATE_FIELDS:
            value = getattr(node, field)
            if not math.isfinite(value):
                violations.append(
                    Violation(
                        "finite", f"{path}.{field}", f"value is {value!r}"
                    )
                )
            elif value < 0:
                violations.append(
                    Violation(
                        "non-negative",
                        f"{path}.{field}",
                        f"value is {value!r}",
                    )
                )
        if not node.children:
            continue
        for field in ("area_mm2", "dynamic_w", "leakage_w"):
            parent = getattr(node, field)
            total = sum(getattr(c, field) for c in node.children)
            if parent < total * (1.0 - ROLLUP_RTOL) - 1e-12:
                violations.append(
                    Violation(
                        f"rollup-{field.split('_')[0]}",
                        path,
                        f"parent {parent!r} < children sum {total!r}",
                    )
                )
        slowest = max(c.cycle_time_ns for c in node.children)
        if node.cycle_time_ns < slowest * (1.0 - ROLLUP_RTOL):
            violations.append(
                Violation(
                    "rollup-timing",
                    path,
                    f"parent critical path {node.cycle_time_ns!r} ns < "
                    f"slowest child {slowest!r} ns",
                )
            )
    return violations


def verify_invariants(
    chip: "Chip", ctx: "ModelContext"
) -> list[Violation]:
    """Check every physical invariant of one modeled chip; list violations.

    An empty list means the model is self-consistent:

    * every estimate-tree value is finite and non-negative;
    * every rollup is superadditive (chip/core area >= sum of child
      areas, same for dynamic and leakage power) and the critical path is
      the max over children;
    * TDP >= dynamic + leakage at the nominal clock (the guardband only
      ever adds power);
    * the target clock period is no shorter than the modeled critical
      path (timing sanity);
    * peak TOPS is positive, finite, and consistent with the configured
      MACs-per-cycle at the context clock.
    """
    estimate = chip.estimate(ctx)
    violations = _tree_violations(estimate)

    tdp = chip.tdp_w(ctx)
    nominal = estimate.dynamic_w + estimate.leakage_w
    if not math.isfinite(tdp) or tdp < nominal * (1.0 - ROLLUP_RTOL):
        violations.append(
            Violation(
                "tdp-consistency",
                estimate.name,
                f"TDP {tdp!r} W < nominal dynamic+leakage {nominal!r} W",
            )
        )

    if ctx.cycle_ns < estimate.cycle_time_ns * (1.0 - ROLLUP_RTOL):
        violations.append(
            Violation(
                "timing-sanity",
                estimate.name,
                f"clock period {ctx.cycle_ns!r} ns is shorter than the "
                f"modeled critical path {estimate.cycle_time_ns!r} ns",
            )
        )

    peak = chip.peak_tops(ctx)
    expected = chip.config.peak_tops(ctx.freq_ghz)
    if not math.isfinite(peak) or peak <= 0:
        violations.append(
            Violation("peak-tops", estimate.name, f"peak TOPS is {peak!r}")
        )
    elif not math.isclose(peak, expected, rel_tol=1e-9):
        violations.append(
            Violation(
                "peak-tops",
                estimate.name,
                f"peak TOPS {peak!r} != configured {expected!r}",
            )
        )
    return violations


def enforce_invariants(chip: "Chip", ctx: "ModelContext") -> None:
    """Raise :class:`~repro.errors.InvariantViolation` on any violation."""
    violations = verify_invariants(chip, ctx)
    if violations:
        lines = tuple(v.describe() for v in violations)
        raise InvariantViolation(
            f"{len(violations)} physical invariant(s) violated: "
            + "; ".join(lines[:3])
            + (" ..." if len(lines) > 3 else ""),
            violations=lines,
        )


# -- cross-configuration monotonicity probes ------------------------------------


def probe_tech_monotonicity(
    build_chip: Callable[[], "Chip"],
    freq_ghz: float = 0.7,
    nodes_nm: Optional[Sequence[float]] = None,
) -> list[Violation]:
    """Area/energy must not increase as the technology node shrinks.

    Models the same chip at every tabulated node from the largest to the
    smallest (65 -> 7 nm by default) and flags any step where die area,
    dynamic power, or leakage power *grows* while the node shrinks — the
    classic symptom of a corrupted tech-table entry or an inverted
    scaling ratio.
    """
    from repro.arch.component import ModelContext
    from repro.tech.node import available_nodes, node

    sizes = tuple(nodes_nm if nodes_nm is not None else available_nodes())
    violations: list[Violation] = []
    previous: Optional[tuple[float, "Estimate"]] = None
    for feature_nm in sizes:
        chip = build_chip()
        estimate = chip.estimate(
            ModelContext(tech=node(feature_nm), freq_ghz=freq_ghz)
        )
        if previous is not None:
            prev_nm, prev_est = previous
            for field in ("area_mm2", "dynamic_w", "leakage_w"):
                before = getattr(prev_est, field)
                after = getattr(estimate, field)
                if after > before * (1.0 + ROLLUP_RTOL):
                    violations.append(
                        Violation(
                            "tech-monotonicity",
                            f"{prev_nm:g}nm->{feature_nm:g}nm",
                            f"{field} grew from {before!r} to {after!r} "
                            "while the node shrank",
                        )
                    )
        previous = (feature_nm, estimate)
    return violations


def probe_mac_energy_monotonicity(
    tech: Optional[object] = None,
) -> list[Violation]:
    """MAC energy must not decrease with datatype width.

    Checks the integer ladder (int4 -> int8 -> int16 -> int32) and the
    float ladder (bf16 -> fp32, fp16 -> fp32) at one technology node: a
    wider multiplier that models *cheaper* than a narrower one means a
    curve-fit coefficient went bad.
    """
    from repro.circuit.mac import MacModel
    from repro.datatypes import BF16, FP16, FP32, INT4, INT8, INT16, INT32
    from repro.tech.node import REFERENCE_NODE_NM, node

    resolved = tech if tech is not None else node(REFERENCE_NODE_NM)
    violations: list[Violation] = []
    ladders = (
        ("int", (INT4, INT8, INT16, INT32)),
        ("bfloat", (BF16, FP32)),
        ("float", (FP16, FP32)),
    )
    for label, ladder in ladders:
        previous = None
        for dtype in ladder:
            energy = MacModel(input_dtype=dtype).energy_per_mac_pj(resolved)
            area = MacModel(input_dtype=dtype).area_um2(resolved)
            if previous is not None:
                prev_dtype, prev_energy, prev_area = previous
                if energy < prev_energy * (1.0 - ROLLUP_RTOL):
                    violations.append(
                        Violation(
                            "mac-energy-monotonicity",
                            f"{label}:{prev_dtype.name}->{dtype.name}",
                            f"energy fell from {prev_energy!r} to "
                            f"{energy!r} pJ as the datatype widened",
                        )
                    )
                if area < prev_area * (1.0 - ROLLUP_RTOL):
                    violations.append(
                        Violation(
                            "mac-area-monotonicity",
                            f"{label}:{prev_dtype.name}->{dtype.name}",
                            f"area fell from {prev_area!r} to {area!r} "
                            "um^2 as the datatype widened",
                        )
                    )
            previous = (dtype, energy, area)
    return violations
