"""Component-path diagnostics for attributable model failures.

When a NaN leaks out of a curve fit three layers deep, "invalid result"
is not actionable — ``chip.core.tensor_unit.estimate`` is.  This module
maintains a per-thread stack of component labels that the
:func:`repro.arch.component.cached_estimate` wrapper pushes on every model
call, so any :class:`~repro.errors.NumericalError` raised inside can be
annotated with the full component path plus the content digest of the
offending configuration (the same digest the estimate cache keys on, from
:mod:`repro.cache.keys`).

The stack lives in thread-local storage: sweep workers are forked
processes, and inline sweeps are single-threaded per evaluation, so a
plain list per thread is race-free.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.cache.keys import stable_hash
from repro.errors import ConfigurationError

#: Digest length carried on errors: 16 hex chars of the SHA-256 key is
#: plenty to look an entry up while keeping messages readable.
DIGEST_LENGTH = 16

_LOCAL = threading.local()

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


_LABEL_CACHE: dict = {}


def component_label(obj: Any, method_name: str = "estimate") -> str:
    """The path segment for one model object (``TensorUnit`` -> ``tensor_unit``).

    Non-``estimate`` model methods keep their name as a suffix so
    ``Chip.tdp_w`` reads ``chip.tdp_w`` rather than masquerading as the
    estimate rollup.  Labels are memoized per (type, method) — this runs
    on every model call, cache hits included.
    """
    key = (type(obj), method_name)
    label = _LABEL_CACHE.get(key)
    if label is None:
        label = _CAMEL_BOUNDARY.sub("_", type(obj).__name__).lower()
        if method_name != "estimate":
            label = f"{label}.{method_name}"
        _LABEL_CACHE[key] = label
    return label


@contextmanager
def component_scope(label: str) -> Iterator[None]:
    """Push one component label for the duration of its model call.

    Consecutive duplicate labels are collapsed (``Chip.tdp_w`` calling
    ``Chip.estimate`` contributes ``chip.tdp_w`` once, not ``chip.chip``).
    """
    stack = _stack()
    pushed = not stack or stack[-1].split(".", 1)[0] != label.split(".", 1)[0]
    if pushed:
        stack.append(label)
    try:
        yield
    finally:
        if pushed:
            stack.pop()


def current_component_path() -> Optional[str]:
    """The dotted path of the model call in flight, or ``None`` outside one."""
    stack = _stack()
    if not stack:
        return None
    return ".".join(stack)


def config_digest(*parts: Any) -> Optional[str]:
    """Short content digest of a configuration, ``None`` when underivable.

    This is a prefix of the same SHA-256 key the estimate cache uses, so a
    digest on an error message can be matched against cache entries and
    journal rows directly.
    """
    try:
        return stable_hash(*parts)[:DIGEST_LENGTH]
    except ConfigurationError:
        return None


def annotate(error: Exception, digest: Optional[str] = None) -> Exception:
    """Attach the in-flight component path (and digest) to an error.

    Only fills attributes the error declares and has not already set, so
    the innermost (most specific) annotation wins as the error propagates
    up through enclosing scopes.
    """
    if (
        hasattr(error, "component_path")
        and getattr(error, "component_path") is None
    ):
        error.component_path = current_component_path()
    if (
        digest is not None
        and hasattr(error, "config_digest")
        and getattr(error, "config_digest") is None
    ):
        error.config_digest = digest
    return error
