"""Deterministic fault injection for the analytical model stack.

A robustness claim ("guardrails catch bad numbers") is untestable without a
way to *produce* bad numbers on demand.  A :class:`FaultPlan` injects them
where real bugs would appear — the values flowing through the
:func:`repro.arch.component.cached_estimate` wrapping point — so an
end-to-end test can prove three things at once:

* every injected NaN/inf/sign-flip is caught by the component-level screen
  as a :class:`~repro.errors.NumericalError` carrying the component path
  and config digest;
* the estimate cache never stores or serves a poisoned entry (faulted
  computations bypass the cache entirely, and the plan clears the
  in-memory layer on activation so a pre-warmed clean entry cannot mask
  the injection);
* the sweep engine converts each caught fault into a structured
  ``PointFailure`` instead of dying.

Plans are deterministic: :meth:`FaultPlan.generate` derives its specs from
a seed via a private :class:`random.Random`, and application order is
defined by evaluation order, so a failing chaos run can be replayed
exactly from its seed.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.tech.node import TechNode


class FaultKind(enum.Enum):
    """How an injected fault corrupts a modeled value."""

    NAN = "nan"
    INF = "inf"
    SIGN_FLIP = "sign-flip"
    SCALE = "scale"


#: Estimate fields a fault can target (plus scalar method results).
FAULTABLE_FIELDS = ("area_mm2", "dynamic_w", "leakage_w", "cycle_time_ns")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes:
        target: Substring matched against the model method's qualified
            name (``"TensorUnit.estimate"``) and the current component
            path (``"chip.core.tensor_unit"``).  The empty string matches
            every model call.
        kind: Corruption applied to the value.
        field: Which :class:`~repro.arch.component.Estimate` field to
            corrupt; ignored for scalar results (``tdp_w``,
            ``peak_tops``), which are corrupted directly.
        scale: Multiplier for :attr:`FaultKind.SCALE` faults.
        max_hits: Stop applying this spec after it fired this many times
            (0 means unlimited).
    """

    target: str = ""
    kind: FaultKind = FaultKind.NAN
    field: str = "dynamic_w"
    scale: float = 1.05
    max_hits: int = 1

    def __post_init__(self) -> None:
        if self.field not in FAULTABLE_FIELDS:
            raise ConfigurationError(
                f"faultable fields are {FAULTABLE_FIELDS}, got {self.field!r}"
            )

    def matches(self, qualname: str, path: Optional[str]) -> bool:
        if not self.target:
            return True
        return self.target in qualname or (
            path is not None and self.target in path
        )

    def corrupt(self, value: float) -> float:
        if self.kind is FaultKind.NAN:
            return float("nan")
        if self.kind is FaultKind.INF:
            return float("inf")
        if self.kind is FaultKind.SIGN_FLIP:
            # A zero field (e.g. white space power) flips to a negative
            # sentinel so the fault is observable either way.
            return -value if value != 0.0 else -1.0
        return value * self.scale


@dataclass(frozen=True)
class FaultHit:
    """A record of one applied fault (for escape accounting in tests)."""

    spec: FaultSpec
    qualname: str
    component_path: Optional[str]


@dataclass
class FaultPlan:
    """A seeded, replayable set of faults to inject into model calls.

    Activate with :func:`fault_injection`; while active, any
    ``cached_estimate`` call whose qualname or component path matches a
    live spec computes its value *outside* the cache, corrupts it, and
    lets the integrity screen catch the corruption.  ``hits`` records
    every applied fault so tests can assert none escaped detection.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    hits: list[FaultHit] = field(default_factory=list)
    _hit_counts: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @classmethod
    def generate(
        cls,
        seed: int,
        count: int = 4,
        targets: Sequence[str] = ("",),
        kinds: Sequence[FaultKind] = (
            FaultKind.NAN,
            FaultKind.INF,
            FaultKind.SIGN_FLIP,
        ),
    ) -> "FaultPlan":
        """Derive ``count`` fault specs deterministically from ``seed``."""
        rng = random.Random(seed)
        specs = tuple(
            FaultSpec(
                target=rng.choice(list(targets)),
                kind=rng.choice(list(kinds)),
                field=rng.choice(FAULTABLE_FIELDS[:3]),
            )
            for _ in range(count)
        )
        return cls(specs=specs, seed=seed)

    def pick(self, qualname: str, path: Optional[str]) -> Optional[FaultSpec]:
        """The first live spec matching this model call, if any."""
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.max_hits and self._hit_counts.get(index, 0) >= (
                    spec.max_hits
                ):
                    continue
                if spec.matches(qualname, path):
                    self._hit_counts[index] = (
                        self._hit_counts.get(index, 0) + 1
                    )
                    self.hits.append(
                        FaultHit(
                            spec=spec,
                            qualname=qualname,
                            component_path=path,
                        )
                    )
                    return spec
        return None

    def apply(self, spec: FaultSpec, value: Any) -> Any:
        """Corrupt one computed model value according to ``spec``.

        Scalar results are corrupted directly.  Estimate trees are
        corrupted on the targeted field of the *root* node — bypassing the
        dataclass validator exactly the way a bad coefficient deep in a
        curve fit would, since real bugs do not call ``__post_init__``.
        """
        if isinstance(value, (int, float)):
            return spec.corrupt(float(value))
        if dataclasses.is_dataclass(value) and hasattr(value, spec.field):
            poisoned = object.__new__(type(value))
            for f in dataclasses.fields(value):
                object.__setattr__(poisoned, f.name, getattr(value, f.name))
            object.__setattr__(
                poisoned,
                spec.field,
                spec.corrupt(float(getattr(value, spec.field))),
            )
            return poisoned
        return value

    @property
    def exhausted(self) -> bool:
        """Whether every bounded spec has fired its full quota."""
        with self._lock:
            return all(
                spec.max_hits and self._hit_counts.get(i, 0) >= spec.max_hits
                for i, spec in enumerate(self.specs)
            )


_ACTIVE: Optional[FaultPlan] = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan currently armed via :func:`fault_injection`, if any."""
    return _ACTIVE


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm a fault plan for the duration of the block.

    The in-memory estimate cache is cleared on entry so a pre-warmed clean
    entry cannot short-circuit the targeted computation, and again on exit
    so nothing computed under the plan (even values a SCALE fault left
    plausible-looking) can leak into later runs.  Faulted computations
    additionally bypass the cache entirely (see
    :func:`repro.arch.component.cached_estimate`).
    """
    global _ACTIVE
    from repro.cache.store import get_estimate_cache

    if _ACTIVE is not None:
        raise ConfigurationError("a fault plan is already active")
    get_estimate_cache().clear()
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None
        get_estimate_cache().clear()


def perturb_tech(
    tech: TechNode,
    seed: int,
    magnitude: float = 0.05,
    fields: Optional[Sequence[str]] = None,
) -> TechNode:
    """A deterministically perturbed copy of a technology node.

    Every targeted field is scaled by a factor drawn uniformly from
    ``[1 - magnitude, 1 + magnitude]`` using a private RNG seeded with
    ``seed``, emulating a corrupted tech-table entry or a miscalibrated
    import.  Fields validated by :class:`~repro.tech.node.TechNode` stay
    positive for any ``magnitude < 1``, so the perturbed node constructs
    cleanly — the point is to shift downstream results, not to crash the
    constructor.
    """
    if not 0.0 < magnitude < 1.0:
        raise ConfigurationError(
            f"perturbation magnitude must be in (0, 1), got {magnitude}"
        )
    rng = random.Random(seed)
    names = tuple(
        fields
        if fields is not None
        else (
            name
            for name in TechNode.__dataclass_fields__
            if name != "feature_nm"
        )
    )
    changes = {}
    for name in names:
        factor = 1.0 + rng.uniform(-magnitude, magnitude)
        changes[name] = getattr(tech, name) * factor
    return replace(tech, **changes)


def assert_no_nan(tech: TechNode) -> None:
    """Reject a tech node carrying NaN/inf parameters (doctor's tech check)."""
    for name in TechNode.__dataclass_fields__:
        value = getattr(tech, name)
        if not math.isfinite(value):
            raise ConfigurationError(
                f"tech node {tech.name} field {name} is {value!r}"
            )
