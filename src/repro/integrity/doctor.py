"""The ``neurometer doctor`` self-check pipeline.

A calibrated analytical model is only trustworthy while its invariants
hold; ``doctor`` runs the whole self-check suite in one shot and emits a
structured pass/fail report:

* **tech-table** — every tabulated node (and interpolated samples) has
  finite, positive parameters, scales monotonically from 65 to 7 nm, and
  voltage scaling moves energy the right way;
* **invariants** — the physical-invariant walker
  (:func:`repro.integrity.contracts.verify_invariants`) over every preset
  chip and a datacenter design point, with the opt-in per-``estimate()``
  rollup contracts armed;
* **scaling-probes** — tech-node and MAC-datatype monotonicity probes;
* **validation-bands** — modeled TPU-v1 / TPU-v2 / Eyeriss vs published
  numbers inside the paper's claimed error bands;
* **cache-equivalence** — a cold and a warm pass over the presets must
  agree bit-for-bit (the estimate cache is an accelerator, never an
  oracle);
* **fault-containment** — a seeded NaN fault injected through
  ``cached_estimate`` must surface as a :class:`~repro.errors.NumericalError`
  carrying a component path, and must leave no trace in the cache;
* **lint-baseline** — the static analyzer (:mod:`repro.lint`) over the
  installed ``repro`` package must report no findings beyond the
  committed ``lint_baseline.json``.

Any failing check makes :attr:`DoctorReport.passed` false; the CLI maps
that to exit code 2.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import NeuroMeterError, NumericalError
from repro.integrity.contracts import (
    estimate_contracts,
    probe_mac_energy_monotonicity,
    probe_tech_monotonicity,
    verify_invariants,
)
from repro.integrity.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_injection,
)

#: Preset names the doctor knows how to build (resolved lazily).
PRESET_NAMES = ("tpu-v1", "tpu-v2", "eyeriss", "datacenter")


def _presets(names: Sequence[str]):
    """Resolve preset names to ``(name, chip_factory, ctx_factory)``."""
    from repro.config.presets import (
        datacenter_context,
        eyeriss,
        eyeriss_context,
        tpu_v1,
        tpu_v1_context,
        tpu_v2,
        tpu_v2_context,
    )
    from repro.dse.space import DesignPoint

    catalog = {
        "tpu-v1": (tpu_v1, tpu_v1_context),
        "tpu-v2": (tpu_v2, tpu_v2_context),
        "eyeriss": (eyeriss, eyeriss_context),
        "datacenter": (
            lambda: DesignPoint(64, 2, 2, 4).build(),
            datacenter_context,
        ),
    }
    unknown = [name for name in names if name not in catalog]
    if unknown:
        raise NeuroMeterError(
            f"unknown preset(s) {unknown}; choose from {sorted(catalog)}"
        )
    return [(name, *catalog[name]) for name in names]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one doctor check."""

    name: str
    passed: bool
    detail: str
    duration_s: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
            "duration_s": round(self.duration_s, 4),
        }


@dataclass(frozen=True)
class DoctorReport:
    """Structured result of one full doctor run."""

    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }

    def render(self) -> str:
        from repro.report.tables import format_table

        rows = [
            [
                check.name,
                "ok" if check.passed else "FAIL",
                f"{check.duration_s * 1e3:.0f} ms",
                check.detail,
            ]
            for check in self.checks
        ]
        table = format_table(["check", "status", "time", "detail"], rows)
        verdict = (
            "all checks passed"
            if self.passed
            else f"{len(self.failures)} check(s) FAILED"
        )
        return f"{table}\n\n{verdict}"


def _run_check(
    name: str, check: Callable[[], str]
) -> CheckResult:
    """Run one check; any NeuroMeterError (or violation list) fails it."""
    start = time.perf_counter()
    try:
        detail = check()
        passed = True
    except NeuroMeterError as error:
        detail = f"{type(error).__name__}: {error}"
        passed = False
    return CheckResult(
        name=name,
        passed=passed,
        detail=detail,
        duration_s=time.perf_counter() - start,
    )


def _fail(message: str) -> str:
    raise NeuroMeterError(message)


# -- individual checks ----------------------------------------------------------


def _check_tech_table() -> str:
    from repro.tech.node import TechNode, available_nodes, node

    nodes = [node(nm) for nm in available_nodes()]
    nodes += [node(nm) for nm in (40.0, 22.0, 10.0)]  # interpolation samples
    for tech in nodes:
        for field in TechNode.__dataclass_fields__:
            value = getattr(tech, field)
            if not math.isfinite(value) or value <= 0:
                return _fail(
                    f"tech node {tech.name} field {field} is {value!r}"
                )
    # Shrinking the node must shrink area, energy, and delay.
    ordered = [node(nm) for nm in available_nodes()]  # 65 -> 7
    for field in ("gate_area_um2", "gate_energy_fj", "fo4_ps",
                  "sram_cell_um2", "dff_area_um2"):
        values = [getattr(tech, field) for tech in ordered]
        if any(b > a for a, b in zip(values, values[1:])):
            return _fail(
                f"{field} does not shrink monotonically across "
                f"{[t.name for t in ordered]}: {values}"
            )
    # Voltage scaling: lower Vdd must not raise energy or lower delay.
    reference = node(28)
    scaled = reference.at_voltage(0.8 * reference.vdd_v)
    if scaled.gate_energy_fj >= reference.gate_energy_fj:
        return _fail("at_voltage(0.8 Vdd) did not reduce gate energy")
    if scaled.fo4_ps <= reference.fo4_ps:
        return _fail("at_voltage(0.8 Vdd) did not slow the gate delay")
    return f"{len(nodes)} nodes sane, scaling monotone"


def _check_invariants(presets) -> str:
    total = 0
    with estimate_contracts():
        for name, build, ctx_factory in presets:
            chip, ctx = build(), ctx_factory()
            violations = verify_invariants(chip, ctx)
            if violations:
                return _fail(
                    f"{name}: "
                    + "; ".join(v.describe() for v in violations[:3])
                )
            total += 1
    return f"{total} preset(s) satisfy all physical invariants"


def _check_scaling_probes() -> str:
    from repro.dse.space import DesignPoint

    violations = probe_tech_monotonicity(
        lambda: DesignPoint(16, 2, 1, 2).build()
    )
    violations += probe_mac_energy_monotonicity()
    if violations:
        return _fail("; ".join(v.describe() for v in violations[:3]))
    return "tech-node and MAC-datatype scaling monotone"


def _check_validation_bands(presets) -> str:
    from repro.validation.compare import assert_within, validate_chip
    from repro.validation.published import (
        CLAIMED_ERROR_BANDS,
        EYERISS,
        TPU_V1,
        TPU_V2,
    )

    published = {"tpu-v1": TPU_V1, "tpu-v2": TPU_V2, "eyeriss": EYERISS}
    bands = {
        "tpu-v1": CLAIMED_ERROR_BANDS["TPU-v1"],
        "tpu-v2": CLAIMED_ERROR_BANDS["TPU-v2"],
        "eyeriss": CLAIMED_ERROR_BANDS["Eyeriss"],
    }
    checked = []
    for name, build, ctx_factory in presets:
        reference = published.get(name)
        if reference is None:
            continue
        report = validate_chip(build(), ctx_factory(), reference)
        band = bands[name]
        assert_within(report, band["area"], band.get("tdp"))
        checked.append(name)
    if not checked:
        return "no validation chips among the selected presets"
    return f"{', '.join(checked)} inside the published error bands"


def _check_cache_equivalence(presets) -> str:
    from repro.cache.store import get_estimate_cache

    cache = get_estimate_cache()
    if not cache.enabled:
        return "estimate cache disabled; nothing to compare"
    for name, build, ctx_factory in presets:
        ctx = ctx_factory()
        cache.clear()
        chip = build()
        cold = (chip.estimate(ctx), chip.tdp_w(ctx), chip.peak_tops(ctx))
        chip = build()
        warm = (chip.estimate(ctx), chip.tdp_w(ctx), chip.peak_tops(ctx))
        if cold != warm:
            return _fail(
                f"{name}: warm (cached) results diverged from the cold pass"
            )
    return f"{len(presets)} preset(s) bit-identical cold vs warm"


def _check_fault_containment() -> str:
    from repro.cache.store import get_estimate_cache
    from repro.config.presets import datacenter_context
    from repro.dse.space import DesignPoint

    ctx = datacenter_context()
    build = lambda: DesignPoint(8, 1, 1, 1).build()  # noqa: E731

    def _expect_caught(label: str) -> NumericalError:
        try:
            build().estimate(ctx)
        except NumericalError as error:
            return error
        return _fail(f"{label} fault escaped the integrity screen")

    if active_fault_plan() is not None:
        # An externally armed plan (doctor --inject-fault): prove its
        # faults are caught rather than arming a second plan.
        error = _expect_caught("externally injected")
        return _fail(
            "externally injected fault correctly caught "
            f"({error.field} in {error.component_path})"
        )

    cache = get_estimate_cache()
    clean = build().estimate(ctx)
    plan = FaultPlan(
        specs=(FaultSpec(target="", kind=FaultKind.NAN, field="dynamic_w"),)
    )
    with fault_injection(plan):
        error = _expect_caught("seeded NaN")
        if not plan.hits:
            return _fail("fault plan reported no hits")
        if error.component_path is None:
            return _fail("caught fault carried no component path")
    after = build().estimate(ctx)
    if after != clean:
        return _fail("cache served a poisoned entry after fault injection")
    if cache.enabled:
        for key in list(cache._entries):
            hit, value = cache.get(key)
            screened = getattr(value, "walk", None)
            if hit and screened is not None:
                for node in value.walk():
                    if not math.isfinite(node.dynamic_w):
                        return _fail(
                            f"poisoned entry resident in cache ({key[:16]})"
                        )
    return (
        f"injected fault caught at {error.component_path} "
        f"({error.field}); cache clean"
    )


def _check_lint_baseline() -> str:
    from pathlib import Path

    from repro.lint import run_lint

    root = Path(__file__).resolve().parents[3]
    source_dir = root / "src" / "repro"
    if not source_dir.is_dir():
        # Installed as a wheel/zip without the repo layout: nothing to lint.
        return "source tree not present; lint skipped"
    baseline = root / "lint_baseline.json"
    report = run_lint(
        [source_dir],
        root=root,
        baseline_path=baseline if baseline.is_file() else None,
    )
    if report.new:
        first = report.new[0].render()
        return _fail(
            f"{len(report.new)} new lint finding(s), first: {first}"
        )
    return (
        f"{report.files_checked} file(s) lint-clean "
        f"({len(report.suppressed)} baselined)"
    )


# -- the pipeline ---------------------------------------------------------------


def run_doctor(
    preset_names: Optional[Sequence[str]] = None,
    checks: Optional[Sequence[str]] = None,
) -> DoctorReport:
    """Run the full self-check suite and return the structured report.

    Args:
        preset_names: Presets to sweep (default: all of
            :data:`PRESET_NAMES`).
        checks: Subset of check names to run (default: all).
    """
    presets = _presets(tuple(preset_names or PRESET_NAMES))
    suite: list[tuple[str, Callable[[], str]]] = [
        ("tech-table", _check_tech_table),
        ("invariants", lambda: _check_invariants(presets)),
        ("scaling-probes", _check_scaling_probes),
        ("validation-bands", lambda: _check_validation_bands(presets)),
        ("cache-equivalence", lambda: _check_cache_equivalence(presets)),
        ("fault-containment", _check_fault_containment),
        ("lint-baseline", _check_lint_baseline),
    ]
    if checks is not None:
        known = {name for name, _ in suite}
        unknown = [name for name in checks if name not in known]
        if unknown:
            raise NeuroMeterError(
                f"unknown check(s) {unknown}; choose from {sorted(known)}"
            )
        suite = [(name, fn) for name, fn in suite if name in set(checks)]
    return DoctorReport(
        checks=tuple(_run_check(name, fn) for name, fn in suite)
    )
