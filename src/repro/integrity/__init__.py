"""Model-integrity subsystem: contracts, fault injection, diagnostics.

NeuroMeter-style analytical stacks fail silently: one bad curve-fit
coefficient or tech-table entry leaks a plausible-looking wrong number
through every rollup.  This package contains the three layers that keep a
poisoned estimate attributable and contained instead of averaged into a
report:

* :mod:`repro.integrity.contracts` — declarative physical invariants
  checked at the *component* level (the numeric screen every
  ``cached_estimate`` result passes before entering the cache, the
  ``verify_invariants`` walker, and the tech-scaling/datatype monotonicity
  probes), plus the numeric guardrail primitives the sweep engine uses at
  its boundary.
* :mod:`repro.integrity.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan`) that perturbs component estimates and tech-node
  parameters through the ``cached_estimate`` wrapping point, so tests can
  prove end-to-end that every injected fault is caught and the cache never
  serves a poisoned entry.
* :mod:`repro.integrity.diagnostics` — the component-path context stack
  that lets every :class:`~repro.errors.NumericalError` carry
  ``chip.core.tensor_unit``-style paths and the config digest of the
  offending configuration.
* :mod:`repro.integrity.doctor` — the ``neurometer doctor`` self-check
  pipeline (tech-table sanity, invariant sweeps, validation bands, cache
  cold/warm equivalence, fault-containment self-test).
"""

from repro.integrity.contracts import (
    UTILIZATION_SLACK,
    Violation,
    check_finite,
    check_fraction,
    check_nonnegative,
    check_positive,
    diff_payloads,
    enforce_invariants,
    estimate_contracts,
    probe_mac_energy_monotonicity,
    probe_tech_monotonicity,
    screen_value,
    validate_metrics,
    validate_result,
    verify_invariants,
)
from repro.integrity.diagnostics import (
    component_scope,
    config_digest,
    current_component_path,
)
from repro.integrity.faults import (
    FaultHit,
    FaultKind,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_injection,
    perturb_tech,
)

__all__ = [
    "FaultHit",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "UTILIZATION_SLACK",
    "Violation",
    "active_fault_plan",
    "check_finite",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "component_scope",
    "config_digest",
    "current_component_path",
    "diff_payloads",
    "enforce_invariants",
    "estimate_contracts",
    "fault_injection",
    "perturb_tech",
    "probe_mac_energy_monotonicity",
    "probe_tech_monotonicity",
    "screen_value",
    "validate_metrics",
    "validate_result",
    "verify_invariants",
]
