"""Array-valued transcriptions of the dominant cost contributors.

Every function here mirrors, expression for expression, a closed form in
the scalar model stack (``repro.circuit`` / ``repro.arch``) — the MAC
array, the SRAM organization search, DFF banks and the clock tree, and
the wire/NoC models — evaluated over *vectors* of design-point parameters
``(X, N, T_x, T_y)`` against one fixed :class:`TechSubstrate`.

The coefficient hooks consumed here (``sram.SUBARRAY_CONTROL_GATES``,
``tensor_unit.FIFO_PLACEMENT_OVERHEAD``, ...) are the *same* module-level
constants the scalar models use, so a recalibration changes both paths at
once; scalar/vector equivalence over the full Table I grid is pinned by
``tests/batch/``.

All arrays are float64; integer inputs stay exact well below 2**53.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.arch import frontend as frontend_mod
from repro.arch import memory as memory_mod
from repro.arch import noc as noc_mod
from repro.arch import tensor_unit as tu_mod
from repro.arch import vector_unit as vu_mod
from repro.arch import vreg as vreg_mod
from repro.batch.substrate import TechSubstrate
from repro.circuit import dff as dff_mod
from repro.circuit import gates as gates_mod
from repro.circuit import regfile as regfile_mod
from repro.circuit import sram as sram_mod
from repro.tech import calibration
from repro.units import (
    MiB,
    dynamic_power_w,
    fj_to_pj,
    mm2_to_um2,
    nw_to_w,
    ps_to_ns,
    tops,
    um2_to_mm2,
    um_to_mm,
)

#: Bank counts enumerated by the scalar optimizer (1, 2, ..., MAX_BANKS).
BANK_CHOICES = tuple(
    2**k for k in range(int(math.log2(sram_mod.MAX_BANKS)) + 1)
)


# -- circuit primitives, vectorized -----------------------------------------


def _dff_active_pj(sub: TechSubstrate, bits, activity=dff_mod.DEFAULT_DATA_ACTIVITY):
    """`DffBank.energy_per_active_cycle_pj` over an array of bit counts."""
    clock = dff_mod.CLOCK_ENERGY_FRACTION
    per_bit_fj = sub.tech.dff_energy_fj * (clock + (1.0 - clock) * activity)
    return fj_to_pj(bits * per_bit_fj)


def _dff_leak_w(sub: TechSubstrate, bits):
    return nw_to_w(bits * sub.tech.dff_leak_nw)


def _dff_area_mm2(sub: TechSubstrate, bits):
    return um2_to_mm2(bits * sub.tech.dff_area_um2)


def _logic_energy_pj(sub: TechSubstrate, gates, activity=gates_mod.DEFAULT_ACTIVITY):
    """`LogicBlock.energy_per_cycle_pj` over an array of gate counts."""
    return fj_to_pj(gates * activity * sub.tech.gate_energy_fj)


def _logic_area_mm2(sub: TechSubstrate, gates):
    return um2_to_mm2(
        gates * sub.tech.gate_area_um2 * gates_mod.ROUTING_OVERHEAD
    )


def _logic_leak_w(sub: TechSubstrate, gates):
    return nw_to_w(gates * sub.tech.gate_leak_nw)


def _ladder_delay_ns(r_ohm, c_ff, load_ff=0.0, driver_ohm=0.0):
    """`rc.ladder_delay_ns` (pure arithmetic; broadcasts over arrays)."""
    delay_ohm_ff = driver_ohm * (c_ff + load_ff) + (
        r_ohm * (c_ff / 2.0 + load_ff)
    )
    return delay_ohm_ff * 1e-6  # OHM_FF_TO_NS


def _wire_energy_pj_per_bit(sub: TechSubstrate, wire, length_mm):
    energy_fj = 1.3 * wire.c_ff_per_mm * length_mm * sub.tech.vdd_v**2
    return fj_to_pj(energy_fj)


def _repeated_wire_delay_ns(sub: TechSubstrate, wire, length_mm):
    """`wire.repeated_wire_delay_ns` over an array of lengths."""
    t_buf_ns = ps_to_ns(2.0 * sub.tech.fo4_ps)
    rc = wire.rc_ns_per_mm2
    optimal_segment_mm = math.sqrt(2.0 * t_buf_ns / rc)
    linear = math.sqrt(2.0 * t_buf_ns * rc) * length_mm
    short = np.minimum(
        0.5 * rc * length_mm**2 + np.where(length_mm > 0, t_buf_ns, 0.0),
        linear + t_buf_ns,
    )
    return np.where(length_mm <= optimal_segment_mm, short, linear)


def _decoder_gates(rows):
    """`gates.decoder_gate_count(_log2_int(rows))` over an array of rows."""
    bits = np.maximum(1.0, np.ceil(np.log2(np.maximum(rows, 2))))
    return 4.0 * bits + 2.0 * 2.0**bits


def _log2_int_arr(rows):
    return np.maximum(1.0, np.ceil(np.log2(np.maximum(rows, 2))))


# -- SRAM organization search, vectorized ------------------------------------


def sram_search_kernel(
    sub: TechSubstrate,
    capacity_bytes,
    block_bytes,
    read_bw_target,
    write_bw_target,
    latency_bound_ns: float,
) -> Dict[str, np.ndarray]:
    """Vectorized `optimize_sram` plus the chosen organization's physics.

    Walks the exact candidate lattice of `sram.candidate_organizations`
    (banks outer, then read ports, write ports, subarray rows), keeping a
    masked running minimum of ``(area, read_energy)`` per design point with
    strict first-wins tie-breaking, then recomputes every physical quantity
    for the winning organization with array-valued parameters.

    Returns per-point arrays plus a ``feasible`` mask; infeasible points
    (the scalar path raises ``OptimizationError``) carry NaNs.
    """
    capacity = np.asarray(capacity_bytes, dtype=np.float64)
    block = np.asarray(block_bytes, dtype=np.float64)
    shape = np.broadcast(capacity, block).shape

    cols = np.minimum(np.maximum(block * 8, 32), sram_mod.MAX_SUBARRAY_COLS)
    activated = np.maximum(1.0, np.ceil(block * 8 / cols))
    capacity_mib = capacity / MiB
    routing = np.where(
        capacity_mib <= 1.0,
        1.0,
        1.0
        + calibration.SRAM_CAPACITY_ROUTING_COEF * np.log2(capacity_mib),
    )

    best_area = np.full(shape, np.inf)
    best_read_e = np.full(shape, np.inf)
    best_banks = np.zeros(shape)
    best_rp = np.zeros(shape)
    best_wp = np.zeros(shape)
    best_rows = np.zeros(shape)

    for banks in BANK_CHOICES:
        bankable = capacity >= banks * block
        if not bankable.any():
            continue
        for read_ports in (1, 2, 4):
            for write_ports in (1, 2):
                for rows in sram_mod.SUBARRAY_ROW_CHOICES:
                    org = _sram_org_quantities(
                        sub, capacity, block, cols, activated, routing,
                        banks, read_ports, write_ports, rows,
                    )
                    feasible = (
                        bankable
                        & (org["latency_ns"] <= latency_bound_ns)
                        & (org["read_bw_gbps"] >= read_bw_target)
                        & (org["write_bw_gbps"] >= write_bw_target)
                    )
                    better = feasible & (
                        (org["area_mm2"] < best_area)
                        | (
                            (org["area_mm2"] == best_area)
                            & (org["read_energy_pj"] < best_read_e)
                        )
                    )
                    best_area = np.where(better, org["area_mm2"], best_area)
                    best_read_e = np.where(
                        better, org["read_energy_pj"], best_read_e
                    )
                    best_banks = np.where(better, banks, best_banks)
                    best_rp = np.where(better, read_ports, best_rp)
                    best_wp = np.where(better, write_ports, best_wp)
                    best_rows = np.where(better, rows, best_rows)

    feasible = best_banks > 0
    safe = np.where(feasible, best_banks, 1.0)
    chosen = _sram_org_quantities(
        sub, capacity, block, cols, activated, routing,
        safe,
        np.where(feasible, best_rp, 1.0),
        np.where(feasible, best_wp, 1.0),
        np.where(feasible, best_rows, 64.0),
    )
    nan = np.where(feasible, 0.0, np.nan)
    out = {key: value + nan for key, value in chosen.items()}
    out["feasible"] = feasible
    out["banks"] = np.where(feasible, best_banks, nan)
    out["read_ports"] = np.where(feasible, best_rp, nan)
    out["write_ports"] = np.where(feasible, best_wp, nan)
    out["subarray_rows"] = np.where(feasible, best_rows, nan)
    return out


def _sram_org_quantities(
    sub, capacity, block, cols, activated, routing, banks, rp, wp, rows
):
    """Physics of one `SramArray` organization with array parameters."""
    tech = sub.tech
    wire_local = sub.wire_local
    ports = rp + wp

    growth = 1.0 + sram_mod.PORT_PITCH_GROWTH * (ports - 1)
    cell_area_um2 = tech.sram_cell_um2 * growth**2
    cell_h = np.sqrt(cell_area_um2 / sram_mod.CELL_ASPECT)
    cell_w = sram_mod.CELL_ASPECT * cell_h

    bank_bits = (capacity * 8 / banks) * sram_mod.ECC_REDUNDANCY_FACTOR
    subarrays = np.maximum(activated, np.ceil(bank_bits / (rows * cols)))
    control_gates = _decoder_gates(rows) + sram_mod.SUBARRAY_CONTROL_GATES
    subarea_um2 = (
        rows * cols * cell_w * cell_h
        + cols * cell_w * (18.0 * cell_h) * np.maximum(1, ports)
        + rows * cell_h * (12.0 * cell_w)
        + control_gates * tech.gate_area_um2
    )
    area_mm2 = um2_to_mm2(
        banks
        * (subarrays * subarea_um2)
        * sram_mod.ARRAY_ROUTING_OVERHEAD
        * routing
    )
    bank_area_mm2 = area_mm2 / banks

    bits = block * 8
    bl_len_mm = um_to_mm(rows * cell_h)
    bitline_cap_ff = (
        rows * tech.sram_cell_cap_ff + bl_len_mm * wire_local.c_ff_per_mm
    )
    wl_len_mm = um_to_mm(cols * cell_w)
    wordline_cap_ff = (
        cols * tech.gate_cap_ff * 0.5 + wl_len_mm * wire_local.c_ff_per_mm
    )
    wordline_pj = fj_to_pj(wordline_cap_ff * tech.vdd_v**2)
    decode_pj = activated * _logic_energy_pj(sub, control_gates)
    htree_pj = bits * _wire_energy_pj_per_bit(
        sub, sub.wire_intermediate, 0.9 * np.sqrt(bank_area_mm2)
    )
    read_energy_pj = (
        fj_to_pj(
            bits
            * bitline_cap_ff
            * tech.vdd_v
            * (sram_mod.READ_SWING * tech.vdd_v)
        )
        + fj_to_pj(
            bits
            * sram_mod.SENSE_ENERGY_FJ_45NM
            * tech.gate_energy_fj
            / sram_mod.SENSE_ANCHOR_GATE_ENERGY_FJ
        )
        + activated * wordline_pj
        + decode_pj
        + htree_pj
    ) * calibration.SRAM_ACCESS_OVERHEAD
    write_energy_pj = (
        fj_to_pj(bits * bitline_cap_ff * tech.vdd_v**2)
        + activated * wordline_pj
        + decode_pj
        + htree_pj
    ) * calibration.SRAM_ACCESS_OVERHEAD

    stored_bits = capacity * 8 * sram_mod.ECC_REDUNDANCY_FACTOR
    port_growth = 1.0 + 0.5 * sram_mod.PORT_PITCH_GROWTH * (ports - 1)
    cell_leak_w = nw_to_w(stored_bits * tech.sram_bit_leak_nw * port_growth)
    periph_um2 = (
        mm2_to_um2(area_mm2) - stored_bits * tech.sram_cell_um2 * port_growth
    )
    periph_leak_w = (
        nw_to_w(
            np.maximum(periph_um2, 0.0)
            / tech.gate_area_um2
            * tech.gate_leak_nw
        )
        / 3.0
    )
    leakage_w = cell_leak_w + periph_leak_w

    decode_ns = ps_to_ns((2 + _log2_int_arr(rows)) * tech.fo4_ps)
    wordline_ns = _ladder_delay_ns(
        wl_len_mm * wire_local.r_ohm_per_mm,
        wl_len_mm * wire_local.c_ff_per_mm + cols * tech.gate_cap_ff * 0.5,
        driver_ohm=sram_mod.WORDLINE_DRIVER_OHM,
    )
    bitline_ns = (
        _ladder_delay_ns(
            bl_len_mm * wire_local.r_ohm_per_mm,
            bitline_cap_ff,
            driver_ohm=sram_mod.CELL_ON_RESISTANCE_OHM,
        )
        * sram_mod.READ_SWING
    )
    sense_ns = ps_to_ns(2.0 * tech.fo4_ps)
    output_ns = _repeated_wire_delay_ns(
        sub, sub.wire_intermediate, 0.5 * np.sqrt(bank_area_mm2)
    )
    latency_ns = decode_ns + wordline_ns + bitline_ns + sense_ns + output_ns

    read_bw_gbps = banks * rp * block * sub.freq_ghz
    write_bw_gbps = banks * wp * block * sub.freq_ghz
    return {
        "area_mm2": area_mm2,
        "read_energy_pj": read_energy_pj,
        "write_energy_pj": write_energy_pj,
        "leakage_w": leakage_w,
        "latency_ns": latency_ns,
        "read_bw_gbps": read_bw_gbps,
        "write_bw_gbps": write_bw_gbps,
        "bank_read_slots": banks * rp,
        "bank_write_slots": banks * wp,
    }


# -- architecture kernels -----------------------------------------------------


def mac_array_kernel(sub: TechSubstrate, x) -> Dict[str, np.ndarray]:
    """One tensor unit (`TensorUnit.estimate`) for TU lengths ``x``."""
    tech = sub.tech
    cell_cfg = sub.template_config.core.tu.cell
    in_bits = cell_cfg.input_dtype.bits
    out_bits = cell_cfg.mac.accum_dtype.bits
    pipeline_bits = 2 * in_bits + out_bits
    fifo_depth = sub.template_config.core.tu.fifo_depth
    mac = sub.mac_tensor
    overhead = calibration.CLOCK_NETWORK_OVERHEAD

    x = np.asarray(x, dtype=np.float64)
    macs = x * x
    span = x + x

    cell_um2 = (
        mac.area_um2
        + pipeline_bits * tech.dff_area_um2
        + cell_cfg.control_gates * tech.gate_area_um2
    )
    cell_area_mm2 = (
        um2_to_mm2(cell_um2)
        * calibration.DATAPATH_ROUTING_OVERHEAD
        * (1.0 + calibration.ARRAY_SPAN_WIRING_COEF * span)
    )
    pitch_mm = np.sqrt(cell_area_mm2)

    cell_energy_pj = (
        mac.energy_per_mac_pj
        + _dff_active_pj(sub, pipeline_bits)
        + _logic_energy_pj(sub, cell_cfg.control_gates, activity=0.2)
    )
    floor = calibration.ARRAY_SPAN_ENERGY_FLOOR
    span_energy = floor + (1.0 - floor) * np.minimum(
        span / calibration.ARRAY_SPAN_ENERGY_NORM, 2.0
    )
    cell_leak_w = (
        mac.leakage_w
        + _dff_leak_w(sub, pipeline_bits)
        + _logic_leak_w(sub, cell_cfg.control_gates)
    )
    array_area = macs * cell_area_mm2
    array_dyn = (
        dynamic_power_w(
            macs * cell_energy_pj * span_energy * overhead, sub.freq_ghz
        )
        * calibration.TDP_ACTIVITY["compute"]
    )
    array_leak = macs * cell_leak_w
    array_cycle = mac.delay_ns + ps_to_ns(2.0 * tech.fo4_ps)

    lane_bits = x * in_bits + x * (in_bits + out_bits)
    fifo_bits = lane_bits * fifo_depth
    fifo_area = (
        _dff_area_mm2(sub, fifo_bits) * tu_mod.FIFO_PLACEMENT_OVERHEAD
    )
    fifo_dyn = (
        dynamic_power_w(_dff_active_pj(sub, fifo_bits) * overhead, sub.freq_ghz)
        * calibration.TDP_ACTIVITY["compute"]
    )
    fifo_leak = _dff_leak_w(sub, fifo_bits)

    hops = macs * (in_bits + out_bits)
    wire_energy_pj = hops * _wire_energy_pj_per_bit(
        sub, sub.wire_local, pitch_mm
    )
    track_mm2 = um_to_mm(sub.wire_local.pitch_um) * pitch_mm
    wire_area = macs * (in_bits + out_bits) * track_mm2
    wire_dyn = (
        dynamic_power_w(wire_energy_pj * overhead, sub.freq_ghz)
        * calibration.TDP_ACTIVITY["interconnect"]
    )

    return {
        "area_mm2": array_area + fifo_area + wire_area,
        "dynamic_w": array_dyn + fifo_dyn + wire_dyn,
        "leakage_w": array_leak + fifo_leak,
        "timing_ns": np.broadcast_to(
            np.float64(array_cycle), x.shape
        ).copy(),
    }


def vector_lanes_kernel(sub: TechSubstrate, x) -> np.ndarray:
    """The preset's VU lane count for TU lengths ``x``.

    Datacenter presets carry no explicit VU config, so the core falls back
    to ``lanes = tu.rows`` (mult 1, floor 1); the training preset scales
    ``lanes = max(2 * X, 32)``.  Both rules live in the substrate.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.maximum(
        float(sub.template_lane_mult) * x, float(sub.template_lane_floor)
    )


def vector_unit_kernel(sub: TechSubstrate, lanes) -> Dict[str, np.ndarray]:
    """`VectorUnit.estimate` over an array of lane counts."""
    tech = sub.tech
    mac = sub.mac_vector
    lanes = np.asarray(lanes, dtype=np.float64)
    vu_cfg = sub.template_vu_config
    lane_bits = vu_cfg.dtype.bits * vu_cfg.pipeline_depth

    lane_energy_pj = (
        mac.energy_per_mac_pj * vu_mod.MAC_ENERGY_FRACTION
        + _dff_active_pj(sub, lane_bits)
        + _logic_energy_pj(
            sub, vu_cfg.sfu_gates, activity=vu_mod.SFU_ACTIVITY
        )
    )
    lane_um2 = (
        mac.area_um2
        + lane_bits * tech.dff_area_um2
        + vu_cfg.sfu_gates * tech.gate_area_um2
    )
    area = (
        um2_to_mm2(lanes * lane_um2) * calibration.DATAPATH_ROUTING_OVERHEAD
    )
    dyn = (
        dynamic_power_w(
            lanes * lane_energy_pj * calibration.CLOCK_NETWORK_OVERHEAD,
            sub.freq_ghz,
        )
        * calibration.TDP_ACTIVITY["compute"]
    )
    leak = lanes * (
        mac.leakage_w
        + _dff_leak_w(sub, lane_bits)
        + _logic_leak_w(sub, vu_cfg.sfu_gates)
    )
    cycle = mac.delay_ns + ps_to_ns(2.0 * tech.fo4_ps)
    return {
        "area_mm2": area,
        "dynamic_w": dyn,
        "leakage_w": leak,
        "timing_ns": np.broadcast_to(np.float64(cycle), lanes.shape).copy(),
    }


def regfile_kernel(sub: TechSubstrate, lanes, n) -> Dict[str, np.ndarray]:
    """`VectorRegisterFile.estimate` for ``n``+1 attached units."""
    tech = sub.tech
    lanes = np.asarray(lanes, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)

    port_groups = n + 1.0  # N tensor units + the vector unit
    read_ports = vreg_mod.READ_PORTS_PER_UNIT * port_groups
    write_ports = vreg_mod.WRITE_PORTS_PER_UNIT * port_groups
    total_ports = read_ports + write_ports
    entries = vreg_mod.DEFAULT_ENTRIES
    word_bits = lanes * vreg_mod.ELEMENT_BITS
    bits = entries * word_bits

    growth = 1.0 + regfile_mod.PORT_PITCH_GROWTH * np.maximum(
        0.0, total_ports - 2
    )
    cell_um2 = tech.sram_cell_um2 * regfile_mod.BASE_CELL_SRAM_RATIO * (
        growth**2
    )
    decoder_gates = float(
        gates_mod.decoder_gate_count(max(1, math.ceil(math.log2(entries))))
    )
    area = um2_to_mm2(
        (bits * cell_um2 + decoder_gates * total_ports * tech.gate_area_um2)
        * regfile_mod.PERIPHERY_OVERHEAD
    )
    decode_pj = _logic_energy_pj(sub, decoder_gates)
    read_pj = (
        fj_to_pj(word_bits * tech.dff_energy_fj * 0.30 * growth) + decode_pj
    )
    write_pj = (
        fj_to_pj(word_bits * tech.dff_energy_fj * 0.55 * growth) + decode_pj
    )
    active_pj = (
        port_groups
        * (2 * read_pj + write_pj)
        * calibration.CLOCK_NETWORK_OVERHEAD
    )
    dyn = (
        dynamic_power_w(active_pj, sub.freq_ghz)
        * calibration.TDP_ACTIVITY["memory"]
    )
    leak = nw_to_w(bits * tech.sram_bit_leak_nw * 2.0 * growth) + nw_to_w(
        decoder_gates * total_ports * tech.gate_leak_nw
    )
    cycle = ps_to_ns(
        (3 + max(1, math.ceil(math.log2(entries)))) * tech.fo4_ps
    )
    shape = np.broadcast(lanes, n).shape
    return {
        "area_mm2": area,
        "dynamic_w": dyn,
        "leakage_w": leak,
        "timing_ns": np.broadcast_to(np.float64(cycle), shape).copy(),
    }


def lsu_kernel(sub: TechSubstrate, x, n) -> Dict[str, np.ndarray]:
    """`LoadStoreUnit.estimate` at the auto-scaled datapath width."""
    tech = sub.tech
    x = np.asarray(x, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    datapath_bytes = np.maximum(n * x * sub.template_in_bits // 8, 1.0)
    gates = (
        sub.template_lsu_queue_entries * frontend_mod.LSU_GATES_PER_QUEUE_ENTRY
        + datapath_bytes * 8 * frontend_mod.LSU_DATAPATH_GATES_PER_BIT
    )
    energy_pj = (
        _logic_energy_pj(sub, gates, activity=0.15)
        * calibration.CLOCK_NETWORK_OVERHEAD
    )
    shape = np.broadcast(x, n).shape
    return {
        "area_mm2": _logic_area_mm2(sub, gates),
        "dynamic_w": dynamic_power_w(energy_pj, sub.freq_ghz)
        * calibration.TDP_ACTIVITY["control"],
        "leakage_w": _logic_leak_w(sub, gates),
        "timing_ns": np.broadcast_to(
            np.float64(ps_to_ns(12 * tech.fo4_ps)), shape
        ).copy(),
    }


def memory_kernel(sub: TechSubstrate, x, n, cores) -> Dict[str, np.ndarray]:
    """`OnChipMemory.estimate` with the vectorized organization search.

    Besides the rollup quantities, the return carries the derived memory
    configuration (capacity / block / bandwidth targets / latency bound)
    and the winning organization's per-access energies and peak
    bandwidths: the batched performance layer reads them for roofline
    bounds and runtime power, and the estimator uses the targets to
    synthesize the exact scalar ``OptimizationError`` for infeasible
    points.
    """
    x = np.asarray(x, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    cores = np.asarray(cores, dtype=np.float64)

    capacity = np.maximum(
        np.floor_divide(sub.template_mem_pool_bytes, cores),
        sub.template_mem_slice_floor_bytes,
    )
    block = np.maximum(
        float(sub.template_mem_block_mult) * x,
        float(sub.template_mem_block_floor),
    )
    operand_gbps = np.maximum(n * x * sub.template_in_bits // 8, 1.0) * (
        sub.freq_ghz
    )
    read_bw = operand_gbps
    write_bw = operand_gbps / 2.0
    latency_cycles = sub.template_mem_latency_cycles
    bound_ns = latency_cycles * sub.cycle_ns

    org = sram_search_kernel(sub, capacity, block, read_bw, write_bw, bound_ns)

    bytes_per_cycle = block * sub.freq_ghz
    reads = np.minimum(
        np.maximum(read_bw / bytes_per_cycle, 1.0), org["bank_read_slots"]
    )
    writes = np.minimum(
        np.maximum(write_bw / bytes_per_cycle, 0.5), org["bank_write_slots"]
    )
    control_gates = memory_mod.BANK_CONTROL_GATES * org["banks"]
    energy_pj = (
        reads * org["read_energy_pj"]
        + writes * org["write_energy_pj"]
        + _logic_energy_pj(sub, control_gates)
    )
    return {
        "area_mm2": org["area_mm2"] + _logic_area_mm2(sub, control_gates),
        "dynamic_w": dynamic_power_w(
            energy_pj * calibration.CLOCK_NETWORK_OVERHEAD, sub.freq_ghz
        )
        * calibration.TDP_ACTIVITY["memory"],
        "leakage_w": org["leakage_w"] + _logic_leak_w(sub, control_gates),
        "timing_ns": org["latency_ns"] / latency_cycles,
        "feasible": org["feasible"],
        "capacity_bytes": capacity,
        "block_bytes": block,
        "read_bw_target_gbps": read_bw,
        "write_bw_target_gbps": write_bw,
        "latency_bound_ns": np.broadcast_to(
            np.float64(bound_ns), capacity.shape
        ).copy(),
        "read_energy_pj": org["read_energy_pj"],
        "write_energy_pj": org["write_energy_pj"],
        "peak_read_gbps": org["read_bw_gbps"],
        "peak_write_gbps": org["write_bw_gbps"],
    }


def cdb_kernel(
    sub: TechSubstrate, x, connected_area_mm2
) -> Dict[str, np.ndarray]:
    """`CentralDataBus.estimate` around the connected components."""
    tech = sub.tech
    x = np.asarray(x, dtype=np.float64)
    width_bits = 2 * x * sub.template_in_bits
    length_mm = np.sqrt(connected_area_mm2)
    wire = sub.wire_intermediate

    delay_ns = _repeated_wire_delay_ns(sub, wire, length_mm)
    stages = np.maximum(1.0, np.ceil(delay_ns / sub.cycle_ns))
    pipe_bits = width_bits * stages
    transfer_pj = width_bits * _wire_energy_pj_per_bit(
        sub, wire, length_mm
    ) + _dff_active_pj(sub, pipe_bits)
    energy_pj = transfer_pj * calibration.CLOCK_NETWORK_OVERHEAD
    return {
        "area_mm2": um_to_mm(width_bits * wire.pitch_um) * length_mm
        + _dff_area_mm2(sub, pipe_bits),
        "dynamic_w": dynamic_power_w(energy_pj, sub.freq_ghz)
        * calibration.TDP_ACTIVITY["interconnect"],
        "leakage_w": _dff_leak_w(sub, pipe_bits),
        "timing_ns": delay_ns / stages,
    }


def noc_kernel(
    sub: TechSubstrate, tx, ty, core_area_mm2
) -> Dict[str, np.ndarray]:
    """`NetworkOnChip.estimate` (ring up to 4 cores, 2D mesh beyond)."""
    tech = sub.tech
    tx = np.asarray(tx, dtype=np.float64)
    ty = np.asarray(ty, dtype=np.float64)
    nodes = tx * ty
    multi = nodes > 1
    mesh = nodes > 4

    bisection_links = np.where(mesh, np.minimum(tx, ty), 2.0)
    link_count = np.where(
        mesh, tx * (ty - 1) + ty * (tx - 1), nodes
    )
    ports = np.where(mesh, 5.0, 3.0)
    flit = np.maximum(
        float(noc_mod.MIN_FLIT_BITS),
        np.ceil(
            sub.template_noc_bisection_gbps
            * 8.0
            / (bisection_links * sub.freq_ghz)
        ),
    )

    buffer_bits = ports * noc_mod.BUFFER_DEPTH * flit
    crossbar_gates = ports * ports * flit * noc_mod.CROSSBAR_GATES_PER_BIT
    router_area = (
        _dff_area_mm2(sub, buffer_bits)
        + _logic_area_mm2(sub, crossbar_gates)
        + _logic_area_mm2(sub, noc_mod.ALLOCATOR_GATES)
    )
    per_flit_pj = (
        2.0 * _dff_active_pj(sub, flit)
        + _logic_energy_pj(sub, crossbar_gates, activity=0.25) / ports
        + _logic_energy_pj(sub, noc_mod.ALLOCATOR_GATES, activity=0.3)
    )
    router_energy_pj = per_flit_pj * ports * 0.5
    routers_dyn = (
        nodes
        * dynamic_power_w(
            router_energy_pj * calibration.CLOCK_NETWORK_OVERHEAD,
            sub.freq_ghz,
        )
        * calibration.TDP_ACTIVITY["interconnect"]
    )
    routers_leak = nodes * (
        _dff_leak_w(sub, buffer_bits)
        + _logic_leak_w(sub, crossbar_gates)
        + _logic_leak_w(sub, noc_mod.ALLOCATOR_GATES)
    )

    pitch_mm = np.sqrt(np.maximum(core_area_mm2, 1e-6))
    track_area = (
        um_to_mm(link_count * 2 * flit * sub.wire_global.pitch_um) * pitch_mm
    )
    link_energy_pj = flit * _wire_energy_pj_per_bit(
        sub, sub.wire_global, pitch_mm
    )
    links_dyn = (
        link_count
        * dynamic_power_w(
            link_energy_pj * calibration.CLOCK_NETWORK_OVERHEAD, sub.freq_ghz
        )
        * calibration.TDP_ACTIVITY["interconnect"]
    )
    crossbar_delay_ns = ps_to_ns(12 * tech.fo4_ps)
    zero = np.zeros_like(nodes)
    return {
        "area_mm2": np.where(multi, nodes * router_area + track_area, zero),
        "dynamic_w": np.where(multi, routers_dyn + links_dyn, zero),
        "leakage_w": np.where(multi, routers_leak, zero),
        "timing_ns": np.where(multi, crossbar_delay_ns, zero),
    }


def noc_energy_per_byte_kernel(
    sub: TechSubstrate, tx, ty, core_area_mm2
) -> np.ndarray:
    """`NetworkOnChip.energy_per_byte_pj` over arrays of grid shapes.

    Average energy to move one byte between two random cores: mean hop
    count times the per-flit router + link energies, normalized per bit.
    Single-core points cost zero, exactly like the scalar accessor.
    """
    tx = np.asarray(tx, dtype=np.float64)
    ty = np.asarray(ty, dtype=np.float64)
    nodes = tx * ty
    multi = nodes > 1
    mesh = nodes > 4

    bisection_links = np.where(mesh, np.minimum(tx, ty), 2.0)
    ports = np.where(mesh, 5.0, 3.0)
    flit = np.maximum(
        float(noc_mod.MIN_FLIT_BITS),
        np.ceil(
            sub.template_noc_bisection_gbps
            * 8.0
            / (bisection_links * sub.freq_ghz)
        ),
    )
    hops = np.where(mesh, (tx + ty) / 3.0, nodes / 4.0)

    crossbar_gates = ports * ports * flit * noc_mod.CROSSBAR_GATES_PER_BIT
    router_per_flit_pj = (
        2.0 * _dff_active_pj(sub, flit)
        + _logic_energy_pj(sub, crossbar_gates, activity=0.25) / ports
        + _logic_energy_pj(sub, noc_mod.ALLOCATOR_GATES, activity=0.3)
    )
    pitch_mm = np.sqrt(np.maximum(core_area_mm2, 1e-6))
    link_per_flit_pj = flit * _wire_energy_pj_per_bit(
        sub, sub.wire_global, pitch_mm
    )
    per_flit = hops * (router_per_flit_pj + link_per_flit_pj)
    return np.where(multi, per_flit * 8.0 / flit, 0.0)


# -- full-grid rollup ---------------------------------------------------------


def estimate_grid(sub: TechSubstrate, x, n, tx, ty) -> Dict[str, np.ndarray]:
    """Chip-level rollup (`Chip.estimate` + headline metrics) for a grid.

    Returns float64 arrays: ``area_mm2`` (with whitespace), ``dynamic_w``,
    ``leakage_w``, ``tdp_w``, ``peak_tops``, ``timing_ns`` (the composed
    cycle-time bound), and a boolean ``feasible`` mask (False where the
    scalar path would raise ``OptimizationError`` in the Mem search).
    Additional per-point quantities consumed by the batched performance
    layer ride along: the core area, the VU lane count, and the on-chip
    memory's derived configuration and per-access physics (``mem_*``).
    """
    x = np.asarray(x, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    tx = np.asarray(tx, dtype=np.float64)
    ty = np.asarray(ty, dtype=np.float64)
    cores = tx * ty

    ifu = sub.fixed_blocks["ifu"]
    scalar_unit = sub.fixed_blocks["scalar_unit"]

    lanes = vector_lanes_kernel(sub, x)
    tu = mac_array_kernel(sub, x)
    vu = vector_unit_kernel(sub, lanes)
    vreg = regfile_kernel(sub, lanes, n)
    lsu = lsu_kernel(sub, x, n)
    mem = memory_kernel(sub, x, n, cores)

    connected = (
        ifu.area_mm2
        + n * tu["area_mm2"]
        + vu["area_mm2"]
        + vreg["area_mm2"]
        + scalar_unit.area_mm2
        + lsu["area_mm2"]
        + mem["area_mm2"]
    )
    cdb = cdb_kernel(sub, x, connected)

    core_area = connected + cdb["area_mm2"]
    core_dyn = (
        ifu.dynamic_w
        + n * tu["dynamic_w"]
        + vu["dynamic_w"]
        + vreg["dynamic_w"]
        + scalar_unit.dynamic_w
        + lsu["dynamic_w"]
        + mem["dynamic_w"]
        + cdb["dynamic_w"]
    )
    core_leak = (
        ifu.leakage_w
        + n * tu["leakage_w"]
        + vu["leakage_w"]
        + vreg["leakage_w"]
        + scalar_unit.leakage_w
        + lsu["leakage_w"]
        + mem["leakage_w"]
        + cdb["leakage_w"]
    )
    core_cycle = np.maximum.reduce(
        [
            np.full_like(core_area, ifu.cycle_time_ns),
            tu["timing_ns"],
            vu["timing_ns"],
            vreg["timing_ns"],
            np.full_like(core_area, scalar_unit.cycle_time_ns),
            lsu["timing_ns"],
            mem["timing_ns"],
            cdb["timing_ns"],
        ]
    )

    noc = noc_kernel(sub, tx, ty, core_area)

    chip_area = cores * core_area + noc["area_mm2"]
    chip_dyn = cores * core_dyn + noc["dynamic_w"]
    chip_leak = cores * core_leak + noc["leakage_w"]
    chip_cycle = np.maximum(core_cycle, noc["timing_ns"])
    for fixed in sub.chip_fixed_blocks:
        chip_area = chip_area + fixed.area_mm2
        chip_dyn = chip_dyn + fixed.dynamic_w
        chip_leak = chip_leak + fixed.leakage_w
        chip_cycle = np.maximum(chip_cycle, fixed.cycle_time_ns)

    whitespace = sub.template_whitespace_fraction
    area_with_whitespace = chip_area + chip_area * whitespace / (
        1.0 - whitespace
    )
    tdp_w = chip_dyn * calibration.CHIP_TDP_MARGIN + chip_leak
    peak = tops(cores * (n * x * x), sub.freq_ghz)
    return {
        "area_mm2": area_with_whitespace,
        "dynamic_w": chip_dyn,
        "leakage_w": chip_leak,
        "tdp_w": tdp_w,
        "peak_tops": peak,
        "timing_ns": chip_cycle,
        "feasible": mem["feasible"],
        "core_area_mm2": core_area,
        "lanes": lanes,
        "mem_capacity_bytes": mem["capacity_bytes"],
        "mem_block_bytes": mem["block_bytes"],
        "mem_read_bw_target_gbps": mem["read_bw_target_gbps"],
        "mem_write_bw_target_gbps": mem["write_bw_target_gbps"],
        "mem_latency_bound_ns": mem["latency_bound_ns"],
        "mem_read_energy_pj": mem["read_energy_pj"],
        "mem_write_energy_pj": mem["write_energy_pj"],
        "mem_peak_read_gbps": mem["peak_read_gbps"],
        "mem_peak_write_gbps": mem["peak_write_gbps"],
    }
