"""Batched performance simulation: the ``repro/perf`` stack over arrays.

The scalar path evaluates workloads one design point at a time: build the
chip, derive the :class:`~repro.perf.mapping.ArchView`, walk the graph
layer by layer through :func:`~repro.perf.mapping.map_gemm` and
:meth:`~repro.perf.simulator.Simulator.run`, then combine the activity
factors in :func:`~repro.power.runtime.runtime_power`.  Every quantity in
that walk is a closed form of the design tuple, so this module transcribes
it into NumPy array ops over *all* points of a sweep at once — the same
float64 operations in the same order, which keeps the results bit-exact
(integer intermediates stay below 2**53 on the Table I workloads, and
IEEE-754 ops on exactly-represented values are deterministic).

The per-layer loop stays a Python loop (a graph has tens of layers); the
per-*point* dimension — the axis that grows with sweep size — is fully
vectorized.  Kernels use only array-API-standard operations so a GPU array
namespace (e.g. ``cupy``) can be swapped in later.

Energy coefficients that depend on the design tuple only through a handful
of unique values (the TU's per-active-cycle energy depends on ``X`` alone;
the VReg's on ``(lanes, N)``) are evaluated through the *real* scalar
models once per unique value and scattered back into point arrays, so the
batched runtime power is bit-identical to the scalar combination by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.tensor_unit import TensorUnit
from repro.arch.vector_unit import VectorUnit
from repro.arch.vreg import VectorRegisterFile, VRegConfig
from repro.batch.substrate import TechSubstrate
from repro.errors import MappingError
from repro.perf.graph import Graph
from repro.perf.ops import Conv2d
from repro.perf.optimizations import OptimizationConfig
from repro.perf.optimizations import _FOLD, _STEM_CHANNEL_BOUND
from repro.perf.simulator import (
    BATCH_CANDIDATES,
    DEFAULT_LATENCY_SLO_MS,
    _ACTIVATION_MEM_SHARE,
    _POINTWISE_SIMD,
    _fusable,
    _vector_simd,
)
from repro.power.runtime import _DRAM_IDLE_FRACTION, _FILL_ENERGY_FRACTION
from repro.tech import calibration
from repro.units import GIGA, OPS_PER_MAC, dynamic_power_w

#: Partial-sum width on the NoC (mirrors ``repro.perf.mapping``).
_PSUM_BYTES = 4

#: Smallest M chunk worth splitting a tile pass over.
_MIN_M_CHUNK_FACTOR = 2


# -- the simulator's chip summary, as arrays -----------------------------------


@dataclass(frozen=True)
class ArchArrays:
    """:class:`~repro.perf.mapping.ArchView` transcribed to point arrays.

    Every attribute mirrors its scalar namesake; ``multi`` is the
    ``cores > 1`` mask that gates the NoC bound and the NoC power term.
    """

    tu_rows: np.ndarray
    tus: np.ndarray
    cores: np.ndarray
    vu_lanes_total: np.ndarray
    macs_per_cycle: np.ndarray
    freq_ghz: float
    mem_capacity_bytes: np.ndarray
    mem_read_gbps: np.ndarray
    mem_write_gbps: np.ndarray
    noc_gbps: np.ndarray
    offchip_gbps: np.ndarray
    multi: np.ndarray

    @classmethod
    def of(
        cls,
        sub: TechSubstrate,
        grid: Dict[str, np.ndarray],
        x: np.ndarray,
        n: np.ndarray,
        cores: np.ndarray,
    ) -> "ArchArrays":
        """Build the view from ``estimate_grid`` outputs.

        Mirrors ``ArchView.of``: the Mem bandwidth is the *chosen SRAM
        organization's* aggregate bandwidth times the core count, the NoC
        carries the bisection bandwidth only on multi-core chips, and the
        MAC throughput is ``cores * N * X**2``.
        """
        x = np.asarray(x, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        cores = np.asarray(cores, dtype=np.float64)
        multi = cores > 1
        return cls(
            tu_rows=x,
            tus=cores * n,
            cores=cores,
            vu_lanes_total=cores * grid["lanes"],
            macs_per_cycle=cores * (n * (x * x)),
            freq_ghz=sub.freq_ghz,
            mem_capacity_bytes=cores * grid["mem_capacity_bytes"],
            mem_read_gbps=cores * grid["mem_peak_read_gbps"],
            mem_write_gbps=cores * grid["mem_peak_write_gbps"],
            noc_gbps=np.where(
                multi, sub.template_noc_bisection_gbps, 0.0
            ),
            offchip_gbps=np.full(
                cores.shape, sub.template_offchip_gbps, dtype=np.float64
            ),
            multi=multi,
        )


def _to_cycles(
    bytes_moved, bandwidth_gbps, freq_ghz: float
) -> np.ndarray:
    """``Simulator._to_cycles`` over arrays (exact float-op order)."""
    moved = np.asarray(bytes_moved, dtype=np.float64)
    bw = np.asarray(bandwidth_gbps, dtype=np.float64)
    moving = moved > 0
    if np.any(moving & (bw <= 0)):
        raise MappingError("traffic on a zero-bandwidth path")
    safe_bw = np.where(bw > 0, bw, 1.0)
    seconds = moved / (safe_bw * GIGA)
    return np.where(
        moving, np.ceil(seconds * freq_ghz * GIGA), 0.0
    )


# -- the weight-stationary mapper, as arrays -----------------------------------


def map_weight_stationary_arrays(
    m, k, n_dim, arch: ArchArrays, opt: OptimizationConfig
) -> Dict[str, np.ndarray]:
    """``_map_weight_stationary`` with array-valued GEMM dims and arch.

    ``m`` may vary per point (batch scaling); ``k``/``n_dim`` are scalars
    or arrays.  Returns the mapping quantities the simulator consumes.
    All intermediates are exact integers in float64, so every ``ceil``
    and floor-division matches the scalar ``math`` calls bit for bit.
    """
    x = arch.tu_rows
    m = np.asarray(m, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    n_dim = np.asarray(n_dim, dtype=np.float64)

    k_tiles = np.ceil(k / x)
    n_tiles = np.ceil(n_dim / x)
    tiles = k_tiles * n_tiles

    min_chunk = _MIN_M_CHUNK_FACTOR * x
    split = (n_tiles < arch.tus) & (m > min_chunk)
    chunks_per_tile = np.where(
        split,
        np.minimum(np.ceil(arch.tus / n_tiles), np.ceil(m / min_chunk)),
        1.0,
    )
    n_parallel = n_tiles * chunks_per_tile
    k_parallel = np.where(
        n_parallel >= arch.tus,
        1.0,
        np.minimum(k_tiles, np.ceil(arch.tus / n_parallel)),
    )
    total_passes = tiles * chunks_per_tile
    m_part = np.ceil(m / chunks_per_tile)

    fill_drain = 2 * x
    weight_load = 0.0 if opt.double_buffering else x
    per_pass = m_part + weight_load + opt.tile_overhead_cycles
    if not opt.double_buffering:
        per_pass = per_pass + fill_drain
    rounds = np.ceil(total_passes / arch.tus)
    compute_cycles = rounds * per_pass + fill_drain

    merge_ops = m * n_dim * (k_parallel - 1)

    m_parallelism = np.maximum(1.0, np.floor_divide(m, min_chunk))
    data_parallel_cores = np.minimum(arch.cores, m_parallelism)
    cross_fraction = (arch.cores - data_parallel_cores) / arch.cores
    psum_noc = np.ceil(
        m * n_dim * _PSUM_BYTES * (k_parallel - 1) * cross_fraction
    )
    broadcast_noc = np.ceil(m * k * cross_fraction)
    weight_replicas = np.minimum(chunks_per_tile, arch.cores)
    broadcast_noc = broadcast_noc + k * n_dim * np.maximum(
        weight_replicas - 1, 0.0
    )
    noc_bytes = np.where(arch.multi, psum_noc + broadcast_noc, 0.0)

    reuse = np.maximum(
        1.0, np.minimum(n_tiles, opt.activation_reuse_tiles)
    )
    act_reads = m * k * np.ceil(n_tiles / reuse)
    merge_spill = m * n_dim * _PSUM_BYTES * np.maximum(k_parallel - 1, 0.0)
    mem_reads = act_reads + k * n_dim + merge_spill
    mem_writes = m * n_dim + merge_spill

    return {
        "compute_cycles": compute_cycles,
        "useful_macs": m * k * n_dim,
        "occupied_mac_cycles": total_passes * per_pass * x * x,
        "merge_vector_ops": merge_ops,
        "mem_read_bytes": np.ceil(mem_reads),
        "mem_write_bytes": np.ceil(mem_writes),
        "noc_bytes": noc_bytes,
    }


# -- graph flattening ----------------------------------------------------------


@dataclass(frozen=True)
class LayerSpec:
    """One graph layer's point-independent quantities.

    The batched simulator walks these instead of live ``LayerNode``
    objects: the per-sample costs, the base GEMM dims (before batch
    scaling), and the layer-class predicates that gate fusion, SIMD
    packing, space-to-depth, and the launch overhead.
    """

    name: str
    has_gemm: bool
    gemm_m: int
    gemm_k: int
    gemm_n: int
    space_to_depth: bool
    macs: int
    vector_ops: int
    params_bytes: int
    input_bytes: int
    output_bytes: int
    simd: int
    fusable: bool
    pays_launch: bool


@dataclass(frozen=True)
class GraphSpec:
    """A whole graph flattened for batched simulation."""

    name: str
    layers: Tuple[LayerSpec, ...]
    total_macs: int
    total_params_bytes: int

    @classmethod
    def of(cls, graph: Graph, opt: OptimizationConfig) -> "GraphSpec":
        layers: List[LayerSpec] = []
        for layer in graph:
            cost = layer.cost()
            has_gemm = cost.gemm is not None
            fusable = layer.op is not None and _fusable(layer.op)
            s2d = (
                has_gemm
                and opt.space_to_depth
                and isinstance(layer.op, Conv2d)
                and not (
                    layer.input_shape[2] > _STEM_CHANNEL_BOUND
                    or layer.op.stride < _FOLD
                )
            )
            layers.append(
                LayerSpec(
                    name=layer.name,
                    has_gemm=has_gemm,
                    gemm_m=cost.gemm.m if has_gemm else 0,
                    gemm_k=cost.gemm.k if has_gemm else 0,
                    gemm_n=cost.gemm.n if has_gemm else 0,
                    space_to_depth=s2d,
                    macs=cost.macs,
                    vector_ops=cost.vector_ops,
                    params_bytes=cost.params_bytes,
                    input_bytes=cost.input_bytes,
                    output_bytes=cost.output_bytes,
                    simd=_vector_simd(layer.op) if layer.op else 1,
                    fusable=fusable,
                    pays_launch=has_gemm or not fusable,
                )
            )
        return cls(
            name=graph.name,
            layers=tuple(layers),
            total_macs=graph.total_macs(),
            total_params_bytes=graph.total_params_bytes(),
        )


# -- the simulator, as arrays --------------------------------------------------


def simulate_graph_arrays(
    spec: GraphSpec,
    arch: ArchArrays,
    peak_tops: np.ndarray,
    batch: np.ndarray,
    opt: OptimizationConfig,
) -> Dict[str, np.ndarray]:
    """``Simulator.run`` over arrays of design points.

    ``batch`` is a per-point array (the latency-bound regime resolves a
    different batch per point).  Returns the end-to-end metrics plus the
    activity factors the runtime power model consumes.
    """
    batch = np.asarray(batch, dtype=np.float64)
    if np.any(batch < 1):
        raise MappingError(
            f"batch must be >= 1, got {float(np.min(batch)):g}"
        )
    freq = arch.freq_ghz
    shape = np.broadcast(arch.tu_rows, batch).shape
    zeros = np.zeros(shape, dtype=np.float64)

    weights_resident = spec.total_params_bytes <= (
        arch.mem_capacity_bytes * (1 - _ACTIVATION_MEM_SHARE)
    )
    activation_budget = arch.mem_capacity_bytes * _ACTIVATION_MEM_SHARE

    total_cycles = zeros.copy()
    tu_macs = zeros.copy()
    occupied_mac_cycles = zeros.copy()
    vector_ops_total = zeros.copy()
    mem_read_total = zeros.copy()
    mem_write_total = zeros.copy()
    noc_total = zeros.copy()
    offchip_total = zeros.copy()
    fusion_credit = zeros.copy()

    for layer in spec.layers:
        vector_ops = layer.vector_ops * batch
        layer_offchip = np.where(
            weights_resident, 0.0, float(layer.params_bytes)
        )
        working_set = (layer.input_bytes + layer.output_bytes) * batch
        layer_offchip = layer_offchip + 2.0 * np.maximum(
            0.0, working_set - activation_budget
        )

        if layer.has_gemm:
            m = layer.gemm_m * batch
            k = float(layer.gemm_k)
            if layer.space_to_depth:
                factor = _FOLD * _FOLD
                m = np.maximum(1.0, np.floor_divide(m, factor))
                k = k * factor
            mapping = map_weight_stationary_arrays(
                m, k, layer.gemm_n, arch, opt
            )
            vector_ops = vector_ops + mapping["merge_vector_ops"]
            vu_cycles = np.ceil(
                mapping["merge_vector_ops"]
                / np.maximum(arch.vu_lanes_total, 1)
                + layer.vector_ops
                * batch
                / np.maximum(arch.vu_lanes_total * _POINTWISE_SIMD, 1)
            )
            bound_list = [
                mapping["compute_cycles"],
                vu_cycles,
                _to_cycles(
                    mapping["mem_read_bytes"], arch.mem_read_gbps, freq
                ),
                _to_cycles(
                    mapping["mem_write_bytes"], arch.mem_write_gbps, freq
                ),
                _to_cycles(layer_offchip, arch.offchip_gbps, freq),
                _to_cycles(mapping["noc_bytes"], arch.noc_gbps, freq),
            ]
            noc_total = noc_total + mapping["noc_bytes"]
            mem_read_total = mem_read_total + mapping["mem_read_bytes"]
            mem_write_total = mem_write_total + mapping["mem_write_bytes"]
            tu_macs = tu_macs + mapping["useful_macs"]
            occupied_mac_cycles = (
                occupied_mac_cycles + mapping["occupied_mac_cycles"]
            )
        else:
            vu_cycles = np.ceil(
                vector_ops / np.maximum(arch.vu_lanes_total * layer.simd, 1)
            )
            if layer.fusable:
                consumed = np.minimum(vu_cycles, fusion_credit)
                fusion_credit = fusion_credit - consumed
                vu_cycles = vu_cycles - consumed
            reads = (layer.input_bytes + layer.params_bytes) * batch
            writes = layer.output_bytes * batch
            bound_list = [
                vu_cycles,
                _to_cycles(reads, arch.mem_read_gbps, freq),
                _to_cycles(writes, arch.mem_write_gbps, freq),
                _to_cycles(layer_offchip, arch.offchip_gbps, freq),
            ]
            mem_read_total = mem_read_total + reads
            mem_write_total = mem_write_total + writes

        if opt.double_buffering:
            cycles = bound_list[0]
            for bound in bound_list[1:]:
                cycles = np.maximum(cycles, bound)
        else:
            movement = zeros.copy()
            non_compute = (
                bound_list[1:] if layer.has_gemm else bound_list
            )
            for bound in non_compute:
                movement = movement + bound
            compute = bound_list[0] if layer.has_gemm else zeros
            cycles = compute + movement
        if layer.pays_launch:
            cycles = cycles + opt.layer_launch_cycles
        if layer.has_gemm:
            fusion_credit = np.maximum(0.0, cycles - vu_cycles)
        elif not layer.fusable:
            fusion_credit = zeros.copy()
        offchip_total = offchip_total + layer_offchip
        vector_ops_total = vector_ops_total + vector_ops
        total_cycles = total_cycles + np.maximum(cycles, 1.0)

    latency_s = total_cycles / (freq * GIGA)
    total_macs = spec.total_macs * batch
    achieved_tops = np.where(
        latency_s > 0,
        total_macs * OPS_PER_MAC / np.where(latency_s > 0, latency_s, 1.0)
        / 1e12,
        0.0,
    )
    throughput_fps = np.where(
        latency_s > 0,
        batch / np.where(latency_s > 0, latency_s, 1.0),
        0.0,
    )
    utilization = np.where(
        peak_tops > 0,
        achieved_tops / np.where(peak_tops > 0, peak_tops, 1.0),
        0.0,
    )

    cycles_floor = np.maximum(total_cycles, 1.0)
    window = np.maximum(latency_s, 1e-12)
    tu_util = np.minimum(
        tu_macs / (arch.macs_per_cycle * cycles_floor), 1.0
    )
    vu_util = np.minimum(
        vector_ops_total / (arch.vu_lanes_total * cycles_floor), 1.0
    )
    occupancy = np.minimum(
        occupied_mac_cycles / (arch.macs_per_cycle * cycles_floor), 1.0
    )

    return {
        "total_cycles": total_cycles,
        "latency_s": latency_s,
        "latency_ms": latency_s * 1e3,
        "throughput_fps": throughput_fps,
        "achieved_tops": achieved_tops,
        "utilization": utilization,
        "tu_utilization": tu_util,
        "tu_occupancy": np.maximum(occupancy, tu_util),
        "vu_utilization": vu_util,
        "su_activity": np.minimum(0.2 + 0.3 * tu_util, 1.0),
        "mem_read_gbps": mem_read_total / window / GIGA,
        "mem_write_gbps": mem_write_total / window / GIGA,
        "noc_gbps": noc_total / window / GIGA,
        "offchip_gbps": offchip_total / window / GIGA,
    }


# -- runtime power, as arrays --------------------------------------------------


def _map_unique(values: np.ndarray, fn) -> np.ndarray:
    """Evaluate ``fn`` once per unique value and scatter back."""
    out = np.empty(values.shape, dtype=np.float64)
    for value in np.unique(values):
        out[values == value] = fn(float(value))
    return out


def _map_unique_pairs(
    a: np.ndarray, b: np.ndarray, fn
) -> np.ndarray:
    """Evaluate ``fn`` once per unique ``(a, b)`` pair and scatter back."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    out = np.empty(np.broadcast(a, b).shape, dtype=np.float64)
    stacked = np.stack(
        [np.broadcast_to(a, out.shape), np.broadcast_to(b, out.shape)],
        axis=-1,
    )
    for pair in np.unique(stacked.reshape(-1, 2), axis=0):
        mask = (stacked[..., 0] == pair[0]) & (stacked[..., 1] == pair[1])
        out[mask] = fn(float(pair[0]), float(pair[1]))
    return out


class EnergyCoefficients:
    """Per-active-cycle energies of the point-dependent units.

    Each coefficient depends on the design tuple only through one or two
    integers, so the real scalar accessors run once per unique value —
    exactness for free, and a handful of calls per sweep.
    """

    def __init__(self, sub: TechSubstrate):
        self._sub = sub
        core_cfg = sub.template_config.core
        self._tu_cfg = core_cfg.tu
        self._vu_cfg = sub.template_vu_config
        self._shared_ports = core_cfg.vreg_shared_ports
        self._su = None
        if core_cfg.include_scalar_unit:
            from repro.arch.scalar_unit import ScalarUnit

            self._su = ScalarUnit(scale=core_cfg.scalar_unit_scale)

    def per_tu_pj(self, x: np.ndarray) -> np.ndarray:
        ctx = self._sub.ctx

        def build(value: float) -> float:
            cfg = replace(self._tu_cfg, rows=int(value), cols=int(value))
            return TensorUnit(cfg).energy_per_active_cycle_pj(ctx)

        return _map_unique(np.asarray(x, dtype=np.float64), build)

    def per_vu_pj(self, lanes: np.ndarray) -> np.ndarray:
        ctx = self._sub.ctx

        def build(value: float) -> float:
            cfg = replace(self._vu_cfg, lanes=int(value))
            return VectorUnit(cfg).energy_per_active_cycle_pj(ctx)

        return _map_unique(np.asarray(lanes, dtype=np.float64), build)

    def per_vreg_pj(
        self, lanes: np.ndarray, n: np.ndarray
    ) -> np.ndarray:
        ctx = self._sub.ctx
        shared = self._shared_ports

        def build(lane_count: float, tus: float) -> float:
            cfg = VRegConfig(
                vector_lanes=int(lane_count),
                attached_units=int(tus) + 1,
                shared_ports=shared,
            )
            return VectorRegisterFile(cfg).energy_per_active_cycle_pj(ctx)

        return _map_unique_pairs(lanes, n, build)

    def per_su_pj(self) -> float:
        if self._su is None:
            return 0.0
        return self._su.energy_per_active_cycle_pj(self._sub.ctx)


def runtime_power_arrays(
    sub: TechSubstrate,
    arch: ArchArrays,
    grid: Dict[str, np.ndarray],
    coeffs: EnergyCoefficients,
    n: np.ndarray,
    noc_energy_per_byte_pj: np.ndarray,
    activity: Dict[str, np.ndarray],
) -> np.ndarray:
    """``runtime_power(...).total_w`` over arrays of design points.

    Components accumulate in the scalar dict-insertion order (tensor
    units, vector units, VReg, scalar units, Mem, NoC, off-chip), with
    the NoC term present only on multi-core points — the same two float
    summation orders the scalar walk produces.
    """
    freq = sub.freq_ghz
    n = np.asarray(n, dtype=np.float64)
    overhead = calibration.CLOCK_NETWORK_OVERHEAD

    per_tu = coeffs.per_tu_pj(arch.tu_rows)
    count = arch.cores * n
    active = dynamic_power_w(per_tu, freq) * activity["tu_utilization"]
    fill = (
        dynamic_power_w(per_tu, freq)
        * _FILL_ENERGY_FRACTION
        * np.maximum(
            activity["tu_occupancy"] - activity["tu_utilization"], 0.0
        )
    )
    comp_tu = count * (active + fill)

    per_vu = coeffs.per_vu_pj(grid["lanes"])
    comp_vu = (
        arch.cores
        * dynamic_power_w(per_vu, freq)
        * activity["vu_utilization"]
    )

    per_vreg = coeffs.per_vreg_pj(grid["lanes"], n)
    effective_vreg = np.maximum(
        activity["tu_utilization"], activity["vu_utilization"]
    )
    comp_vreg = (
        arch.cores * dynamic_power_w(per_vreg, freq) * effective_vreg
    )

    comp_su = (
        arch.cores
        * dynamic_power_w(coeffs.per_su_pj(), freq)
        * activity["su_activity"]
    )

    block = grid["mem_block_bytes"]
    read_rate_ghz = activity["mem_read_gbps"] / block
    write_rate_ghz = activity["mem_write_gbps"] / block
    comp_mem = (
        read_rate_ghz * grid["mem_read_energy_pj"]
        + write_rate_ghz * grid["mem_write_energy_pj"]
    ) * 1e-3 * overhead

    comp_noc = activity["noc_gbps"] * noc_energy_per_byte_pj * 1e-3

    leakage = grid["leakage_w"].copy()
    interface_w = (
        activity["offchip_gbps"] * sub.mc_energy_per_byte_pj * 1e-3
    )
    device_rated = sub.mc_device_power_w
    if device_rated > 0:
        peak_gbps = max(sub.template_offchip_gbps, 1e-9)
        duty = np.minimum(activity["offchip_gbps"] / peak_gbps, 1.0)
        interface_w = interface_w + device_rated * (
            _DRAM_IDLE_FRACTION + (1.0 - _DRAM_IDLE_FRACTION) * duty
        )
        leakage = leakage - device_rated

    partial = 0.0 + comp_tu + comp_vu + comp_vreg + comp_su + comp_mem
    dynamic = np.where(
        arch.multi,
        (partial + comp_noc) + interface_w,
        partial + interface_w,
    )
    return dynamic + np.maximum(leakage, 0.0)


# -- workload evaluation (the batched ``evaluate_point`` inner loop) -----------


@dataclass(frozen=True)
class BatchOutcome:
    """Arrays for one (batch regime, workload) across all points."""

    workload: str
    batch_spec: object
    batch: np.ndarray
    achieved_tops: np.ndarray
    utilization: np.ndarray
    latency_ms: np.ndarray
    runtime_power_w: np.ndarray

    def regime(self, index: int) -> str:
        """The regime label for one point (mirrors ``evaluate_point``)."""
        if self.batch_spec == "latency-bound":
            return "latency-bound"
        return f"bs={int(self.batch[index])}"


def latency_limited_batch_arrays(
    spec: GraphSpec,
    arch: ArchArrays,
    peak_tops: np.ndarray,
    opt: OptimizationConfig,
    slo_ms: float = DEFAULT_LATENCY_SLO_MS,
    candidates: Tuple[int, ...] = BATCH_CANDIDATES,
) -> np.ndarray:
    """``Simulator.latency_limited_batch`` per point, as an array."""
    shape = np.asarray(arch.tu_rows).shape
    best = np.full(shape, float(candidates[0]), dtype=np.float64)
    for candidate in sorted(candidates):
        result = simulate_graph_arrays(
            spec,
            arch,
            peak_tops,
            np.full(shape, float(candidate), dtype=np.float64),
            opt,
        )
        best = np.where(
            result["latency_ms"] <= slo_ms, float(candidate), best
        )
    return best


def simulate_workloads(
    sub: TechSubstrate,
    grid: Dict[str, np.ndarray],
    x: np.ndarray,
    n: np.ndarray,
    tx: np.ndarray,
    ty: np.ndarray,
    workloads: Sequence[Tuple[str, Graph]],
    batches: Sequence[object],
    latency_slo_ms: float = DEFAULT_LATENCY_SLO_MS,
    opt: Optional[OptimizationConfig] = None,
    specs: Optional[Sequence[Tuple[str, GraphSpec]]] = None,
) -> List[BatchOutcome]:
    """Evaluate every (batch regime, workload) pair over all points.

    The outer loops mirror ``evaluate_point`` exactly — batch regimes
    outer, workloads inner — so the flattened outcome order matches the
    scalar path's ``DesignPointResult.outcomes``.  Callers that already
    flattened their graphs (the estimator's cache-key construction does)
    pass ``specs`` to skip re-deriving them from ``workloads``.
    """
    from repro.batch.kernels import noc_energy_per_byte_kernel

    opt = opt if opt is not None else OptimizationConfig.all_on()
    x = np.asarray(x, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    tx = np.asarray(tx, dtype=np.float64)
    ty = np.asarray(ty, dtype=np.float64)
    cores = tx * ty
    arch = ArchArrays.of(sub, grid, x, n, cores)
    peak_tops = grid["peak_tops"]
    coeffs = EnergyCoefficients(sub)
    noc_epb = noc_energy_per_byte_kernel(sub, tx, ty, grid["core_area_mm2"])

    if specs is None:
        specs = [
            (name, GraphSpec.of(graph, opt)) for name, graph in workloads
        ]
    outcomes: List[BatchOutcome] = []
    for batch_spec in batches:
        for name, spec in specs:
            if batch_spec == "latency-bound":
                batch = latency_limited_batch_arrays(
                    spec, arch, peak_tops, opt, slo_ms=latency_slo_ms
                )
            else:
                batch = np.full(
                    x.shape, float(int(batch_spec)), dtype=np.float64
                )
            result = simulate_graph_arrays(
                spec, arch, peak_tops, batch, opt
            )
            power = runtime_power_arrays(
                sub, arch, grid, coeffs, n, noc_epb, result
            )
            outcomes.append(
                BatchOutcome(
                    workload=name,
                    batch_spec=batch_spec,
                    batch=batch,
                    achieved_tops=result["achieved_tops"],
                    utilization=result["utilization"],
                    latency_ms=result["latency_ms"],
                    runtime_power_w=power,
                )
            )
    return outcomes
