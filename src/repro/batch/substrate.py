"""Point-independent model state hoisted out of the vectorized hot loop.

A Table I sweep varies only ``(X, N, T_x, T_y)``; everything else — the
technology node, the per-MAC circuit scalars, the wire RC parameters, and
whole blocks whose configuration never changes (instruction fetch, scalar
unit, memory controller, PCIe, ICI, DMA) — is fixed for a given
:class:`~repro.arch.component.ModelContext` and *preset family*.
:class:`TechSubstrate` evaluates all of that exactly once, using the
*real* scalar models, so the array kernels in :mod:`repro.batch.kernels`
only have to transcribe the point-dependent closed forms.

Two families are modeled: ``"datacenter"`` (the int8 inference preset of
Table I) and ``"training"`` (the bf16/fp32 TPU-v2-class preset).  Each
family carries its own template chip, MAC curves (the bf16 multiplier and
fp32 adder scalars come straight from :class:`repro.circuit.mac.MacModel`,
which anchors those datatypes natively), and dependent-parameter rules
(lane count, Mem block/capacity scaling).

Because the fixed blocks are evaluated through their own ``estimate()``
methods, their contributions are bit-identical to the scalar walk; only
the point-dependent formulas are re-derived (and covered by the
scalar/vector equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.arch.chip import Chip, ChipConfig
from repro.arch.component import Estimate, ModelContext
from repro.arch.vector_unit import VectorUnitConfig
from repro.circuit.mac import MacModel
from repro.config.presets import (
    datacenter_design_point,
    datacenter_training_point,
)
from repro.errors import ConfigurationError
from repro.tech.node import TechNode
from repro.tech.wire import WireParams, WireType, wire_params
from repro.units import MiB

#: The default preset family (the original vector-backend scope).
DEFAULT_FAMILY = "datacenter"

#: Preset factory per family, probed at the smallest template point.
FAMILY_BUILDERS: Dict[str, Callable[[int, int, int, int], Chip]] = {
    "datacenter": datacenter_design_point,
    "training": datacenter_training_point,
}

#: Dependent-parameter rules the kernels need in closed form.  The probe
#: template fixes every *constant*; these capture how the presets scale
#: the VU lane count and the Mem slice with the TU length ``X`` and the
#: core count: ``lanes = max(lane_mult * X, lane_floor)``,
#: ``block = max(block_mult * X, block_floor)``,
#: ``capacity = max(pool // cores, floor)``.
_FAMILY_RULES: Dict[str, Dict[str, int]] = {
    "datacenter": {
        "lane_mult": 1,
        "lane_floor": 1,
        "block_mult": 1,
        "block_floor": 32,
        "mem_pool_bytes": 32 * MiB,
        "mem_floor_bytes": 64 * 1024,
    },
    "training": {
        "lane_mult": 2,
        "lane_floor": 32,
        "block_mult": 2,
        "block_floor": 64,
        "mem_pool_bytes": 64 * MiB,
        "mem_floor_bytes": 256 * 1024,
    },
}


@dataclass(frozen=True)
class MacScalars:
    """Per-operation scalars of one MAC configuration at a fixed node."""

    energy_per_mac_pj: float
    area_um2: float
    delay_ns: float
    leakage_w: float

    @classmethod
    def from_model(cls, mac: MacModel, tech: TechNode) -> "MacScalars":
        return cls(
            energy_per_mac_pj=mac.energy_per_mac_pj(tech),
            area_um2=mac.area_um2(tech),
            delay_ns=mac.delay_ns(tech),
            leakage_w=mac.leakage_w(tech),
        )


@dataclass(frozen=True)
class BlockScalars:
    """Flattened rollup of one point-independent block's estimate."""

    area_mm2: float
    dynamic_w: float
    leakage_w: float
    cycle_time_ns: float

    @classmethod
    def from_estimate(cls, est: Estimate) -> "BlockScalars":
        return cls(
            area_mm2=est.area_mm2,
            dynamic_w=est.dynamic_w,
            leakage_w=est.leakage_w,
            cycle_time_ns=est.cycle_time_ns,
        )


@dataclass(frozen=True)
class TechSubstrate:
    """Everything the batch kernels need that does not vary per point."""

    ctx: ModelContext
    tech: TechNode
    freq_ghz: float
    cycle_ns: float
    #: the preset family this substrate models.
    family: str
    #: systolic-cell MAC scalars (int8 for datacenter, bf16/fp32 training).
    mac_tensor: MacScalars
    #: vector-lane MAC scalars (the VU's ``MacModel(dtype, dtype)``).
    mac_vector: MacScalars
    wire_local: WireParams
    wire_intermediate: WireParams
    wire_global: WireParams
    #: name -> rollup for IFU / scalar unit / MC / PCIe / ICI / DMA.
    fixed_blocks: Dict[str, BlockScalars]
    #: the probe chip's configuration; kernels read the point-independent
    #: knobs (cell dtype/control gates, FIFO depth, NoC bisection, ...) from
    #: here so preset changes flow into the vector path automatically.
    template_config: ChipConfig
    #: the VU configuration (dtype / SFU gates / pipeline depth; the lane
    #: count is re-derived per point from the lane rule below).
    template_vu_config: VectorUnitConfig
    template_in_bits: int
    template_lsu_queue_entries: int
    template_mem_pool_bytes: int
    template_mem_slice_floor_bytes: int
    template_mem_block_mult: int
    template_mem_block_floor: int
    template_lane_mult: int
    template_lane_floor: int
    template_mem_latency_cycles: int
    template_noc_bisection_gbps: float
    template_offchip_gbps: float
    template_whitespace_fraction: float
    #: memory-controller traffic coefficients (the runtime power model).
    mc_energy_per_byte_pj: float
    mc_device_power_w: float

    @property
    def chip_fixed_blocks(self) -> Tuple[BlockScalars, ...]:
        """Chip-level fixed blocks in `Chip.estimate` child order."""
        return tuple(
            self.fixed_blocks[name]
            for name in _CHIP_FIXED_NAMES
            if name in self.fixed_blocks
        )

    @classmethod
    def build(
        cls, ctx: ModelContext, family: str = DEFAULT_FAMILY
    ) -> "TechSubstrate":
        """Hoist scalars and fixed-block estimates for ``(ctx, family)``.

        The probe chip is the smallest template of the family; the blocks
        harvested from it (IFU, scalar unit, memory controller, PCIe, ICI,
        DMA) are configured identically at every point of the family's
        grid, which is exactly what the vector-path support check
        guarantees.
        """
        builder = FAMILY_BUILDERS.get(family)
        rules = _FAMILY_RULES.get(family)
        if builder is None or rules is None:
            raise ConfigurationError(
                f"unknown vector-backend preset family {family!r}; "
                f"expected one of {sorted(FAMILY_BUILDERS)}"
            )
        template = builder(4, 1, 1, 1)
        tech = ctx.tech
        cell = template.config.core.tu.cell
        mac_tensor = MacScalars.from_model(cell.mac, tech)
        vu_config = template.core.vector_unit.config
        mac_vector = MacScalars.from_model(
            MacModel(vu_config.dtype, vu_config.dtype), tech
        )
        core = template.core
        fixed = {
            "ifu": BlockScalars.from_estimate(core.ifu.estimate(ctx)),
            "scalar_unit": BlockScalars.from_estimate(
                core.scalar_unit.estimate(ctx)
            ),
        }
        mc = template.memory_controller()
        mc_energy_per_byte_pj = 0.0
        mc_device_power_w = 0.0
        if mc is not None:
            fixed["memory_controller"] = BlockScalars.from_estimate(
                mc.estimate(ctx)
            )
            mc_energy_per_byte_pj = mc.energy_per_byte_pj()
            mc_device_power_w = mc.device_power_w()
        if template.config.pcie is not None:
            fixed["pcie"] = BlockScalars.from_estimate(
                template.config.pcie.estimate(ctx)
            )
        if template.config.ici is not None:
            fixed["ici"] = BlockScalars.from_estimate(
                template.config.ici.estimate(ctx)
            )
        if template.config.dma is not None:
            fixed["dma"] = BlockScalars.from_estimate(
                template.config.dma.estimate(ctx)
            )
        return cls(
            ctx=ctx,
            tech=tech,
            freq_ghz=ctx.freq_ghz,
            cycle_ns=ctx.cycle_ns,
            family=family,
            mac_tensor=mac_tensor,
            mac_vector=mac_vector,
            wire_local=wire_params(tech, WireType.LOCAL),
            wire_intermediate=wire_params(tech, WireType.INTERMEDIATE),
            wire_global=wire_params(tech, WireType.GLOBAL),
            fixed_blocks=fixed,
            template_config=template.config,
            template_vu_config=vu_config,
            template_in_bits=cell.input_dtype.bits,
            template_lsu_queue_entries=core.lsu.queue_entries,
            template_mem_pool_bytes=rules["mem_pool_bytes"],
            template_mem_slice_floor_bytes=rules["mem_floor_bytes"],
            template_mem_block_mult=rules["block_mult"],
            template_mem_block_floor=rules["block_floor"],
            template_lane_mult=rules["lane_mult"],
            template_lane_floor=rules["lane_floor"],
            template_mem_latency_cycles=template.config.core.mem.latency_cycles,
            template_noc_bisection_gbps=template.config.noc_bisection_gbps,
            template_offchip_gbps=template.config.offchip_bandwidth_gbps,
            template_whitespace_fraction=template.config.whitespace_fraction,
            mc_energy_per_byte_pj=mc_energy_per_byte_pj,
            mc_device_power_w=mc_device_power_w,
        )


#: Chip-level fixed-block order, mirroring `Chip.estimate` (the ICI entry
#: exists only for families whose template configures one, so the float
#: accumulation order matches the scalar walk for both cases).
_CHIP_FIXED_NAMES: Tuple[str, ...] = (
    "memory_controller",
    "pcie",
    "ici",
    "dma",
)

_SUBSTRATES: Dict[Tuple[ModelContext, str], TechSubstrate] = {}


def substrate_for(
    ctx: ModelContext, family: str = DEFAULT_FAMILY
) -> TechSubstrate:
    """Build (or reuse) the substrate for ``(ctx, family)``.

    Substrates are cached per (context, family): a sweep calls this once
    per family it touches, and repeated sweeps in one process (CLI,
    benchmarks, tests) share the hoisted state.
    """
    key = (ctx, family)
    cached = _SUBSTRATES.get(key)
    if cached is None:
        cached = TechSubstrate.build(ctx, family)
        _SUBSTRATES[key] = cached
    return cached
