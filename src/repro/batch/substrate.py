"""Point-independent model state hoisted out of the vectorized hot loop.

A Table I sweep varies only ``(X, N, T_x, T_y)``; everything else — the
technology node, the per-MAC circuit scalars, the wire RC parameters, and
whole blocks whose configuration never changes (instruction fetch, scalar
unit, memory controller, PCIe, DMA) — is fixed for a given
:class:`~repro.arch.component.ModelContext`.  :class:`TechSubstrate`
evaluates all of that exactly once, using the *real* scalar models, so the
array kernels in :mod:`repro.batch.kernels` only have to transcribe the
point-dependent closed forms.

Because the fixed blocks are evaluated through their own ``estimate()``
methods, their contributions are bit-identical to the scalar walk; only
the point-dependent formulas are re-derived (and covered by the
scalar/vector equivalence suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.component import Estimate, ModelContext
from repro.arch.vector_unit import VectorUnitConfig
from repro.circuit.mac import MacModel
from repro.config.presets import (
    DATACENTER_MEM_CAPACITY_BYTES,
    DATACENTER_MEM_SLICE_FLOOR_BYTES,
    datacenter_design_point,
)
from repro.datatypes import INT32
from repro.tech.node import TechNode
from repro.tech.wire import WireParams, WireType, wire_params


@dataclass(frozen=True)
class MacScalars:
    """Per-operation scalars of one MAC configuration at a fixed node."""

    energy_per_mac_pj: float
    area_um2: float
    delay_ns: float
    leakage_w: float

    @classmethod
    def from_model(cls, mac: MacModel, tech: TechNode) -> "MacScalars":
        return cls(
            energy_per_mac_pj=mac.energy_per_mac_pj(tech),
            area_um2=mac.area_um2(tech),
            delay_ns=mac.delay_ns(tech),
            leakage_w=mac.leakage_w(tech),
        )


@dataclass(frozen=True)
class BlockScalars:
    """Flattened rollup of one point-independent block's estimate."""

    area_mm2: float
    dynamic_w: float
    leakage_w: float
    cycle_time_ns: float

    @classmethod
    def from_estimate(cls, est: Estimate) -> "BlockScalars":
        return cls(
            area_mm2=est.area_mm2,
            dynamic_w=est.dynamic_w,
            leakage_w=est.leakage_w,
            cycle_time_ns=est.cycle_time_ns,
        )


@dataclass(frozen=True)
class TechSubstrate:
    """Everything the batch kernels need that does not vary per point."""

    ctx: ModelContext
    tech: TechNode
    freq_ghz: float
    cycle_ns: float
    #: systolic-cell MAC (INT8 inputs, INT32 accumulate) scalars.
    mac_tensor: MacScalars
    #: vector-lane MAC (INT32 inputs, INT32 accumulate) scalars.
    mac_vector: MacScalars
    wire_local: WireParams
    wire_intermediate: WireParams
    wire_global: WireParams
    #: name -> rollup for IFU / scalar unit / memory controller / PCIe / DMA.
    fixed_blocks: Dict[str, BlockScalars]
    #: the probe chip's configuration; kernels read the point-independent
    #: knobs (cell dtype/control gates, FIFO depth, NoC bisection, ...) from
    #: here so preset changes flow into the vector path automatically.
    template_config: ChipConfig
    #: the auto-scaled VU configuration (dtype / SFU gates / pipeline depth;
    #: the lane count is the swept ``X`` and is ignored).
    template_vu_config: VectorUnitConfig
    template_in_bits: int
    template_lsu_queue_entries: int
    template_mem_pool_bytes: int
    template_mem_slice_floor_bytes: int
    template_mem_latency_cycles: int
    template_noc_bisection_gbps: float
    template_whitespace_fraction: float

    @property
    def chip_fixed_blocks(self) -> Tuple[BlockScalars, ...]:
        """Chip-level fixed blocks: memory controller + PCIe + DMA."""
        return tuple(
            self.fixed_blocks[name]
            for name in _CHIP_FIXED_NAMES
            if name in self.fixed_blocks
        )

    @classmethod
    def build(cls, ctx: ModelContext) -> "TechSubstrate":
        """Hoist scalars and fixed-block estimates for ``ctx``.

        The probe chip is the smallest datacenter template; the blocks
        harvested from it (IFU, scalar unit, memory controller, PCIe,
        DMA) are configured identically at every Table I point, which is
        exactly what the vector-path support check guarantees.
        """
        template = datacenter_design_point(4, 1, 1, 1)
        tech = ctx.tech
        cell = template.config.core.tu.cell
        mac_tensor = MacScalars.from_model(cell.mac, tech)
        mac_vector = MacScalars.from_model(MacModel(INT32, INT32), tech)
        core = template.core
        fixed = {
            "ifu": BlockScalars.from_estimate(core.ifu.estimate(ctx)),
            "scalar_unit": BlockScalars.from_estimate(
                core.scalar_unit.estimate(ctx)
            ),
        }
        mc = template.memory_controller()
        if mc is not None:
            fixed["memory_controller"] = BlockScalars.from_estimate(
                mc.estimate(ctx)
            )
        if template.config.pcie is not None:
            fixed["pcie"] = BlockScalars.from_estimate(
                template.config.pcie.estimate(ctx)
            )
        if template.config.dma is not None:
            fixed["dma"] = BlockScalars.from_estimate(
                template.config.dma.estimate(ctx)
            )
        return cls(
            ctx=ctx,
            tech=tech,
            freq_ghz=ctx.freq_ghz,
            cycle_ns=ctx.cycle_ns,
            mac_tensor=mac_tensor,
            mac_vector=mac_vector,
            wire_local=wire_params(tech, WireType.LOCAL),
            wire_intermediate=wire_params(tech, WireType.INTERMEDIATE),
            wire_global=wire_params(tech, WireType.GLOBAL),
            fixed_blocks=fixed,
            template_config=template.config,
            template_vu_config=core.vector_unit.config,
            template_in_bits=cell.input_dtype.bits,
            template_lsu_queue_entries=core.lsu.queue_entries,
            template_mem_pool_bytes=DATACENTER_MEM_CAPACITY_BYTES,
            template_mem_slice_floor_bytes=DATACENTER_MEM_SLICE_FLOOR_BYTES,
            template_mem_latency_cycles=template.config.core.mem.latency_cycles,
            template_noc_bisection_gbps=template.config.noc_bisection_gbps,
            template_whitespace_fraction=template.config.whitespace_fraction,
        )


_CHIP_FIXED_NAMES: Tuple[str, ...] = ("memory_controller", "pcie", "dma")

_SUBSTRATES: Dict[ModelContext, TechSubstrate] = {}


def substrate_for(ctx: ModelContext) -> TechSubstrate:
    """Build (or reuse) the substrate for ``ctx``.

    Substrates are cached per context: a sweep calls this once, and
    repeated sweeps in one process (CLI, benchmarks, tests) share the
    hoisted state.
    """
    cached = _SUBSTRATES.get(ctx)
    if cached is None:
        cached = TechSubstrate.build(ctx)
        _SUBSTRATES[ctx] = cached
    return cached
