"""Vectorized batch-estimation backend for the DSE hot path.

The scalar model stack evaluates one :class:`~repro.dse.space.DesignPoint`
at a time by walking a tree of component objects.  For the Table I sweep
that walk is pure overhead: every point shares one technology substrate and
differs only in four integers ``(X, N, T_x, T_y)``.  This package evaluates
an entire grid of points as NumPy array operations:

* :mod:`repro.batch.substrate` hoists everything that does not depend on
  the design point — per-MAC scalars, wire parameters, and full estimates
  of the point-independent blocks — into a :class:`TechSubstrate`;
* :mod:`repro.batch.kernels` are array-valued transcriptions of the
  dominant cost contributors (MAC array, SRAM/regfile, DFF banks,
  wire/NoC) returning vectors of ``(area_mm2, power_w, timing_ns)``;
* :mod:`repro.batch.estimator` canonicalizes a sweep into swept axes plus
  shared context, runs the kernels, screens the batched arrays through the
  integrity contracts, and materializes per-point
  :class:`~repro.dse.journal.SummaryResult` rows.

Equivalence with the scalar walk (<= 1e-9 relative) is enforced by
``tests/batch/`` over the full Table I grid.
"""

from repro.batch.estimator import (
    BatchEstimator,
    BatchResult,
    GridAxes,
    supports_vector_path,
)
from repro.batch.substrate import TechSubstrate

__all__ = [
    "BatchEstimator",
    "BatchResult",
    "GridAxes",
    "TechSubstrate",
    "supports_vector_path",
]
