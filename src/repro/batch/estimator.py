"""Batch estimation: whole-sweep evaluation in a handful of array ops.

The scalar path builds a :class:`~repro.arch.chip.Chip` object tree per
design point and walks it; for a Table I sweep that repeats the same
closed-form arithmetic a few hundred times with different ``(X, N, Tx,
Ty)``.  :class:`BatchEstimator` canonicalizes the sweep into parallel
coordinate arrays (:class:`GridAxes`), hoists everything point-independent
into a :class:`~repro.batch.substrate.TechSubstrate`, and evaluates the
whole grid through the NumPy kernels in :mod:`repro.batch.kernels`.

The vector path is *opt-in safe*: :func:`supports_vector_path` proves a
point builds the exact datacenter preset configuration (anything else —
training presets, exotic datatypes, custom ``build()`` overrides — is
reported for scalar fallback), SRAM-search-infeasible points are routed
back to the scalar path so they fail with the same
:class:`~repro.errors.OptimizationError` the scalar model raises, and the
batched outputs pass the same NaN/inf/range screens the component cache
applies (:mod:`repro.integrity.contracts`), vectorized over the grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.arch.component import ModelContext
from repro.config.presets import datacenter_context, datacenter_design_point
from repro.dse.journal import SummaryResult
from repro.dse.space import DesignPoint
from repro.errors import ConfigurationError, NumericalError

try:  # NumPy is the whole point of this package; degrade loudly without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

HAVE_NUMPY = _np is not None

#: Grid fields screened before any point is materialized.
_SCREENED_FIELDS = ("area_mm2", "tdp_w", "peak_tops", "timing_ns")

#: Fallback reason: the point's chip config differs from the datacenter
#: preset shape the kernels transcribe.
UNSUPPORTED_CONFIG = "unsupported-config"
#: Fallback reason: the vectorized SRAM organization search found no
#: feasible organization (scalar path raises OptimizationError).
SRAM_INFEASIBLE = "sram-infeasible"
#: Fallback reason: a batched output failed the NaN/inf/range screen.
SCREEN_FAILED = "screen-failed"


def supports_vector_path(point: DesignPoint) -> bool:
    """True when ``point`` builds the exact datacenter preset config.

    The batch kernels transcribe the datacenter inference preset
    (:func:`~repro.config.presets.datacenter_design_point`): int8
    weight-stationary systolic cells, the 32 MiB shared Mem pool, the
    auto-scaled VU/VReg/LSU, HBM2 + PCIe + DMA periphery.  A point whose
    ``build()`` produces any other configuration (a training preset with
    bf16 cells, a subclass overriding ``build()``, a custom memory pool)
    is not supported and must take the scalar path.

    The check compares frozen config dataclasses, so it is exact: any
    drift between the preset and a custom point — down to a single
    coefficient — disqualifies the vector path rather than silently
    mis-modeling the point.
    """
    if not HAVE_NUMPY:
        return False
    try:
        built = point.build().config
        reference = datacenter_design_point(
            point.x, point.n, point.tx, point.ty
        ).config
    except Exception:
        return False
    return built == reference


@dataclass(frozen=True)
class GridAxes:
    """Canonicalized sweep coordinates: parallel per-point axis tuples."""

    x: Tuple[int, ...]
    n: Tuple[int, ...]
    tx: Tuple[int, ...]
    ty: Tuple[int, ...]

    @classmethod
    def from_points(cls, points: Sequence[DesignPoint]) -> "GridAxes":
        return cls(
            x=tuple(p.x for p in points),
            n=tuple(p.n for p in points),
            tx=tuple(p.tx for p in points),
            ty=tuple(p.ty for p in points),
        )

    def __len__(self) -> int:
        return len(self.x)


@dataclass(frozen=True)
class BatchResult:
    """Per-point outcome of one vectorized batch evaluation.

    ``summaries[i]`` is the materialized result for ``points[i]``, or
    ``None`` when the point must take the scalar path; in that case
    ``fallback_reasons[i]`` names why (:data:`UNSUPPORTED_CONFIG`,
    :data:`SRAM_INFEASIBLE`, or :data:`SCREEN_FAILED`).
    """

    points: Tuple[DesignPoint, ...]
    summaries: Tuple[Optional[SummaryResult], ...]
    fallback_reasons: Dict[int, str] = field(default_factory=dict)

    @property
    def fallback_indices(self) -> Tuple[int, ...]:
        """Indices that must be (re-)evaluated through the scalar path."""
        return tuple(sorted(self.fallback_reasons))

    @property
    def vectorized_count(self) -> int:
        return len(self.points) - len(self.fallback_reasons)


class BatchEstimator:
    """Evaluate many design points against one fixed tech substrate.

    Args:
        ctx: Model context shared by every point; defaults to the Table I
            datacenter context.
        strict_screen: When true, a batched output failing the
            NaN/inf/range screen raises
            :class:`~repro.errors.NumericalError` instead of being
            marked for scalar fallback (``backend="vector"`` semantics;
            SRAM-infeasible points still fall back, because the scalar
            path raises the matching model error for them).
    """

    def __init__(
        self,
        ctx: Optional[ModelContext] = None,
        *,
        strict_screen: bool = False,
    ) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the vector estimation backend requires NumPy; "
                "use backend='scalar'"
            )
        self.ctx = ctx if ctx is not None else datacenter_context()
        self.strict_screen = strict_screen

    def estimate_points(
        self, points: Iterable[DesignPoint]
    ) -> BatchResult:
        """Evaluate ``points``; vectorize what the kernels support.

        Unsupported, infeasible, and screen-failing points come back
        with ``summaries[i] is None`` and a fallback reason — the caller
        (the sweep engine's ``auto``/``vector`` backends) re-evaluates
        them through the scalar path so failure records match the
        scalar backend exactly.
        """
        from repro.batch.kernels import estimate_grid
        from repro.batch.substrate import substrate_for

        resolved = tuple(points)
        reasons: Dict[int, str] = {}
        supported: list = []
        for index, point in zip(itertools.count(), resolved):
            if supports_vector_path(point):
                supported.append(index)
            else:
                reasons[index] = UNSUPPORTED_CONFIG
        summaries: list = [None] * len(resolved)
        if supported:
            axes = GridAxes.from_points([resolved[i] for i in supported])
            sub = substrate_for(self.ctx)
            grid = estimate_grid(
                sub,
                _np.asarray(axes.x, dtype=float),
                _np.asarray(axes.n, dtype=float),
                _np.asarray(axes.tx, dtype=float),
                _np.asarray(axes.ty, dtype=float),
            )
            feasible = _np.asarray(grid["feasible"], dtype=bool)
            clean = self._screen(grid, feasible)
            for i, ok, infeasible_free, area, tdp, peak in zip(
                supported,
                clean,
                feasible,
                grid["area_mm2"],
                grid["tdp_w"],
                grid["peak_tops"],
            ):
                if not infeasible_free:
                    reasons[i] = SRAM_INFEASIBLE
                elif not ok:
                    reasons[i] = SCREEN_FAILED
                else:
                    summaries[i] = SummaryResult(
                        point=resolved[i],
                        area_mm2=float(area),
                        tdp_w=float(tdp),
                        peak_tops=float(peak),
                    )
        return BatchResult(
            points=resolved,
            summaries=tuple(summaries),
            fallback_reasons=reasons,
        )

    def _screen(self, grid: dict, feasible: "_np.ndarray") -> "_np.ndarray":
        """Vectorized NaN/inf/range screen over the batched outputs.

        Mirrors :func:`repro.integrity.contracts.screen_value`: every
        screened field must be finite and non-negative (and the headline
        metrics strictly positive, matching ``validate_result``).
        Infeasible points are exempt — they are NaN-poisoned by design
        and routed to the scalar path for the authentic model error.
        """
        clean = _np.ones(feasible.shape, dtype=bool)
        for name in _SCREENED_FIELDS:
            values = _np.asarray(grid[name], dtype=float)
            ok = _np.isfinite(values)
            if name in ("area_mm2", "tdp_w", "peak_tops"):
                ok &= values > 0.0
            else:
                ok &= values >= 0.0
            bad = feasible & ~ok
            if self.strict_screen and bool(_np.any(bad)):
                index = int(_np.argmax(bad))
                raise NumericalError(
                    f"batch.{name}[{index}]",
                    float(values[index]),
                    "failed the batched numeric screen",
                )
            clean &= ok
        return clean
