"""Batch estimation: whole-sweep evaluation in a handful of array ops.

The scalar path builds a :class:`~repro.arch.chip.Chip` object tree per
design point and walks it; for a Table I sweep that repeats the same
closed-form arithmetic a few hundred times with different ``(X, N, Tx,
Ty)``.  :class:`BatchEstimator` canonicalizes the sweep into parallel
coordinate arrays (:class:`GridAxes`), hoists everything point-independent
into a :class:`~repro.batch.substrate.TechSubstrate`, and evaluates the
whole grid through the NumPy kernels in :mod:`repro.batch.kernels` and
the batched performance layer in :mod:`repro.batch.perf`.

The vector path is *opt-in safe*: :func:`classify_point` proves a point
builds one of the preset family configurations the kernels transcribe
(anything else — exotic datatypes, custom ``build()`` overrides — is
reported for scalar fallback, and a ``build()`` that *raises* is reported
as :data:`BUILD_FAILED` with the original error attached rather than
being misfiled as a config mismatch), and the batched outputs pass the
same NaN/inf/range screens the component cache applies
(:mod:`repro.integrity.contracts`), vectorized over the grid.

Successful batched summaries are written through the process-wide
estimate cache (:mod:`repro.cache`), keyed by (context, family, point
coordinates, workload set, batch regimes), so a warm re-sweep skips the
kernels entirely instead of losing to the scalar path's cached walk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.component import ModelContext
from repro.batch.substrate import FAMILY_BUILDERS, substrate_for
from repro.cache import get_estimate_cache, stable_hash
from repro.config.presets import datacenter_context
from repro.dse.journal import SummaryOutcome, SummaryResult
from repro.dse.space import DesignPoint
from repro.errors import ConfigurationError, NumericalError

try:  # NumPy is the whole point of this package; degrade loudly without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

HAVE_NUMPY = _np is not None

#: Grid fields screened before any point is materialized.
_SCREENED_FIELDS = ("area_mm2", "tdp_w", "peak_tops", "timing_ns")

#: Fallback reason: the point's chip config differs from every preset
#: family shape the kernels transcribe.
UNSUPPORTED_CONFIG = "unsupported-config"
#: Fallback reason: the point's ``build()`` itself raised; the original
#: error is preserved in :attr:`BatchResult.errors` so callers can
#: surface it instead of a misleading "config differs" story.
BUILD_FAILED = "build-failed"
#: Fallback reason: the vectorized SRAM organization search found no
#: feasible organization (scalar path raises OptimizationError).
SRAM_INFEASIBLE = "sram-infeasible"
#: Fallback reason: a batched output failed the NaN/inf/range screen.
SCREEN_FAILED = "screen-failed"

#: Every fallback reason the vector backend can report, for operators'
#: totals (journal rows, ``neurometer report``, the daemon's /status).
FALLBACK_REASONS = (
    UNSUPPORTED_CONFIG,
    BUILD_FAILED,
    SRAM_INFEASIBLE,
    SCREEN_FAILED,
)


def classify_point(
    point: DesignPoint,
) -> Tuple[Optional[str], Optional[BaseException]]:
    """Identify which preset family a point's built config matches.

    Returns ``(family, None)`` when ``point.build()`` produces exactly
    the configuration of one kernel-transcribed preset family
    (``"datacenter"`` or ``"training"``), ``(None, None)`` when it
    builds fine but matches no family (scalar fallback with
    :data:`UNSUPPORTED_CONFIG`), and ``(None, error)`` when ``build()``
    itself raises — the error is returned, not swallowed, so the caller
    can report :data:`BUILD_FAILED` with the authentic cause.

    The family check compares frozen config dataclasses, so it is
    exact: any drift between the preset and a custom point — down to a
    single coefficient — disqualifies the vector path rather than
    silently mis-modeling the point.
    """
    if not HAVE_NUMPY:
        return None, None
    try:
        built = point.build().config
    except Exception as error:
        return None, error
    for family, builder in FAMILY_BUILDERS.items():
        try:
            reference = builder(point.x, point.n, point.tx, point.ty).config
        except Exception:  # pragma: no cover - preset factories are total
            continue
        if built == reference:
            return family, None
    return None, None


def supports_vector_path(point: DesignPoint) -> bool:
    """True when ``point`` builds a kernel-transcribed preset config.

    Back-compat boolean wrapper over :func:`classify_point`; callers that
    need to distinguish a build *failure* from a config mismatch (the
    sweep engine's fallback accounting) use :func:`classify_point`
    directly.
    """
    family, _ = classify_point(point)
    return family is not None


@dataclass(frozen=True)
class GridAxes:
    """Canonicalized sweep coordinates: parallel per-point axis tuples."""

    x: Tuple[int, ...]
    n: Tuple[int, ...]
    tx: Tuple[int, ...]
    ty: Tuple[int, ...]

    @classmethod
    def from_points(cls, points: Sequence[DesignPoint]) -> "GridAxes":
        return cls(
            x=tuple(p.x for p in points),
            n=tuple(p.n for p in points),
            tx=tuple(p.tx for p in points),
            ty=tuple(p.ty for p in points),
        )

    def __len__(self) -> int:
        return len(self.x)


@dataclass(frozen=True)
class BatchResult:
    """Per-point outcome of one vectorized batch evaluation.

    ``summaries[i]`` is the materialized result for ``points[i]``, or
    ``None`` when the point must take the scalar path; in that case
    ``fallback_reasons[i]`` names why (:data:`UNSUPPORTED_CONFIG`,
    :data:`BUILD_FAILED`, :data:`SRAM_INFEASIBLE`, or
    :data:`SCREEN_FAILED`), and for build failures ``errors[i]`` holds
    the original exception ``build()`` raised.
    """

    points: Tuple[DesignPoint, ...]
    summaries: Tuple[Optional[SummaryResult], ...]
    fallback_reasons: Dict[int, str] = field(default_factory=dict)
    errors: Dict[int, BaseException] = field(default_factory=dict)

    @property
    def fallback_indices(self) -> Tuple[int, ...]:
        """Indices that must be (re-)evaluated through the scalar path."""
        return tuple(sorted(self.fallback_reasons))

    @property
    def vectorized_count(self) -> int:
        return len(self.points) - len(self.fallback_reasons)

    def fallback_totals(self) -> Dict[str, int]:
        """Reason -> count over this batch (omits zero-count reasons)."""
        totals: Dict[str, int] = {}
        for reason in self.fallback_reasons.values():
            totals[reason] = totals.get(reason, 0) + 1
        return totals


class BatchEstimator:
    """Evaluate many design points against one fixed tech substrate.

    Args:
        ctx: Model context shared by every point; defaults to the Table I
            datacenter context.
        strict_screen: When true, a batched output failing the
            NaN/inf/range screen raises
            :class:`~repro.errors.NumericalError` instead of being
            marked for scalar fallback (``backend="vector"`` semantics;
            SRAM-infeasible points still fall back, because the scalar
            path raises the matching model error for them).
        use_cache: Consult and populate the process-wide estimate cache
            (:func:`repro.cache.get_estimate_cache`); honored only while
            the cache itself is enabled.
    """

    def __init__(
        self,
        ctx: Optional[ModelContext] = None,
        *,
        strict_screen: bool = False,
        use_cache: bool = True,
    ) -> None:
        if not HAVE_NUMPY:
            raise ConfigurationError(
                "the vector estimation backend requires NumPy; "
                "use backend='scalar'"
            )
        self.ctx = ctx if ctx is not None else datacenter_context()
        self.strict_screen = strict_screen
        self.use_cache = use_cache

    def estimate_points(
        self,
        points: Iterable[DesignPoint],
        *,
        workloads: Sequence[Tuple[str, object]] = (),
        batches: Sequence[object] = (),
        latency_slo_ms: Optional[float] = None,
    ) -> BatchResult:
        """Evaluate ``points``; vectorize what the kernels support.

        With ``workloads``/``batches`` supplied, each summary carries the
        full per-(regime, workload) outcome rows the scalar
        ``evaluate_point`` would produce (including the latency-bound
        batch search when ``"latency-bound"`` appears in ``batches``).

        Unsupported, infeasible, and screen-failing points come back
        with ``summaries[i] is None`` and a fallback reason — the caller
        (the sweep engine's ``auto``/``vector`` backends) re-evaluates
        them through the scalar path so failure records match the
        scalar backend exactly.
        """
        resolved = tuple(points)
        reasons: Dict[int, str] = {}
        errors: Dict[int, BaseException] = {}
        by_family: Dict[str, List[int]] = {}
        for index, point in zip(itertools.count(), resolved):
            family, error = classify_point(point)
            if family is not None:
                by_family.setdefault(family, []).append(index)
            elif error is not None:
                reasons[index] = BUILD_FAILED
                errors[index] = error
            else:
                reasons[index] = UNSUPPORTED_CONFIG
        summaries: List[Optional[SummaryResult]] = [None] * len(resolved)
        workload_list = tuple(workloads)
        batch_list = tuple(batches)
        for family, indices in by_family.items():
            self._estimate_family(
                family,
                resolved,
                indices,
                workload_list,
                batch_list,
                latency_slo_ms,
                summaries,
                reasons,
            )
        return BatchResult(
            points=resolved,
            summaries=tuple(summaries),
            fallback_reasons=reasons,
            errors=errors,
        )

    # -- one preset family --------------------------------------------------

    def _estimate_family(
        self,
        family: str,
        resolved: Tuple[DesignPoint, ...],
        indices: List[int],
        workloads: Tuple[Tuple[str, object], ...],
        batches: Tuple[object, ...],
        latency_slo_ms: Optional[float],
        summaries: List[Optional[SummaryResult]],
        reasons: Dict[int, str],
    ) -> None:
        """Evaluate one family's points; fill ``summaries``/``reasons``.

        Cache-hit points skip the kernels entirely; the misses run
        through one ``estimate_grid`` + ``simulate_workloads`` pass and
        every clean result is written back through the cache.
        """
        from repro.batch.kernels import estimate_grid
        from repro.batch.perf import (
            DEFAULT_LATENCY_SLO_MS,
            GraphSpec,
            simulate_workloads,
        )
        from repro.perf.optimizations import OptimizationConfig

        slo = (
            float(latency_slo_ms)
            if latency_slo_ms is not None
            else DEFAULT_LATENCY_SLO_MS
        )
        opt = OptimizationConfig.all_on()
        specs = [
            (name, GraphSpec.of(graph, opt)) for name, graph in workloads
        ]
        cache = get_estimate_cache() if self.use_cache else None
        if cache is not None and not cache.enabled:
            cache = None
        keys: Dict[int, str] = {}
        misses: List[int] = []
        # The context, workload specs, batch list, and SLO are shared by
        # every point in the family; digest them once instead of
        # re-canonicalizing the (large) graph specs per point.
        shared = (
            stable_hash("batch-shared", self.ctx, family, specs, batches, slo)
            if cache is not None
            else ""
        )
        for index in indices:
            point = resolved[index]
            if cache is None:
                misses.append(index)
                continue
            key = stable_hash(
                "batch-point",
                shared,
                (point.x, point.n, point.tx, point.ty),
            )
            keys[index] = key
            hit, value = cache.get(key)
            if hit and isinstance(value, SummaryResult):
                summaries[index] = value
            else:
                misses.append(index)
        if not misses:
            return

        axes = GridAxes.from_points([resolved[i] for i in misses])
        sub = substrate_for(self.ctx, family)
        x = _np.asarray(axes.x, dtype=float)
        n = _np.asarray(axes.n, dtype=float)
        tx = _np.asarray(axes.tx, dtype=float)
        ty = _np.asarray(axes.ty, dtype=float)
        grid = estimate_grid(sub, x, n, tx, ty)
        feasible = _np.asarray(grid["feasible"], dtype=bool)
        clean = self._screen(grid, feasible)
        outcomes = []
        if specs and bool(_np.any(feasible & clean)):
            outcomes = simulate_workloads(
                sub,
                grid,
                x,
                n,
                tx,
                ty,
                [(name, None) for name, _ in specs],
                batches,
                latency_slo_ms=slo,
                specs=specs,
            )
            clean &= self._screen_outcomes(outcomes, feasible)
        for offset, index, ok, infeasible_free in zip(
            itertools.count(), misses, clean, feasible
        ):
            if not infeasible_free:
                reasons[index] = SRAM_INFEASIBLE
            elif not ok:
                reasons[index] = SCREEN_FAILED
            else:
                summary = SummaryResult(
                    point=resolved[index],
                    area_mm2=float(grid["area_mm2"][offset]),
                    tdp_w=float(grid["tdp_w"][offset]),
                    peak_tops=float(grid["peak_tops"][offset]),
                    outcomes=tuple(
                        SummaryOutcome(
                            workload=oc.workload,
                            batch=int(oc.batch[offset]),
                            regime=oc.regime(offset),
                            achieved_tops=float(oc.achieved_tops[offset]),
                            utilization=float(oc.utilization[offset]),
                            runtime_power_w=float(
                                oc.runtime_power_w[offset]
                            ),
                            latency_ms=float(oc.latency_ms[offset]),
                        )
                        for oc in outcomes
                    ),
                )
                summaries[index] = summary
                if cache is not None:
                    cache.put(keys[index], summary)

    # -- screens ------------------------------------------------------------

    def _screen(self, grid: dict, feasible: "_np.ndarray") -> "_np.ndarray":
        """Vectorized NaN/inf/range screen over the batched outputs.

        Mirrors :func:`repro.integrity.contracts.screen_value`: every
        screened field must be finite and non-negative (and the headline
        metrics strictly positive, matching ``validate_result``).
        Infeasible points are exempt — they are NaN-poisoned by design
        and routed to the scalar path for the authentic model error.
        """
        clean = _np.ones(feasible.shape, dtype=bool)
        for name in _SCREENED_FIELDS:
            values = _np.asarray(grid[name], dtype=float)
            ok = _np.isfinite(values)
            if name in ("area_mm2", "tdp_w", "peak_tops"):
                ok &= values > 0.0
            else:
                ok &= values >= 0.0
            self._raise_if_strict(name, values, feasible & ~ok)
            clean &= ok
        return clean

    def _screen_outcomes(
        self, outcomes: list, feasible: "_np.ndarray"
    ) -> "_np.ndarray":
        """Screen the batched workload outcomes (``validate_result`` set).

        Achieved TOPS and latency must be finite and non-negative,
        utilization a fraction, runtime power strictly positive, batch
        at least one — per point, across every (regime, workload) row.
        """
        clean = _np.ones(feasible.shape, dtype=bool)
        for oc in outcomes:
            checks = (
                ("achieved_tops", oc.achieved_tops, 0.0, None),
                ("utilization", oc.utilization, 0.0, 1.0),
                ("runtime_power_w", oc.runtime_power_w, None, None),
                ("latency_ms", oc.latency_ms, 0.0, None),
                ("batch", oc.batch, 1.0, None),
            )
            for name, values, lo, hi in checks:
                values = _np.asarray(values, dtype=float)
                ok = _np.isfinite(values)
                if name == "runtime_power_w":
                    ok &= values > 0.0
                elif lo is not None:
                    ok &= values >= lo
                if hi is not None:
                    ok &= values <= hi
                self._raise_if_strict(
                    f"{oc.workload}.{name}", values, feasible & ~ok
                )
                clean &= ok
        return clean

    def _raise_if_strict(
        self, name: str, values: "_np.ndarray", bad: "_np.ndarray"
    ) -> None:
        if self.strict_screen and bool(_np.any(bad)):
            index = int(_np.argmax(bad))
            raise NumericalError(
                f"batch.{name}[{index}]",
                float(values[index]),
                "failed the batched numeric screen",
            )
