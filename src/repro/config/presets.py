"""Preset accelerator configurations.

The three validation chips use the exact architecture parameters the paper
lists under Figs. 3-5; the datacenter factory builds the ``(X, N, Tx, Ty)``
design points of Table I with all dependent parameters auto-scaled.
"""

from __future__ import annotations

from repro.arch.chip import Chip, ChipConfig
from repro.arch.component import ModelContext
from repro.arch.core import CoreConfig
from repro.arch.memory import OnChipMemoryConfig
from repro.arch.periph import DramKind, InterChipInterconnect, PcieInterface
from repro.arch.tensor_unit import (
    Dataflow,
    InterconnectKind,
    SystolicCellConfig,
    TensorUnitConfig,
)
from repro.arch.vector_unit import VectorUnitConfig
from repro.datatypes import BF16, FP32, INT8, INT16
from repro.errors import ConfigurationError
from repro.tech.node import node
from repro.units import MiB

#: Table I datacenter constraints.
DATACENTER_TECH_NM = 28
DATACENTER_FREQ_GHZ = 0.70
DATACENTER_MEM_CAPACITY_BYTES = 32 * MiB
DATACENTER_NOC_BISECTION_GBPS = 256.0
DATACENTER_OFFCHIP_GBPS = 700.0
DATACENTER_AREA_BUDGET_MM2 = 500.0
DATACENTER_POWER_BUDGET_W = 300.0
DATACENTER_TOPS_CAP = 92.0

#: Smallest per-core Mem slice when the 32 MiB pool is split across cores.
DATACENTER_MEM_SLICE_FLOOR_BYTES = 64 * 1024


# -- TPU-v1 (Fig. 3): 28 nm, 700 MHz, 0.86 V -----------------------------------


def tpu_v1() -> Chip:
    """TPU-v1: 256x256 int8 systolic array, 24 MB UB, 4 MB accumulators."""
    tu = TensorUnitConfig(
        rows=256,
        cols=256,
        cell=SystolicCellConfig(input_dtype=INT8),
        interconnect=InterconnectKind.UNICAST,
        dataflow=Dataflow.WEIGHT_STATIONARY,
    )
    unified_buffer = OnChipMemoryConfig(
        capacity_bytes=24 * MiB,
        block_bytes=256,
        min_banks=2,
        latency_cycles=4,
    )
    accumulator_buffer = OnChipMemoryConfig(
        capacity_bytes=4 * MiB,
        block_bytes=1024,
        min_banks=4,
        read_bandwidth_gbps=1024 * 0.7,
        write_bandwidth_gbps=1024 * 0.7,
        latency_cycles=4,
    )
    weight_fifo = OnChipMemoryConfig(
        capacity_bytes=256 * 1024,
        block_bytes=256,
        read_bandwidth_gbps=256 * 0.7,
        latency_cycles=2,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=1,
        # The activation pipeline: 256 lanes with deep piecewise-function
        # hardware (activation, pooling, normalization).
        vu=VectorUnitConfig(
            lanes=256, dtype=INT16, sfu_gates=25_000, pipeline_depth=12
        ),
        mem=unified_buffer,
        extra_memories=(
            ("accumulator buffer", accumulator_buffer),
            ("weight fifo", weight_fifo),
        ),
        include_scalar_unit=True,
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=1,
            cores_y=1,
            dram=DramKind.DDR3,
            offchip_bandwidth_gbps=30.0,
            pcie=PcieInterface(lanes=16, generation=3),
            ici=None,
            # 21% unknown blocks + 5% unmodeled host/ctrl/misc (Sec. II-C).
            whitespace_fraction=0.26,
        )
    )


def tpu_v1_context() -> ModelContext:
    """28 nm at the published 0.86 V supply, 700 MHz target clock."""
    return ModelContext(tech=node(28).at_voltage(0.86), freq_ghz=0.70)


# -- TPU-v2 (Fig. 4): assumed 16 nm, 700 MHz, 0.75 V ---------------------------


def tpu_v2() -> Chip:
    """TPU-v2: dual cores, 128x128 bf16/fp32 MXU + 8 MB VMem per core."""
    tu = TensorUnitConfig(
        rows=128,
        cols=128,
        cell=SystolicCellConfig(input_dtype=BF16, accum_dtype=FP32),
        interconnect=InterconnectKind.UNICAST,
        dataflow=Dataflow.WEIGHT_STATIONARY,
    )
    vmem = OnChipMemoryConfig(
        capacity_bytes=8 * MiB,
        block_bytes=128,
        min_banks=4,
        read_bandwidth_gbps=2 * 128 * 0.7,
        write_bandwidth_gbps=128 * 0.7,
        latency_cycles=4,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=1,
        # TPU-v2's vector processing unit: 128x8 fp32 lanes per core.
        vu=VectorUnitConfig(
            lanes=1024, dtype=FP32, sfu_gates=6_000, pipeline_depth=6
        ),
        mem=vmem,
        include_scalar_unit=True,
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=2,
            cores_y=1,
            noc_bisection_gbps=256.0,
            dram=DramKind.HBM,
            offchip_bandwidth_gbps=600.0,
            pcie=PcieInterface(lanes=16, generation=3),
            ici=InterChipInterconnect(links=4, link_gbit_per_dir=496.0),
            # 21% unknown blocks (transpose/RPU/misc fall inside them).
            whitespace_fraction=0.21,
        )
    )


def tpu_v2_context() -> ModelContext:
    """Assumed 16 nm at the published 0.75 V supply, 700 MHz target clock."""
    return ModelContext(tech=node(16).at_voltage(0.75), freq_ghz=0.70)


# -- Eyeriss (Fig. 5): 65 nm, 200 MHz, 1.0 V -----------------------------------


def eyeriss() -> Chip:
    """Eyeriss-v1: 14x12 multicast PE array, 108 KB global buffer."""
    tu = TensorUnitConfig(
        rows=14,
        cols=12,
        cell=SystolicCellConfig(
            input_dtype=INT16,
            spad_bytes=448,
            reg_bytes=72,
            control_gates=2_000,
        ),
        interconnect=InterconnectKind.MULTICAST,
        fifo_depth=16,
    )
    global_buffer = OnChipMemoryConfig(
        capacity_bytes=108 * 1024,
        block_bytes=8,
        min_banks=27,
        unified=False,
        read_bandwidth_gbps=27 * 8 * 0.2,
        write_bandwidth_gbps=27 * 8 * 0.2,
        latency_cycles=2,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=1,
        # Run-length codec + ReLU path modeled as a narrow vector unit.
        vu=VectorUnitConfig(lanes=4, dtype=INT16),
        mem=global_buffer,
        include_scalar_unit=True,  # top-level control + config scan chain
        scalar_unit_scale=0.25,  # a bare controller, not an A9-class core
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=1,
            cores_y=1,
            dram=None,  # chip I/O pads are unmodeled, as in the paper
            pcie=None,
            ici=None,
            whitespace_fraction=0.08,
        )
    )


def eyeriss_context() -> ModelContext:
    """65 nm at 1.0 V, 200 MHz target clock."""
    return ModelContext(tech=node(65).at_voltage(1.0), freq_ghz=0.20)


# -- Table I datacenter design points ------------------------------------------


def datacenter_design_point(
    tu_length: int,
    tus_per_core: int,
    cores_x: int,
    cores_y: int,
    mem_capacity_bytes: int = DATACENTER_MEM_CAPACITY_BYTES,
) -> Chip:
    """Build the ``(X, N, Tx, Ty)`` datacenter inference chip of Table I.

    The 32 MB on-chip memory is distributed evenly across cores, the NoC is
    a ring up to 4 cores and a 2D mesh from 8 (resolved by ``ChipConfig``),
    and every dependent parameter (VU lanes, VReg ports, Mem bandwidth)
    auto-scales from ``X`` and ``N``.
    """
    if tu_length < 1:
        raise ConfigurationError("TU length must be positive")
    cores = cores_x * cores_y
    if cores < 1:
        raise ConfigurationError("need at least one core")
    tu = TensorUnitConfig(
        rows=tu_length,
        cols=tu_length,
        cell=SystolicCellConfig(input_dtype=INT8),
        interconnect=InterconnectKind.UNICAST,
        dataflow=Dataflow.WEIGHT_STATIONARY,
    )
    slice_bytes = max(
        mem_capacity_bytes // cores, DATACENTER_MEM_SLICE_FLOOR_BYTES
    )
    mem = OnChipMemoryConfig(
        capacity_bytes=slice_bytes,
        block_bytes=max(tu_length, 32),
        latency_cycles=4,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=tus_per_core,
        mem=mem,
        include_scalar_unit=True,
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=cores_x,
            cores_y=cores_y,
            noc_bisection_gbps=DATACENTER_NOC_BISECTION_GBPS,
            dram=DramKind.HBM2,
            offchip_bandwidth_gbps=DATACENTER_OFFCHIP_GBPS,
            pcie=PcieInterface(lanes=16, generation=3),
            ici=None,
        )
    )


def datacenter_context() -> ModelContext:
    """Table I: 28 nm, 700 MHz."""
    return ModelContext(
        tech=node(DATACENTER_TECH_NM), freq_ghz=DATACENTER_FREQ_GHZ
    )


# -- training accelerators (the paper's declared future work) -------------------


def datacenter_training_point(
    tu_length: int,
    tus_per_core: int,
    cores_x: int,
    cores_y: int,
) -> Chip:
    """A TPU-v2-class *training* design point.

    Same ``(X, N, Tx, Ty)`` structure as the inference space but with
    bf16 multipliers accumulating in fp32, a larger fp32-capable vector
    unit, more on-chip memory per core, doubled HBM bandwidth, and ICI
    links for pod-scale training.
    """
    if tu_length < 1:
        raise ConfigurationError("TU length must be positive")
    cores = cores_x * cores_y
    if cores < 1:
        raise ConfigurationError("need at least one core")
    tu = TensorUnitConfig(
        rows=tu_length,
        cols=tu_length,
        cell=SystolicCellConfig(input_dtype=BF16, accum_dtype=FP32),
        interconnect=InterconnectKind.UNICAST,
        dataflow=Dataflow.WEIGHT_STATIONARY,
    )
    mem = OnChipMemoryConfig(
        capacity_bytes=max((64 * MiB) // cores, 256 * 1024),
        block_bytes=max(tu_length * 2, 64),
        latency_cycles=4,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=tus_per_core,
        vu=VectorUnitConfig(
            lanes=max(tu_length * 2, 32), dtype=FP32, sfu_gates=6_000
        ),
        mem=mem,
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=cores_x,
            cores_y=cores_y,
            noc_bisection_gbps=2 * DATACENTER_NOC_BISECTION_GBPS,
            dram=DramKind.HBM2,
            offchip_bandwidth_gbps=2 * DATACENTER_OFFCHIP_GBPS,
            pcie=PcieInterface(lanes=16, generation=3),
            ici=InterChipInterconnect(links=4, link_gbit_per_dir=496.0),
        )
    )


def training_context() -> ModelContext:
    """Training chips assume the TPU-v2-era 16 nm node at 700 MHz."""
    return ModelContext(tech=node(16), freq_ghz=0.70)
