"""User-facing configuration: presets for validated chips and design points.

``repro.config.presets`` provides the three validation targets of Sec. II-C
(TPU-v1, TPU-v2, Eyeriss) plus the datacenter design-point factory of
Sec. III (the ``(X, N, T_x, T_y)`` tuples of Table I).
"""

from repro.config.presets import (
    DATACENTER_FREQ_GHZ,
    DATACENTER_TECH_NM,
    datacenter_context,
    datacenter_design_point,
    datacenter_training_point,
    eyeriss,
    eyeriss_context,
    tpu_v1,
    tpu_v1_context,
    tpu_v2,
    tpu_v2_context,
    training_context,
)

__all__ = [
    "DATACENTER_FREQ_GHZ",
    "DATACENTER_TECH_NM",
    "datacenter_context",
    "datacenter_design_point",
    "datacenter_training_point",
    "eyeriss",
    "eyeriss_context",
    "tpu_v1",
    "tpu_v1_context",
    "tpu_v2",
    "tpu_v2_context",
    "training_context",
]
