"""Command-line interface.

Drives the most common flows without writing Python::

    neurometer report --point 64,2,2,4            # model one design point
    neurometer validate                           # Figs. 3-5 validation
    neurometer simulate --workload resnet --batch 8 --point 64,2,2,4
    neurometer dse --batch 1                      # Sec. III key points
    neurometer dse --full-grid --write-manifest m.json --shards 3
    neurometer dse --manifest m.json --shard 1/3  # crash-safe shard worker
    neurometer merge --manifest m.json            # verified shard merge
    neurometer sparsity                           # Fig. 11 table
    neurometer doctor                             # integrity self-check
    neurometer lint src --baseline lint_baseline.json   # static analysis

(Equivalently: ``python -m repro <command> ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.arch.component import ModelContext
from repro.config.presets import (
    eyeriss,
    eyeriss_context,
    tpu_v1,
    tpu_v1_context,
    tpu_v2,
    tpu_v2_context,
)
from repro.dse.engine import run_sweep
from repro.dse.space import DesignPoint
from repro.dse.sparsity_study import STUDY_ARCHITECTURES, sparsity_sweep
from repro.errors import NeuroMeterError
from repro.perf.simulator import Simulator
from repro.power.runtime import runtime_power
from repro.report.tables import (
    breakdown_table,
    comparison_table,
    format_table,
)
from repro.tech.node import node
from repro.validation.published import EYERISS, TPU_V1, TPU_V2
from repro.workloads import inception_v3, nasnet_a_large, resnet50

_WORKLOADS = {
    "resnet": resnet50,
    "inception": inception_v3,
    "nasnet": nasnet_a_large,
}

_PRESETS = {
    "tpu-v1": (tpu_v1, tpu_v1_context, TPU_V1),
    "tpu-v2": (tpu_v2, tpu_v2_context, TPU_V2),
    "eyeriss": (eyeriss, eyeriss_context, EYERISS),
}


def _parse_point(text: str) -> DesignPoint:
    try:
        x, n, tx, ty = (int(part) for part in text.split(","))
    except ValueError as error:
        raise NeuroMeterError(
            f"design point must look like '64,2,2,4', got {text!r}"
        ) from error
    return DesignPoint(x, n, tx, ty)


def _context(args: argparse.Namespace) -> ModelContext:
    return ModelContext(tech=node(args.node), freq_ghz=args.freq)


def _add_context_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--node", type=float, default=28, help="technology node in nm"
    )
    parser.add_argument(
        "--freq", type=float, default=0.7, help="clock rate in GHz"
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Robust-execution flags shared by the sweep-backed subcommands."""
    parser.add_argument(
        "--backend",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="estimation backend: 'vector' evaluates the sweep through "
        "the NumPy batch kernels, 'scalar' walks the object model per "
        "point, 'auto' (default) vectorizes supported shapes and falls "
        "back to scalar per point otherwise",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for point evaluation (default 1)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        dest="chunk_size",
        metavar="K",
        help="points dispatched per worker chunk (default: auto, "
        "about four chunks per worker)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        dest="timeout_s",
        metavar="SECONDS",
        help="per-point wall-clock budget; a hung point is killed "
        "and recorded as a timeout failure",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint journal; every finished point is "
        "appended so an interrupted sweep can be resumed",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already finished in --journal and "
        "rehydrate their results",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="record per-point failures and continue instead of "
        "aborting on the first one",
    )
    _add_cache_arguments(parser)


def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
    """Surrogate-search flags shared by dse and optimize."""
    parser.add_argument(
        "--strategy",
        choices=["exhaustive", "surrogate"],
        default="exhaustive",
        help="candidate selection: 'exhaustive' evaluates every point, "
        "'surrogate' trains a learned cost model on the exact rows and "
        "spends --eval-budget exact evaluations where the model points "
        "(every reported number still comes from the exact model; see "
        "docs/dse_surrogate.md)",
    )
    parser.add_argument(
        "--eval-budget",
        type=int,
        default=None,
        dest="eval_budget",
        metavar="N",
        help="exact-evaluation cap for --strategy surrogate (default: "
        "a quarter of the candidate count)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="search seed (default: $NEUROMETER_SEED, then 0); the "
        "same seed over the same journals reproduces the same "
        "proposals bit-for-bit",
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the estimate memoization cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persist cached estimates under PATH (keyed by package "
        "version) so later runs start warm",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        dest="cache_stats",
        help="print estimate-cache hit/miss/eviction counters after "
        "the run",
    )


def _apply_cache_flags(args: argparse.Namespace) -> None:
    from repro.cache.store import configure_estimate_cache

    if args.no_cache:
        configure_estimate_cache(enabled=False)
    if args.cache_dir:
        configure_estimate_cache(disk_path=args.cache_dir)


def _cache_stats_table(counters: dict) -> str:
    from repro.cache.store import get_estimate_cache

    cache = get_estimate_cache()
    rows = [
        [name, str(counters.get(name, 0))]
        for name in ("hits", "misses", "evictions", "stores", "disk_hits")
    ]
    lookups = counters.get("hits", 0) + counters.get("misses", 0)
    rate = counters.get("hits", 0) / lookups if lookups else 0.0
    rows.append(["hit rate", f"{rate:.1%}"])
    rows.append(["entries resident", str(len(cache))])
    return format_table(["cache counter", "value"], rows)


def _print_cache_stats(args: argparse.Namespace, counters: dict) -> None:
    if getattr(args, "cache_stats", False):
        print(file=sys.stderr)
        print(_cache_stats_table(counters), file=sys.stderr)


def _resolve_cli_seed(explicit) -> int:
    """One seed for every stochastic subsystem: flag, then env, then 0."""
    from repro.dse.seeding import resolve_seed

    return resolve_seed(explicit)


def _engine_options(args: argparse.Namespace) -> dict:
    if args.resume and not args.journal:
        raise NeuroMeterError("--resume requires --journal PATH")
    return {
        "backend": args.backend,
        "jobs": args.jobs,
        "timeout_s": args.timeout_s,
        "chunk_size": args.chunk_size,
        "journal_path": args.journal,
        "resume": args.resume,
    }


def _print_failures(failures, *, label: str = "failed points") -> None:
    if not failures:
        return
    print(f"\n{label} ({len(failures)}):", file=sys.stderr)
    for failure in failures:
        print(f"  {failure.describe()}", file=sys.stderr)


def _print_fallback_totals(totals: dict) -> None:
    """Surface vector-backend fallbacks so 'auto' routing stays visible."""
    if not totals:
        return
    parts = ", ".join(
        f"{reason}: {count}" for reason, count in sorted(totals.items())
    )
    print(f"\nvector-backend fallbacks: {parts}", file=sys.stderr)


def _remote_client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(args.remote)


def _cmd_report(args: argparse.Namespace) -> int:
    point = _parse_point(args.point)
    if getattr(args, "remote", None):
        payload = _remote_client(args).estimate(
            [point.x, point.n, point.tx, point.ty],
            node=args.node,
            freq=args.freq,
        )
        metrics = payload["metrics"]
        print(
            f"{point.label()} (remote): "
            f"{metrics['peak_tops']:.1f} peak TOPS, "
            f"{metrics['area_mm2']:.1f} mm^2, "
            f"{metrics['tdp_w']:.1f} W TDP"
        )
        if payload.get("degraded"):
            print("note: served degraded (peak-only)", file=sys.stderr)
        return 0
    chip = point.build()
    ctx = _context(args)
    estimate = chip.estimate(ctx)
    print(
        f"{point.label()} @ {ctx.tech.name} / {ctx.freq_ghz:.2f} GHz: "
        f"{chip.peak_tops(ctx):.1f} peak TOPS, "
        f"{estimate.area_mm2:.1f} mm^2, {chip.tdp_w(ctx):.1f} W TDP"
    )
    print()
    print(breakdown_table(estimate, depth=args.depth))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    names = [args.chip] if args.chip != "all" else list(_PRESETS)
    failures = 0
    for name in names:
        chip_fn, ctx_fn, published = _PRESETS[name]
        chip, ctx = chip_fn(), ctx_fn()
        estimate = chip.estimate(ctx)
        modeled = {"area (mm^2)": estimate.area_mm2}
        reference = {"area (mm^2)": published.area_mm2}
        if published.tdp_w is not None:
            modeled["TDP (W)"] = chip.tdp_w(ctx)
            reference["TDP (W)"] = published.tdp_w
        print(comparison_table(f"== {published.name}", modeled, reference))
        area_error = abs(
            estimate.area_mm2 - published.area_mm2
        ) / published.area_mm2
        if area_error > 0.17:
            failures += 1
        print()
    return 1 if failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    point = _parse_point(args.point)
    chip = point.build()
    ctx = _context(args)
    graph = _WORKLOADS[args.workload]()
    result = Simulator(chip, ctx).run(graph, args.batch)
    power = runtime_power(chip, ctx, result.activity)
    print(
        f"{graph.name} x{args.batch} on {point.label()} "
        f"@ {ctx.tech.name}/{ctx.freq_ghz:.2f} GHz"
    )
    rows = [
        ["latency", f"{result.latency_ms:.2f} ms"],
        ["throughput", f"{result.throughput_fps:.0f} fps"],
        ["achieved", f"{result.achieved_tops:.2f} TOPS"],
        ["peak", f"{result.peak_tops:.2f} TOPS"],
        ["TU utilization", f"{result.utilization:.1%}"],
        ["runtime power", f"{power.total_w:.1f} W"],
        [
            "energy efficiency",
            f"{result.achieved_tops / power.total_w:.3f} TOPS/W",
        ],
    ]
    print(format_table(["metric", "value"], rows))
    if args.bounds:
        from repro.perf.bound_analysis import bound_report

        print()
        print(bound_report(result, top=args.bounds))
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """Parse a 1-based ``i/n`` shard spec into ``(index, count)``."""
    try:
        raw_index, raw_count = str(text).split("/")
        index, count = int(raw_index), int(raw_count)
    except (TypeError, ValueError) as error:
        raise NeuroMeterError(
            f"--shard takes a 1-based 'i/n' spec (e.g. 2/3), got {text!r}"
        ) from error
    if count < 1 or not 1 <= index <= count:
        raise NeuroMeterError(
            f"shard spec out of range: {index}/{count}"
        )
    return index - 1, count


def _shard_journal_dir(args: argparse.Namespace) -> str:
    """Shard journals default to the manifest's own directory."""
    if getattr(args, "journal_dir", None):
        return args.journal_dir
    return os.path.dirname(os.path.abspath(args.manifest)) or "."


def _dse_write_manifest(args: argparse.Namespace, points) -> int:
    from repro.dse.shard import build_manifest

    manifest = build_manifest(
        points,
        args.shards,
        workloads=list(_WORKLOADS),
        batches=[args.batch],
    )
    path = manifest.write(args.write_manifest)
    print(
        f"wrote manifest {path}: {len(points)} point(s) in "
        f"{args.shards} shard(s), sweep digest {manifest.sweep_digest}"
    )
    return 0


def _dse_run_shard(args: argparse.Namespace) -> int:
    from repro.dse.shard import ShardManifest, run_shard

    index, count = _parse_shard(args.shard)
    manifest = ShardManifest.load(args.manifest)
    if count != manifest.shard_count:
        raise NeuroMeterError(
            f"--shard says {count} shard(s) but the manifest has "
            f"{manifest.shard_count}; re-check which manifest this "
            "worker was pointed at"
        )
    if args.journal or args.resume:
        raise NeuroMeterError(
            "--journal/--resume do not combine with --manifest: shard "
            "journals are named by the manifest and always resume"
        )
    _apply_cache_flags(args)
    journal_dir = _shard_journal_dir(args)
    report = run_shard(
        manifest,
        index,
        journal_dir,
        backend=args.backend,
        jobs=args.jobs,
        timeout_s=args.timeout_s,
        chunk_size=args.chunk_size,
        stale_after_s=args.stale_after_s,
    )
    print(f"shard {index + 1}/{count}: {report.summary()}")
    _print_failures(report.failures)
    _print_fallback_totals(report.fallback_totals())
    _print_cache_stats(args, report.cache_totals())
    if report.cancelled:
        print("error: shard run was cancelled before finishing",
              file=sys.stderr)
        return 2
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Merge shard journals into one verified report (see _cmd_dse)."""
    from repro.dse.shard import merge_journals, shard_status, ShardManifest

    manifest = ShardManifest.load(args.manifest)
    journal_dir = _shard_journal_dir(args)
    # Divergent duplicates (InvariantViolation) and digest mismatches
    # (ConfigurationError) propagate to main() -> exit 2.
    outcome = merge_journals(
        manifest, journal_dir, salvage=not args.strict
    )
    rows = [
        [str(row["shard"]), row["state"], str(row["finished"]),
         str(row["expected"])]
        for row in shard_status(manifest, journal_dir)
    ]
    print(format_table(["shard", "state", "finished", "expected"], rows),
          file=sys.stderr)
    print(outcome.summary())
    if args.output:
        _write_merged_journal(manifest, outcome, args.output)
        print(f"wrote merged journal {args.output}")
    if outcome.missing:
        shown = ", ".join(p.label() for p in outcome.missing[:8])
        more = len(outcome.missing) - 8
        suffix = f" (+{more} more)" if more > 0 else ""
        print(
            f"error: {len(outcome.missing)} manifest point(s) have no "
            f"journaled result: {shown}{suffix}; re-run the incomplete "
            "shards against the manifest",
            file=sys.stderr,
        )
        return 2
    return 0


def _write_merged_journal(manifest, outcome, path: str) -> None:
    """Re-journal the merged records as one resumable JSONL file."""
    from repro.dse.journal import Journal, JournalEntry

    meta = {"sweep_digest": manifest.sweep_digest, "merged": True}
    with Journal(path, meta=meta) as journal:
        for record in outcome.report.records:
            journal.append(JournalEntry(
                point=record.point,
                status=record.status,
                attempt=record.attempt,
                wall_time_s=record.wall_time_s,
                metrics=record.metrics,
                failure=(
                    record.failure.to_dict()
                    if record.failure is not None else None
                ),
                cache=record.cache,
                fallback=record.fallback,
            ))


def _cmd_dse(args: argparse.Namespace) -> int:
    points = [
        DesignPoint(8, 4, 4, 8),
        DesignPoint(16, 4, 4, 4),
        DesignPoint(32, 4, 2, 2),
        DesignPoint(64, 4, 1, 2),
        DesignPoint(64, 2, 2, 4),
        DesignPoint(128, 4, 1, 1),
        DesignPoint(256, 1, 1, 1),
    ]
    if args.full_grid:
        from repro.dse.space import full_grid

        points = full_grid()
    if args.point:
        points = [_parse_point(text) for text in args.point]
    if args.write_manifest:
        return _dse_write_manifest(args, points)
    if args.shard and not args.manifest:
        raise NeuroMeterError("--shard requires --manifest PATH")
    if args.manifest:
        if not args.shard:
            raise NeuroMeterError(
                "--manifest requires --shard i/n (which slice of the "
                "manifest this worker should claim)"
            )
        return _dse_run_shard(args)
    if getattr(args, "remote", None):
        return _remote_dse(args, points)
    if args.strategy == "surrogate":
        return _dse_surrogate(args, points)
    workloads = [(name, fn()) for name, fn in _WORKLOADS.items()]
    _apply_cache_flags(args)
    report = run_sweep(
        points,
        workloads,
        [args.batch],
        strict=not args.keep_going,
        **_engine_options(args),
    )
    regime = f"bs={args.batch}"
    rows = []
    for record in report.records:
        result = record.result
        if result is None:
            continue
        if any(o.regime == regime for o in result.outcomes):
            runtime = [
                f"{result.mean_achieved_tops(args.batch):.1f}",
                f"{result.mean_utilization(args.batch):.2f}",
                f"{result.mean_energy_efficiency(args.batch):.3f}",
                f"{result.mean_cost_efficiency(args.batch) * 1e6:.2f}",
            ]
        else:
            # Degraded (peak-only) row salvaged by the engine's retry.
            runtime = ["-", "-", "-", "-"]
        rows.append(
            [
                record.point.label(),
                f"{result.area_mm2:.0f}",
                f"{result.tdp_w:.0f}",
                f"{result.peak_tops:.1f}",
            ]
            + runtime
        )
    print(
        format_table(
            [
                "(X,N,Tx,Ty)",
                "mm^2",
                "TDP W",
                "peak",
                "achieved",
                "util",
                "TOPS/W",
                "TOPS/TCO*1e6",
            ],
            rows,
        )
    )
    _print_failures(report.failures)
    _print_failures(
        [r.failure for r in report.degraded if r.failure is not None],
        label="degraded points (peak-only rows)",
    )
    _print_fallback_totals(report.fallback_totals())
    _print_cache_stats(args, report.cache_totals())
    if not rows:
        print("error: every design point failed", file=sys.stderr)
        return 2
    return 0


def _dse_surrogate(args: argparse.Namespace, points) -> int:
    """Budgeted surrogate search printing the exact-verified frontier."""
    from repro.dse.space import SpaceAxes
    from repro.dse.surrogate.search import surrogate_search

    _apply_cache_flags(args)
    options = _engine_options(args)
    options.pop("chunk_size", None)  # the search batches its own rounds
    workloads = [(name, fn()) for name, fn in _WORKLOADS.items()]
    if args.expanded_space:
        axes = SpaceAxes.expanded()
        budget = args.eval_budget if args.eval_budget is not None else 64
        mode: dict = {"axes": axes}
        print(
            f"searching the expanded space ({axes.size:,} points) "
            f"with {budget} exact evaluations",
            file=sys.stderr,
        )
    else:
        budget = (
            args.eval_budget
            if args.eval_budget is not None
            else max(8, len(points) // 4)
        )
        mode = {"candidates": points}
    result = surrogate_search(
        None,  # multi-objective: report the verified Pareto frontier
        eval_budget=budget,
        seed=args.seed,
        workloads=workloads,
        batch=args.batch,
        **mode,
        **options,
    )
    rows = [
        [
            row.point.label(),
            f"{row.area_mm2:.0f}",
            f"{row.tdp_w:.0f}",
            f"{row.peak_tops:.1f}",
            f"{row.peak_tops_per_watt:.3f}",
            f"{row.peak_tops_per_tco * 1e6:.3f}",
        ]
        for row in result.frontier
    ]
    print(
        format_table(
            [
                "(X,N,Tx,Ty)",
                "mm^2",
                "TDP W",
                "peak",
                "TOPS/W",
                "TOPS/TCO*1e6",
            ],
            rows,
        )
    )
    print(f"\n{result.summary()}", file=sys.stderr)
    _print_failures(result.failures)
    _print_fallback_totals(result.fallback_totals)
    if result.cancelled:
        return 3
    return 0 if rows else 2


def _remote_dse(args: argparse.Namespace, points) -> int:
    """Run the dse table through a ``neurometer serve`` daemon."""
    from repro.dse.journal import SummaryResult

    payload = _remote_client(args).sweep(
        [[p.x, p.n, p.tx, p.ty] for p in points],
        workloads=sorted(_WORKLOADS),
        batch=args.batch,
    )
    regime = f"bs={args.batch}"
    rows = []
    failures = []
    for record in payload["records"]:
        if record.get("metrics") is None:
            failure = record.get("failure") or {}
            failures.append(
                f"{tuple(record['point'])}: "
                f"{failure.get('error_type', 'failed')}: "
                f"{failure.get('message', '')}"
            )
            continue
        point = DesignPoint(*record["point"])
        result = SummaryResult.from_metrics(point, record["metrics"])
        if any(o.regime == regime for o in result.outcomes):
            runtime = [
                f"{result.mean_achieved_tops(args.batch):.1f}",
                f"{result.mean_utilization(args.batch):.2f}",
                f"{result.mean_energy_efficiency(args.batch):.3f}",
                f"{result.mean_cost_efficiency(args.batch) * 1e6:.2f}",
            ]
        else:
            runtime = ["-", "-", "-", "-"]
        rows.append(
            [
                point.label(),
                f"{result.area_mm2:.0f}",
                f"{result.tdp_w:.0f}",
                f"{result.peak_tops:.1f}",
            ]
            + runtime
        )
    print(
        format_table(
            [
                "(X,N,Tx,Ty)",
                "mm^2",
                "TDP W",
                "peak",
                "achieved",
                "util",
                "TOPS/W",
                "TOPS/TCO*1e6",
            ],
            rows,
        )
    )
    if failures:
        print(f"\nfailed points ({len(failures)}):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
    totals: dict = {}
    for record in payload["records"]:
        reason = record.get("fallback")
        if reason:
            totals[reason] = totals.get(reason, 0) + 1
    _print_fallback_totals(totals)
    if not rows:
        print("error: every design point failed", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the long-running estimation daemon (see docs/serving.md)."""
    from repro.serve.app import ServeConfig
    from repro.serve.lifecycle import run_server

    _apply_cache_flags(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        jobs=args.jobs,
        timeout_s=args.timeout_s,
        deadline_s=args.deadline_s,
        max_inflight=args.max_inflight,
        retry_attempts=args.retry_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset_s,
        journal_dir=args.journal_dir,
        request_log=args.request_log,
        drain_grace_s=args.drain_grace_s,
        seed=_resolve_cli_seed(args.seed),
        eval_cost_floor_s=args.eval_cost_floor_s,
        reload_config=args.reload_config,
    )
    return run_server(config)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    """Demonstrate and report the estimate cache on a small point set.

    Models each point twice — a cold pass that fills the cache and a warm
    pass served from it — then prints the counters and the measured warm
    speedup.  ``--no-cache`` turns the run into a plain A/B baseline
    (every lookup misses nothing because none happen).
    """
    import time

    from repro.cache.store import get_estimate_cache

    _apply_cache_flags(args)
    points = (
        [_parse_point(text) for text in args.point]
        if args.point
        else [
            DesignPoint(8, 4, 4, 8),
            DesignPoint(32, 4, 2, 2),
            DesignPoint(64, 2, 2, 4),
            DesignPoint(128, 4, 1, 1),
        ]
    )
    ctx = _context(args)
    cache = get_estimate_cache()
    cache.clear()

    def _pass() -> list[tuple]:
        rows = []
        for point in points:
            chip = point.build()
            estimate = chip.estimate(ctx)
            rows.append(
                (estimate.area_mm2, chip.tdp_w(ctx), chip.peak_tops(ctx))
            )
        return rows

    start = time.perf_counter()
    cold = _pass()
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = _pass()
    warm_s = time.perf_counter() - start

    if cold != warm:
        print(
            "error: cached results diverged from the first pass",
            file=sys.stderr,
        )
        return 2
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"{len(points)} points: cold pass {cold_s * 1e3:.1f} ms, "
        f"warm pass {warm_s * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    print()
    print(_cache_stats_table(cache.stats.snapshot()))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Run the model-integrity self-check suite; exit 2 on any failure.

    With ``--inject-fault`` a seeded :class:`~repro.integrity.faults.FaultPlan`
    is armed for the whole run, proving end-to-end that an injected fault
    is caught by the integrity screen and turns the clean exit code into
    a failure instead of silently skewing the report.
    """
    import json

    from repro.integrity.doctor import run_doctor
    from repro.integrity.faults import (
        FaultKind,
        FaultPlan,
        FaultSpec,
        fault_injection,
    )

    _apply_cache_flags(args)

    def _run():
        return run_doctor(
            preset_names=args.preset or None,
            checks=args.check or None,
        )

    if args.inject_fault:
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    target=args.fault_target,
                    kind=FaultKind(args.inject_fault),
                    field=args.fault_field,
                    max_hits=0,  # every matching call, all checks
                ),
            ),
            seed=_resolve_cli_seed(args.seed),
        )
        with fault_injection(plan):
            report = _run()
        if report.passed:
            print(
                "error: injected fault escaped every doctor check",
                file=sys.stderr,
            )
            return 2
    else:
        report = _run()

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.passed else 2


def _changed_python_files(root: "Path", base: str) -> "list[Path] | None":
    """Python files changed vs ``base`` plus untracked ones, or ``None``
    when ``root`` is not inside a usable git checkout."""
    import subprocess

    def _git(*argv: str) -> "list[str] | None":
        try:
            proc = subprocess.run(
                ["git", "-C", str(root), *argv],
                capture_output=True, text=True, timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return [line for line in proc.stdout.splitlines() if line.strip()]

    changed = _git("diff", "--name-only", "--diff-filter=d", base, "--")
    if changed is None:
        return None
    untracked = _git("ls-files", "--others", "--exclude-standard") or []
    return [
        Path(root) / name
        for name in dict.fromkeys(changed + untracked)
        if name.endswith(".py")
    ]


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static analyzer; exit 2 when new findings appear.

    Pre-existing findings live in the committed baseline file and do not
    fail the run; ``--update-baseline`` re-records them (preserving the
    per-entry justifications) after intentional changes.

    ``--changed-only`` narrows the run to files touched since
    ``--diff-base`` (plus untracked files), keeping pre-commit runs
    fast; the baseline semantics are unchanged.
    """
    from repro.lint import run_lint

    root = Path(args.root) if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths]
    if args.changed_only:
        changed = _changed_python_files(root, args.diff_base)
        if changed is None:
            print(
                f"neurometer lint: --changed-only needs a git checkout at "
                f"{root} and a valid --diff-base ({args.diff_base!r})",
                file=sys.stderr,
            )
            return 1
        requested = [p.resolve() for p in paths]
        paths = [
            f for f in changed
            if f.exists() and any(
                _path_is_within(f.resolve(), req) for req in requested
            )
        ]
        if not paths:
            print("0 file(s) checked: no changed Python files under the "
                  "given paths")
            return 0
    report = run_lint(
        paths,
        root=args.root,
        rules=args.rule or None,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )
    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return report.exit_code


def _path_is_within(path: "Path", ancestor: "Path") -> bool:
    try:
        path.relative_to(ancestor)
        return True
    except ValueError:
        return False


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.timing.report import timing_report

    point = _parse_point(args.point)
    chip = point.build()
    ctx = _context(args)
    print(timing_report(chip.estimate(ctx), ctx.freq_ghz, top=args.top))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.dse.optimizer import Constraints, Objective, optimize_design
    from repro.dse.space import design_space

    objective = Objective(args.objective)
    constraints = Constraints(
        max_area_mm2=args.max_area,
        max_tdp_w=args.max_tdp,
        min_peak_tops=args.min_tops,
    )
    if args.point:
        points = [_parse_point(text) for text in args.point]
    else:
        points = design_space(check_budgets=False)
    workloads = []
    if objective.needs_workloads:
        workloads = [(name, fn()) for name, fn in _WORKLOADS.items()]
    _apply_cache_flags(args)
    outcome = optimize_design(
        points,
        objective,
        constraints,
        workloads=workloads,
        batch=args.batch,
        strict=not args.keep_going,
        strategy=args.strategy,
        eval_budget=args.eval_budget,
        seed=args.seed,
        **_engine_options(args),
    )
    best = outcome.best
    print(
        f"best for {objective.value}: {best.point.label()} — "
        f"{best.peak_tops:.1f} peak TOPS, {best.area_mm2:.0f} mm^2, "
        f"{best.tdp_w:.0f} W"
    )
    print(f"feasible candidates ranked: {len(outcome.ranking)}; "
          f"infeasible: {len(outcome.infeasible)}")
    if outcome.exact_evaluations is not None:
        print(
            f"strategy: {outcome.strategy} "
            f"({outcome.exact_evaluations} exact evaluations "
            f"of {len(points)} candidates)"
        )
    for result in outcome.ranking[1:4]:
        print(f"  runner-up: {result.point.label()}")
    _print_failures(outcome.failures)
    from repro.cache.store import get_estimate_cache

    _print_cache_stats(args, get_estimate_cache().stats.snapshot())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from repro.arch.floorplan import floorplan_chip

    point = _parse_point(args.point)
    chip = point.build()
    ctx = _context(args)
    plan = floorplan_chip(chip.estimate(ctx))
    print(
        f"{point.label()} outline {plan.width_mm:.1f} x "
        f"{plan.height_mm:.1f} mm, packing "
        f"{plan.packing_efficiency:.0%}"
    )
    print(plan.render(columns=args.columns))
    return 0


def _cmd_edge(args: argparse.Namespace) -> int:
    from repro.dse.edge import edge_sweep
    from repro.workloads.mobilenet import mobilenet_v2

    results = edge_sweep(mobilenet_v2())
    rows = [
        [
            result.label,
            f"{result.area_mm2:.1f}",
            f"{result.tdp_w:.2f}",
            f"{result.fps:.0f}",
            f"{result.fps_per_watt:.0f}",
        ]
        for result in sorted(results, key=lambda r: -r.fps_per_watt)[
            : args.top
        ]
    ]
    print(
        format_table(
            ["(X,N,Tx,Ty)", "mm^2", "TDP W", "fps", "fps/W"], rows
        )
    )
    return 0


def _cmd_sparsity(args: argparse.Namespace) -> int:
    sparsities = [float(s) for s in args.sparsity]
    sweep = sparsity_sweep(sparsities)
    rows = [
        [f"{s:.2f}"]
        + [f"{sweep[arch][i].gain:.2f}" for arch in STUDY_ARCHITECTURES]
        for i, s in enumerate(sparsities)
    ]
    print(
        format_table(["sparsity"] + list(STUDY_ARCHITECTURES), rows)
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="neurometer",
        description="NeuroMeter reproduction: power/area/timing modeling "
        "for ML accelerators",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="model one datacenter design point"
    )
    report.add_argument(
        "--point", default="64,2,2,4", help="X,N,Tx,Ty tuple"
    )
    report.add_argument(
        "--depth", type=int, default=2, help="breakdown depth"
    )
    report.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="send the request to a running `neurometer serve` daemon "
        "instead of modeling locally",
    )
    _add_context_arguments(report)
    report.set_defaults(handler=_cmd_report)

    validate = commands.add_parser(
        "validate", help="compare the modeled chips against published data"
    )
    validate.add_argument(
        "--chip",
        choices=["all"] + sorted(_PRESETS),
        default="all",
    )
    validate.set_defaults(handler=_cmd_validate)

    simulate = commands.add_parser(
        "simulate", help="run a workload on a design point"
    )
    simulate.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="resnet"
    )
    simulate.add_argument("--batch", type=int, default=1)
    simulate.add_argument("--point", default="64,2,2,4")
    simulate.add_argument(
        "--bounds",
        type=int,
        default=0,
        metavar="N",
        help="also print the bottleneck report with the N slowest layers",
    )
    _add_context_arguments(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    dse = commands.add_parser(
        "dse", help="sweep the Sec. III design points"
    )
    dse.add_argument("--batch", type=int, default=1)
    dse.add_argument(
        "--point",
        action="append",
        help="explicit X,N,Tx,Ty tuples (repeatable)",
    )
    dse.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="run the sweep on a `neurometer serve` daemon instead of "
        "locally (engine flags are the daemon's, not this process's)",
    )
    dse.add_argument(
        "--full-grid",
        action="store_true",
        dest="full_grid",
        help="sweep the full unpruned 210-point Table I grid instead "
        "of the Sec. III key points",
    )
    dse.add_argument(
        "--expanded-space",
        action="store_true",
        dest="expanded_space",
        help="with --strategy surrogate: navigate the ~1M-point "
        "expanded design space instead of an enumerated grid "
        "(mutation/crossover over the axes; see docs/dse_surrogate.md)",
    )
    dse.add_argument(
        "--write-manifest",
        default=None,
        dest="write_manifest",
        metavar="PATH",
        help="do not sweep: partition the selected points into "
        "--shards crash-safe shards and write the content-addressed "
        "manifest to PATH (see docs/robust_sweeps.md)",
    )
    dse.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shard count for --write-manifest (default 1)",
    )
    dse.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="run as a shard worker of this manifest (with --shard); "
        "the shard journal and lease live next to the manifest unless "
        "--journal-dir overrides",
    )
    dse.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="which shard of --manifest to claim, 1-based (e.g. 2/3); "
        "an abandoned shard is reclaimed and resumed from its journal",
    )
    dse.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        metavar="DIR",
        help="directory holding the shard journals and leases "
        "(default: the manifest's directory)",
    )
    dse.add_argument(
        "--stale-after-s",
        type=float,
        default=60.0,
        dest="stale_after_s",
        metavar="SECONDS",
        help="a shard lease whose heartbeat is older than this is "
        "considered abandoned and reclaimed (default 60)",
    )
    _add_engine_arguments(dse)
    _add_search_arguments(dse)
    dse.set_defaults(handler=_cmd_dse)

    merge = commands.add_parser(
        "merge",
        help="merge shard sweep journals into one verified report "
        "(exit 2 on missing points or cross-shard divergence)",
    )
    merge.add_argument(
        "--manifest",
        required=True,
        metavar="PATH",
        help="the shard manifest the journals were executed against",
    )
    merge.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        metavar="DIR",
        help="directory holding the shard journals "
        "(default: the manifest's directory)",
    )
    merge.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the merged records as one resumable JSONL "
        "journal at PATH",
    )
    merge.add_argument(
        "--strict",
        action="store_true",
        help="fail on corrupt mid-journal lines instead of salvaging "
        "around them",
    )
    merge.set_defaults(handler=_cmd_merge)

    serve = commands.add_parser(
        "serve",
        help="run the long-lived estimation daemon "
        "(JSON-over-HTTP; SIGTERM drains gracefully)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8757)
    serve.add_argument(
        "--backend",
        choices=["scalar", "auto", "vector"],
        default="scalar",
        help="estimation backend for served sweeps; per-point vector "
        "fallback totals appear in /status as vector_fallbacks",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="persistent pool workers shared by every request",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        dest="timeout_s",
        metavar="SECONDS",
        help="per-point wall-clock budget inherited by every request",
    )
    serve.add_argument(
        "--deadline-s",
        type=float,
        default=60.0,
        dest="deadline_s",
        metavar="SECONDS",
        help="default per-request deadline (clients may override with "
        "the X-Deadline-S header)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        dest="max_inflight",
        metavar="N",
        help="admission bound; excess requests are shed with 503 + "
        "Retry-After",
    )
    serve.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        dest="retry_attempts",
        metavar="N",
        help="bounded retries (with exponential backoff + jitter) when "
        "a pool worker crashes mid-request",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        dest="breaker_threshold",
        metavar="N",
        help="consecutive integrity failures that trip a model family "
        "to degraded peak-only service",
    )
    serve.add_argument(
        "--breaker-reset-s",
        type=float,
        default=30.0,
        dest="breaker_reset_s",
        metavar="SECONDS",
        help="open-breaker window before a half-open trial",
    )
    serve.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        metavar="DIR",
        help="directory for per-sweep checkpoint journals; a drained "
        "sweep resumes from here",
    )
    serve.add_argument(
        "--request-log",
        default=None,
        dest="request_log",
        metavar="PATH",
        help="JSONL journal of every resolved request",
    )
    serve.add_argument(
        "--drain-grace-s",
        type=float,
        default=30.0,
        dest="drain_grace_s",
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight requests",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        help="backoff-jitter seed (default: $NEUROMETER_SEED, then 0)",
    )
    serve.add_argument(
        "--eval-cost-floor-s",
        type=float,
        default=0.01,
        dest="eval_cost_floor_s",
        metavar="SECONDS",
        help="assumed cost of one exact evaluation when admission-"
        "checking a budgeted /optimize request against its deadline "
        "(see docs/dse_surrogate.md)",
    )
    serve.add_argument(
        "--reload-config",
        default=None,
        dest="reload_config",
        metavar="PATH",
        help="JSON file re-read on SIGHUP to hot-swap the live-safe "
        "knobs (deadlines, admission bound, breaker windows) without "
        "dropping the warm cache or in-flight requests",
    )
    _add_cache_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    sparsity = commands.add_parser(
        "sparsity", help="the Fig. 11 sparse-efficiency table"
    )
    sparsity.add_argument(
        "--sparsity",
        nargs="+",
        default=["0.3", "0.5", "0.7", "0.9", "0.95"],
    )
    sparsity.set_defaults(handler=_cmd_sparsity)

    cache_stats = commands.add_parser(
        "cache-stats",
        help="model points cold vs. warm and report estimate-cache "
        "hit/miss/eviction counters",
    )
    cache_stats.add_argument(
        "--point",
        action="append",
        help="explicit X,N,Tx,Ty tuples (repeatable)",
    )
    _add_context_arguments(cache_stats)
    _add_cache_arguments(cache_stats)
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    doctor = commands.add_parser(
        "doctor",
        help="run the model-integrity self-check suite "
        "(exit 2 on any failure)",
    )
    doctor.add_argument(
        "--preset",
        action="append",
        choices=["tpu-v1", "tpu-v2", "eyeriss", "datacenter"],
        help="presets to sweep (repeatable; default: all)",
    )
    doctor.add_argument(
        "--check",
        action="append",
        help="run only the named checks (repeatable)",
    )
    doctor.add_argument(
        "--json",
        action="store_true",
        help="emit the structured report as JSON",
    )
    doctor.add_argument(
        "--inject-fault",
        choices=["nan", "inf", "sign-flip"],
        default=None,
        help="arm a fault plan for the run; a healthy tree must then "
        "exit 2 (chaos self-test)",
    )
    doctor.add_argument(
        "--fault-target",
        default="",
        help="component substring the injected fault targets "
        "(default: every model call)",
    )
    doctor.add_argument(
        "--fault-field",
        default="dynamic_w",
        choices=["area_mm2", "dynamic_w", "leakage_w", "cycle_time_ns"],
        help="estimate field the injected fault corrupts",
    )
    doctor.add_argument(
        "--seed",
        type=int,
        default=None,
        help="fault-plan seed (default: $NEUROMETER_SEED, then 0)",
    )
    _add_cache_arguments(doctor)
    doctor.set_defaults(handler=_cmd_doctor)

    lint = commands.add_parser(
        "lint",
        help="static dimensional-consistency and convention checks "
        "(exit 2 on new findings)",
    )
    lint.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (e.g. src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default text; sarif for CI annotation)",
    )
    lint.add_argument(
        "--changed-only",
        action="store_true",
        dest="changed_only",
        help="lint only files changed vs --diff-base (git diff + "
        "untracked), intersected with the given paths",
    )
    lint.add_argument(
        "--diff-base",
        default="HEAD",
        metavar="REF",
        help="git ref --changed-only diffs against (default HEAD)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="NMXXX",
        help="run only the named rules (repeatable)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of accepted findings "
        "(default: no baseline; all findings are new)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        dest="update_baseline",
        help="rewrite --baseline with the current findings, keeping "
        "existing justifications",
    )
    lint.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory paths are reported relative to (default: cwd)",
    )
    lint.set_defaults(handler=_cmd_lint)

    timing = commands.add_parser(
        "timing", help="critical-path report for a design point"
    )
    timing.add_argument("--point", default="64,2,2,4")
    timing.add_argument("--top", type=int, default=10)
    _add_context_arguments(timing)
    timing.set_defaults(handler=_cmd_timing)

    optimize = commands.add_parser(
        "optimize",
        help="pick the best design for an objective under constraints",
    )
    from repro.dse.optimizer import Objective

    optimize.add_argument(
        "--objective",
        choices=[objective.value for objective in Objective],
        default="tops-per-tco",
    )
    optimize.add_argument("--max-area", type=float, default=500.0)
    optimize.add_argument("--max-tdp", type=float, default=300.0)
    optimize.add_argument("--min-tops", type=float, default=None)
    optimize.add_argument("--batch", type=int, default=1)
    optimize.add_argument("--point", action="append")
    _add_engine_arguments(optimize)
    _add_search_arguments(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    edge = commands.add_parser(
        "edge", help="sweep the edge (MobileNet, 4 W) design space"
    )
    edge.add_argument("--top", type=int, default=8)
    edge.set_defaults(handler=_cmd_edge)

    floorplan = commands.add_parser(
        "floorplan", help="ASCII floorplan of a design point"
    )
    floorplan.add_argument("--point", default="64,2,2,4")
    floorplan.add_argument("--columns", type=int, default=48)
    _add_context_arguments(floorplan)
    floorplan.set_defaults(handler=_cmd_floorplan)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except NeuroMeterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # A journaled sweep interrupted here is resumable with --resume.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
