"""Critical-path reporting.

The paper: NeuroMeter "outputs the timing information of the electrical
signal propagation delay (e.g., Elmore Delay) and the cycle time per
component to help the user find out the hardware critical path."  This
module turns an estimate tree into exactly that report: every
clock-constraining component, its cycle time, and its slack against a
target clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.component import Estimate
from repro.errors import ConfigurationError
from repro.report.tables import format_table


@dataclass(frozen=True)
class TimingEntry:
    """One component on the timing report.

    Attributes:
        name: Component name.
        cycle_time_ns: Its minimum cycle time.
        slack_ns: Target period minus cycle time (negative = violation).
        max_freq_ghz: Highest clock the component alone supports.
    """

    name: str
    cycle_time_ns: float
    slack_ns: float

    @property
    def max_freq_ghz(self) -> float:
        if self.cycle_time_ns <= 0:
            return float("inf")
        return 1.0 / self.cycle_time_ns

    @property
    def violated(self) -> bool:
        return self.slack_ns < 0


def timing_entries(
    estimate: Estimate, freq_ghz: float, top: int = 10
) -> list[TimingEntry]:
    """The ``top`` slowest clock-constraining components, worst first.

    Composite rollups (whose cycle time merely repeats a child's) are
    skipped so the report names the actual limiting structures.
    """
    if freq_ghz <= 0:
        raise ConfigurationError("target clock must be positive")
    period_ns = 1.0 / freq_ghz
    entries: list[TimingEntry] = []
    for node in estimate.walk():
        if node.cycle_time_ns <= 0:
            continue
        child_worst = max(
            (child.cycle_time_ns for child in node.children), default=0.0
        )
        if node.children and abs(
            node.cycle_time_ns - child_worst
        ) < 1e-12:
            continue  # pure rollup; the child carries the real path
        entries.append(
            TimingEntry(
                name=node.name,
                cycle_time_ns=node.cycle_time_ns,
                slack_ns=period_ns - node.cycle_time_ns,
            )
        )
    entries.sort(key=lambda entry: entry.cycle_time_ns, reverse=True)
    return entries[:top]


def timing_report(
    estimate: Estimate, freq_ghz: float, top: int = 10
) -> str:
    """Human-readable critical-path table at a target clock."""
    entries = timing_entries(estimate, freq_ghz, top=top)
    rows = [
        [
            entry.name,
            f"{entry.cycle_time_ns:.3f}",
            f"{entry.max_freq_ghz:.2f}",
            f"{entry.slack_ns:+.3f}",
            "VIOLATED" if entry.violated else "ok",
        ]
        for entry in entries
    ]
    header = (
        f"Timing at {freq_ghz:.3f} GHz "
        f"(period {1.0 / freq_ghz:.3f} ns)"
    )
    return header + "\n" + format_table(
        ["component", "cycle ns", "max GHz", "slack ns", "status"], rows
    )
