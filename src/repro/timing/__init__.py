"""Chip timing: clock-rate search and critical-path reporting."""

from repro.timing.clock import (
    ClockPlan,
    critical_path,
    frequency_for_tops,
    max_frequency_ghz,
    plan_clock,
)
from repro.timing.report import TimingEntry, timing_entries, timing_report

__all__ = [
    "ClockPlan",
    "TimingEntry",
    "critical_path",
    "frequency_for_tops",
    "max_frequency_ghz",
    "plan_clock",
    "timing_entries",
    "timing_report",
]
