"""Clock-rate optimization and critical-path reporting.

NeuroMeter takes a system-level performance target (peak TOPS) and
"automatically searches for the optimal clock rate" (Sec. I): the lowest
clock that reaches the target, bounded by the slowest component's cycle
time from the Elmore-based timing analysis.  This module implements that
search and reports which component limits the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.chip import Chip
from repro.arch.component import Estimate, ModelContext
from repro.errors import OptimizationError
from repro.tech.node import TechNode
from repro.units import KILO, OPS_PER_MAC

_MAX_SEARCH_GHZ = 5.0
_SEARCH_TOLERANCE_GHZ = 0.005


@dataclass(frozen=True)
class ClockPlan:
    """Result of the clock search.

    Attributes:
        freq_ghz: Chosen clock rate.
        peak_tops: Peak TOPS at that clock.
        limited_by: Name of the component bounding the clock (``None``
            when the target was reachable with slack).
        slack_ns: Cycle-time slack at the chosen clock.
    """

    freq_ghz: float
    peak_tops: float
    limited_by: Optional[str]
    slack_ns: float


def frequency_for_tops(macs_per_cycle: int, target_tops: float) -> float:
    """Clock rate (GHz) needed for ``target_tops`` at a MAC throughput."""
    if macs_per_cycle <= 0:
        raise OptimizationError("design has no MAC throughput")
    if target_tops <= 0:
        raise OptimizationError("TOPS target must be positive")
    return target_tops * KILO / (OPS_PER_MAC * macs_per_cycle)


def critical_path(estimate: Estimate) -> tuple[str, float]:
    """The slowest component and its cycle time in ns."""
    worst = max(estimate.walk(), key=lambda e: e.cycle_time_ns)
    return worst.name, worst.cycle_time_ns


def max_frequency_ghz(chip: Chip, tech: TechNode) -> float:
    """Highest clock the chip's slowest component supports.

    The estimate itself depends on the clock (the Mem optimizer retunes
    banking per frequency), so the bound is found by bisection on
    "cycle time at f fits 1/f".
    """

    def feasible(freq_ghz: float) -> bool:
        ctx = ModelContext(tech=tech, freq_ghz=freq_ghz)
        try:
            estimate = chip.estimate(ctx)
        except OptimizationError:
            return False
        return estimate.cycle_time_ns <= 1.0 / freq_ghz + 1e-12

    lo, hi = 0.05, _MAX_SEARCH_GHZ
    if not feasible(lo):
        raise OptimizationError(
            "chip cannot close timing even at 50 MHz; check the configuration"
        )
    while hi - lo > _SEARCH_TOLERANCE_GHZ:
        mid = (lo + hi) / 2.0
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def plan_clock(
    chip: Chip,
    tech: TechNode,
    target_tops: Optional[float] = None,
    freq_cap_ghz: Optional[float] = None,
) -> ClockPlan:
    """Pick the clock for a chip: the TOPS target if reachable, else fail.

    Args:
        chip: The chip under design.
        tech: Technology node.
        target_tops: Desired peak TOPS; ``None`` runs the chip at its
            maximum feasible clock (capped by ``freq_cap_ghz``).
        freq_cap_ghz: Optional upper bound (e.g. Table I's 700 MHz).

    Raises:
        OptimizationError: the target TOPS needs a clock the hardware
            cannot close timing at.
    """
    ceiling = max_frequency_ghz(chip, tech)
    if freq_cap_ghz is not None:
        ceiling = min(ceiling, freq_cap_ghz)

    if target_tops is None:
        freq = ceiling
    else:
        freq = frequency_for_tops(chip.config.macs_per_cycle, target_tops)
        if freq > ceiling + 1e-9:
            name, cycle = critical_path(
                chip.estimate(ModelContext(tech=tech, freq_ghz=ceiling))
            )
            raise OptimizationError(
                f"{target_tops:.1f} TOPS needs {freq:.3f} GHz but "
                f"{name!r} limits the clock to {ceiling:.3f} GHz "
                f"(cycle {cycle:.3f} ns)"
            )

    ctx = ModelContext(tech=tech, freq_ghz=freq)
    estimate = chip.estimate(ctx)
    limiter, cycle = critical_path(estimate)
    slack = 1.0 / freq - estimate.cycle_time_ns
    return ClockPlan(
        freq_ghz=freq,
        peak_tops=chip.config.peak_tops(freq),
        limited_by=limiter if slack < 0.05 / freq else None,
        slack_ns=slack,
    )
