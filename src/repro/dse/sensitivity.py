"""Calibration sensitivity analysis.

The reproduction's empirical constants (synthesis margins, routing
overheads, the TDP guardband) were calibrated on the validation chips and
then frozen.  The case-study conclusions should be *orderings*, robust to
those constants — this module checks that by re-running a metric with
each constant perturbed and reporting whether the winner changes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.tech import calibration

T = TypeVar("T")

#: The calibration constants worth perturbing (scalar floats only).
PERTURBABLE_CONSTANTS = (
    "SYNTHESIS_ENERGY_MARGIN",
    "SYNTHESIS_AREA_MARGIN",
    "DATAPATH_ROUTING_OVERHEAD",
    "SRAM_ACCESS_OVERHEAD",
    "CLOCK_NETWORK_OVERHEAD",
    "CHIP_TDP_MARGIN",
)


@contextlib.contextmanager
def perturbed_calibration(**overrides: float) -> Iterator[None]:
    """Temporarily scale calibration constants by the given factors.

    ``perturbed_calibration(SYNTHESIS_ENERGY_MARGIN=1.2)`` multiplies the
    constant by 1.2 inside the block and restores it afterwards, even on
    exceptions.  Only the documented perturbable constants are accepted.
    """
    saved: dict[str, float] = {}
    for name, factor in overrides.items():
        if name not in PERTURBABLE_CONSTANTS:
            raise ConfigurationError(
                f"{name!r} is not a perturbable calibration constant; "
                f"pick from {PERTURBABLE_CONSTANTS}"
            )
        if factor <= 0:
            raise ConfigurationError("perturbation factors must be positive")
        saved[name] = getattr(calibration, name)
        setattr(calibration, name, saved[name] * factor)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(calibration, name, value)


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of one perturbation.

    Attributes:
        constant: The perturbed constant.
        factor: The applied scale.
        winner: The argmax of the metric under the perturbation.
        baseline_winner: The unperturbed argmax.
    """

    constant: str
    factor: float
    winner: T  # type: ignore[valid-type]
    baseline_winner: T  # type: ignore[valid-type]

    @property
    def stable(self) -> bool:
        return self.winner == self.baseline_winner


def winner_stability(
    candidates: Sequence[T],
    metric: Callable[[T], float],
    factors: Sequence[float] = (0.8, 1.25),
    constants: Sequence[str] = PERTURBABLE_CONSTANTS,
) -> list[SensitivityResult]:
    """Check whether a metric's argmax survives calibration perturbations.

    ``metric`` must re-evaluate from scratch on each call (build fresh
    chips); cached results would not see the perturbed constants.
    """
    if not candidates:
        raise ConfigurationError("need candidates to compare")
    baseline = max(candidates, key=metric)
    results: list[SensitivityResult] = []
    for constant in constants:
        for factor in factors:
            with perturbed_calibration(**{constant: factor}):
                winner = max(candidates, key=metric)
            results.append(
                SensitivityResult(
                    constant=constant,
                    factor=factor,
                    winner=winner,
                    baseline_winner=baseline,
                )
            )
    return results


def stability_summary(
    results: Sequence[SensitivityResult],
) -> Mapping[str, float]:
    """Fraction of perturbations under which the winner held, per constant."""
    summary: dict[str, list[bool]] = {}
    for result in results:
        summary.setdefault(result.constant, []).append(result.stable)
    return {
        constant: sum(stable_list) / len(stable_list)
        for constant, stable_list in summary.items()
    }
