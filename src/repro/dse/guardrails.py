"""Result guardrails: numerical sanity checks at the engine boundary.

This module is a thin backward-compatibility shim: the checks now live in
:mod:`repro.integrity.contracts`, where they are shared between the sweep
engine's boundary validation and the component-level integrity screen.
Import from :mod:`repro.integrity` in new code.
"""

from __future__ import annotations

from repro.integrity.contracts import (
    UTILIZATION_SLACK,
    check_finite,
    check_fraction,
    check_nonnegative,
    check_positive,
    validate_metrics,
    validate_result,
)

__all__ = [
    "UTILIZATION_SLACK",
    "check_finite",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "validate_metrics",
    "validate_result",
]
