"""Result guardrails: numerical sanity checks at the engine boundary.

Analytical models fail quietly: a calibration curve-fit can leak a NaN, a
degenerate tiling can report a utilization of 1.7, a subtraction of two
close estimates can go negative.  Left unchecked those values poison every
mean downstream of the sweep.  The engine therefore validates every
:class:`~repro.dse.sweep.DesignPointResult` before accepting it, raising
:class:`~repro.errors.NumericalError` with the path of the offending field
(e.g. ``outcomes[2].utilization``) so the failure is attributable to one
design point instead of surfacing as a cryptic ``ConfigurationError`` from
a geomean three layers up.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping

from repro.errors import NumericalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dse.sweep import DesignPointResult

#: Tolerance above 1.0 still accepted for utilizations (float round-off).
UTILIZATION_SLACK = 1e-6


def check_finite(field: str, value: float) -> float:
    """Reject NaN and +/-inf."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise NumericalError(field, value, "not a number")
    if math.isnan(value):
        raise NumericalError(field, value, "NaN")
    if math.isinf(value):
        raise NumericalError(field, value, "infinite")
    return float(value)


def check_positive(field: str, value: float) -> float:
    """Reject NaN/inf and values <= 0 (areas, powers, energies, TOPS)."""
    checked = check_finite(field, value)
    if checked <= 0.0:
        raise NumericalError(field, value, "must be positive")
    return checked


def check_nonnegative(field: str, value: float) -> float:
    """Reject NaN/inf and values < 0."""
    checked = check_finite(field, value)
    if checked < 0.0:
        raise NumericalError(field, value, "must be non-negative")
    return checked


def check_fraction(field: str, value: float) -> float:
    """Reject NaN/inf and values outside [0, 1] (utilizations)."""
    checked = check_finite(field, value)
    if not 0.0 <= checked <= 1.0 + UTILIZATION_SLACK:
        raise NumericalError(field, value, "must be within [0, 1]")
    return checked


def validate_metrics(metrics: Mapping[str, float], prefix: str = "") -> None:
    """Validate a flat metrics mapping (journal rows, ad-hoc summaries)."""
    for name, value in metrics.items():
        field = f"{prefix}{name}"
        if name.endswith("utilization"):
            check_fraction(field, value)
        else:
            check_nonnegative(field, value)


def validate_result(result: "DesignPointResult") -> "DesignPointResult":
    """Validate one evaluated design point; return it when clean.

    Checks the chip-level numbers (area, TDP, peak TOPS must be positive
    and finite) and every workload outcome (achieved TOPS non-negative,
    utilization within [0, 1], runtime power positive, batch >= 1).

    Raises:
        NumericalError: naming the offending field path.
    """
    check_positive("area_mm2", result.area_mm2)
    check_positive("tdp_w", result.tdp_w)
    check_positive("peak_tops", result.peak_tops)
    for i, outcome in enumerate(result.outcomes):
        path = f"outcomes[{i}]"
        check_nonnegative(f"{path}.achieved_tops", outcome.achieved_tops)
        check_fraction(f"{path}.utilization", outcome.utilization)
        check_positive(f"{path}.runtime_power_w", outcome.runtime_power_w)
        if outcome.batch < 1:
            raise NumericalError(
                f"{path}.batch", outcome.batch, "must be >= 1"
            )
        check_nonnegative(
            f"{path}.latency_ms", outcome.result.latency_ms
        )
    return result
