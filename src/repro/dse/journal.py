"""JSONL checkpoint journal for long design-space sweeps.

A 200-point sweep that dies at point 173 should not cost 172 evaluations.
The engine appends one self-contained JSON line per *finished* point —
success, degraded success, or structured failure — flushing after every
line so a SIGKILL loses at most the point in flight.  On ``resume`` the
journal is read back, finished points are skipped, and their metrics are
rehydrated into lightweight :class:`SummaryResult` rows that expose the
same metric surface as a freshly-evaluated
:class:`~repro.dse.sweep.DesignPointResult` (minus the estimate tree,
which is not serialized).

Journal format (one JSON object per line)::

    {"kind": "header", "version": 1, "points": 42}
    {"kind": "point", "point": [64, 2, 2, 4], "status": "ok",
     "attempt": 1, "wall_time_s": 1.8, "metrics": {...}, "failure": null}
    {"kind": "point", "point": [4, 4, 8, 16], "status": "failed",
     "attempt": 2, "wall_time_s": 0.2, "metrics": null,
     "failure": {"stage": "simulate", "error_type": "MappingError",
                 "message": "...", "degraded": true}}

``status`` is ``ok`` (full evaluation), ``degraded`` (peak-only metrics
after a retry), or ``failed`` (both attempts exhausted).
"""

from __future__ import annotations

import io
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.dse.metrics import (
    arithmetic_mean,
    positive_geomean,
    tops_per_tco,
    tops_per_watt,
)
from repro.dse.space import DesignPoint
from repro.errors import ConfigurationError

JOURNAL_VERSION = 1

#: Final statuses a journaled point can carry.
STATUSES = ("ok", "degraded", "failed")


def summarize_result(result: Any) -> dict:
    """Flatten a DesignPointResult into the JSON-serializable metrics dict.

    Enough is kept to reproduce every Fig. 8 / Fig. 10 table row — chip
    numbers, peak efficiencies, and per-outcome runtime metrics — without
    serializing the estimate tree.
    """
    return {
        "area_mm2": result.area_mm2,
        "tdp_w": result.tdp_w,
        "peak_tops": result.peak_tops,
        "peak_tops_per_watt": result.peak_tops_per_watt,
        "peak_tops_per_tco": result.peak_tops_per_tco,
        "outcomes": [
            {
                "workload": o.workload,
                "batch": o.batch,
                "regime": o.regime,
                "achieved_tops": o.achieved_tops,
                "utilization": o.utilization,
                "runtime_power_w": o.runtime_power_w,
                "latency_ms": (
                    o.result.latency_ms
                    if getattr(o, "result", None) is not None
                    else getattr(o, "latency_ms", None)
                ),
            }
            for o in result.outcomes
        ],
    }


@dataclass(frozen=True)
class SummaryOutcome:
    """A journal-rehydrated workload outcome (no SimulationResult)."""

    workload: str
    batch: int
    regime: str
    achieved_tops: float
    utilization: float
    runtime_power_w: float
    latency_ms: Optional[float] = None

    @property
    def energy_efficiency(self) -> float:
        return tops_per_watt(self.achieved_tops, self.runtime_power_w)


@dataclass(frozen=True)
class SummaryResult:
    """A design-point result rebuilt from journal metrics.

    Mirrors the metric surface of
    :class:`~repro.dse.sweep.DesignPointResult` — chip numbers, peak
    efficiencies, and the per-batch mean metrics — so rankings, tables,
    and optimizers work identically on resumed and fresh rows.  The
    estimate breakdown is not journaled; ``estimate`` is ``None``.
    """

    point: DesignPoint
    area_mm2: float
    tdp_w: float
    peak_tops: float
    outcomes: tuple[SummaryOutcome, ...] = field(default_factory=tuple)
    estimate: None = None

    @property
    def peak_tops_per_watt(self) -> float:
        return tops_per_watt(self.peak_tops, self.tdp_w)

    @property
    def peak_tops_per_tco(self) -> float:
        return tops_per_tco(self.peak_tops, self.area_mm2, self.tdp_w)

    def _at_batch(self, batch: Optional[object]) -> list[SummaryOutcome]:
        if batch is None:
            return list(self.outcomes)
        regime = batch if batch == "latency-bound" else f"bs={batch}"
        return [o for o in self.outcomes if o.regime == regime]

    def mean_achieved_tops(self, batch: Optional[int] = None) -> float:
        return arithmetic_mean(
            [o.achieved_tops for o in self._at_batch(batch)]
        )

    def mean_utilization(self, batch: Optional[int] = None) -> float:
        return positive_geomean(
            [o.utilization for o in self._at_batch(batch)],
            field="utilization",
        )

    def mean_energy_efficiency(self, batch: Optional[int] = None) -> float:
        return positive_geomean(
            [o.energy_efficiency for o in self._at_batch(batch)],
            field="energy_efficiency",
        )

    def mean_cost_efficiency(self, batch: Optional[int] = None) -> float:
        return positive_geomean(
            [
                tops_per_tco(
                    o.achieved_tops, self.area_mm2, o.runtime_power_w
                )
                for o in self._at_batch(batch)
            ],
            field="cost_efficiency",
        )

    @classmethod
    def from_metrics(cls, point: DesignPoint, metrics: dict) -> "SummaryResult":
        return cls(
            point=point,
            area_mm2=metrics["area_mm2"],
            tdp_w=metrics["tdp_w"],
            peak_tops=metrics["peak_tops"],
            outcomes=tuple(
                SummaryOutcome(
                    workload=o["workload"],
                    batch=o["batch"],
                    regime=o["regime"],
                    achieved_tops=o["achieved_tops"],
                    utilization=o["utilization"],
                    runtime_power_w=o["runtime_power_w"],
                    latency_ms=o.get("latency_ms"),
                )
                for o in metrics.get("outcomes", ())
            ),
        )


@dataclass(frozen=True)
class JournalEntry:
    """One finished design point as recorded in the journal."""

    point: DesignPoint
    status: str
    attempt: int = 1
    wall_time_s: float = 0.0
    metrics: Optional[dict] = None
    failure: Optional[dict] = None
    cache: Optional[dict] = None
    #: vector-backend fallback reason for this point (``None`` when the
    #: point was vectorized or the sweep ran the scalar backend outright).
    fallback: Optional[str] = None
    #: Provenance of the metrics.  The sweep engine stamps ``"exact"`` on
    #: every row it writes — the analytical model produced the numbers —
    #: so downstream consumers (reports, surrogate training) can assert
    #: that no predicted-only row ever entered a journal.  ``None`` on
    #: rows written before the field existed.
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ConfigurationError(
                f"journal status must be one of {STATUSES}, "
                f"got {self.status!r}"
            )

    def to_json(self) -> str:
        payload = {
            "kind": "point",
            "point": [self.point.x, self.point.n, self.point.tx,
                      self.point.ty],
            "status": self.status,
            "attempt": self.attempt,
            "wall_time_s": round(self.wall_time_s, 6),
            "metrics": self.metrics,
            "failure": self.failure,
            "cache": self.cache,
            "fallback": self.fallback,
        }
        if self.source is not None:
            payload["source"] = self.source
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> Optional["JournalEntry"]:
        """Build an entry from a decoded JSON object.

        Returns ``None`` for non-point kinds (headers, future extensions);
        raises for point payloads whose fields are malformed.

        Raises:
            KeyError, TypeError, ValueError, ConfigurationError: the
                payload is a point record but cannot be rebuilt.
        """
        if not isinstance(payload, dict) or payload.get("kind") != "point":
            return None
        x, n, tx, ty = payload["point"]
        return cls(
            point=DesignPoint(int(x), int(n), int(tx), int(ty)),
            status=payload["status"],
            attempt=int(payload.get("attempt", 1)),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            metrics=payload.get("metrics"),
            failure=payload.get("failure"),
            cache=payload.get("cache"),
            fallback=payload.get("fallback"),
            source=payload.get("source"),
        )

    @classmethod
    def from_json(cls, line: str) -> Optional["JournalEntry"]:
        """Parse one journal line; ``None`` for headers/corrupt lines."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        try:
            return cls.from_payload(payload)
        except (KeyError, TypeError, ValueError, ConfigurationError):
            return None

    def summary_result(self) -> Optional[SummaryResult]:
        """Rehydrate the metrics into a result row (``None`` if failed)."""
        if self.metrics is None:
            return None
        return SummaryResult.from_metrics(self.point, self.metrics)


class Journal:
    """Append-only JSONL writer with crash-safe per-line flushing.

    ``meta`` is an optional JSON-serializable dict folded into the header
    line under the ``"meta"`` key — shard workers stamp the sweep digest
    and their shard coordinates there so a later merge can refuse
    journals from a different grid (see :func:`journal_header`).  The
    header is only written when the file starts empty; resuming an
    existing journal keeps whatever header it already has.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        resume: bool = False,
        meta: Optional[dict] = None,
    ):
        self.path = os.fspath(path)
        self.entries: list[JournalEntry] = []
        if resume and os.path.exists(self.path):
            self.entries = load_journal(self.path)
            _repair_tail(self.path)
        mode = "a" if resume else "w"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[io.TextIOBase] = open(
            self.path, mode, encoding="utf-8"
        )
        if mode == "w" or os.path.getsize(self.path) == 0:
            header = {"kind": "header", "version": JOURNAL_VERSION}
            if meta:
                header["meta"] = meta
            self._write_line(json.dumps(header, sort_keys=True))

    def _write_line(self, line: str) -> None:
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, entry: JournalEntry) -> None:
        """Record one finished point; flushed and fsynced immediately."""
        if self._fh is None:
            raise ConfigurationError("journal is closed")
        self.entries.append(entry)
        self._write_line(entry.to_json())

    def finished_points(self) -> set[DesignPoint]:
        """Points with a final record (ok, degraded, *or* failed)."""
        return {entry.point for entry in self.entries}

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_journal(
    path: str | os.PathLike, salvage: bool = False
) -> list[JournalEntry]:
    """Read every valid point entry from a journal file.

    A crash mid-write damages only the *tail* of the file — usually one
    truncated line, but a process killed while flushing a buffered
    multi-line write can tear several trailing lines at once.  Any
    contiguous run of damaged lines at the end of the file is therefore
    discarded with a single :class:`RuntimeWarning`, and the resume
    proceeds minus only the work in flight.  A damaged line *followed by
    a valid one* cannot come from a crash — appends never rewrite earlier
    bytes — so it means real file damage and raises instead of being
    silently dropped.  Unknown-but-well-formed line kinds (headers,
    future extensions) are skipped without comment.

    With ``salvage=True`` mid-file damage is *skipped* instead of raised,
    with one :class:`RuntimeWarning` per damaged line naming its line
    number — the shard merge uses this to harvest every point a
    hard-killed or disk-damaged shard did finish.  The default strict
    behavior is unchanged.

    Raises:
        ConfigurationError: a damaged line is followed by a valid line
            (mid-file damage) and ``salvage`` is off.
    """
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    lines = [
        (number, line)
        for number, line in enumerate(raw.split("\n"), start=1)
        if line.strip()
    ]
    entries: list[JournalEntry] = []
    damaged: list[tuple[int, Exception]] = []  # (line number, error)
    for number, line in lines:
        try:
            entry = JournalEntry.from_payload(json.loads(line))
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
            ConfigurationError,
        ) as error:
            damaged.append((number, error))
            continue
        if damaged:
            # A valid line after a damaged one: not a torn tail.
            bad_number, bad_error = damaged[0]
            if not salvage:
                raise ConfigurationError(
                    f"corrupt journal line {bad_number} in "
                    f"{os.fspath(path)}: {bad_error}"
                ) from bad_error
            for skipped_number, skipped_error in damaged:
                warnings.warn(
                    f"salvage: skipping corrupt journal line "
                    f"{skipped_number} in {os.fspath(path)}: "
                    f"{skipped_error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            damaged = []
        if entry is not None:
            entries.append(entry)
    if damaged and salvage:
        for skipped_number, skipped_error in damaged:
            warnings.warn(
                f"salvage: skipping corrupt journal line "
                f"{skipped_number} in {os.fspath(path)}: {skipped_error}",
                RuntimeWarning,
                stacklevel=2,
            )
    elif damaged:
        first, error = damaged[0]
        count = len(damaged)
        what = (
            f"line {first}"
            if count == 1
            else f"{count} lines starting at line {first}"
        )
        warnings.warn(
            f"discarding truncated/corrupt trailing journal {what} in "
            f"{os.fspath(path)} (crash mid-write?): {error}",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries


def journal_header(path: str | os.PathLike) -> Optional[dict]:
    """The decoded header line of a journal, or ``None`` if it has none.

    Only the first non-blank line is examined; a missing, corrupt, or
    non-header first line answers ``None`` rather than raising, so
    callers can treat "no header" and "unreadable header" uniformly (the
    shard merge then rejects the journal for lacking a sweep digest).
    """
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    break
            else:
                return None
    except OSError:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if isinstance(payload, dict) and payload.get("kind") == "header":
        return payload
    return None


def _repair_tail(path: str) -> None:
    """Truncate damaged trailing lines so appended records start clean.

    Without this, resuming after a crash mid-write would append the next
    JSON record onto the partial line, corrupting *both*.  Only trailing
    damage is repaired (``load_journal`` has already raised for anything
    deeper); the repair is silent because the load already warned.
    """
    repair_tail(path)


def repair_tail(path: str | os.PathLike, is_damaged=None) -> int:
    """Drop the contiguous run of damaged lines at the end of a JSONL file.

    The loop pops trailing lines while they are blank or fail the
    ``is_damaged`` validator, so a torn *multi-line* write (a process
    killed while the OS flushed a buffered block) is repaired the same
    way a single truncated line is.  Lines before a valid tail line are
    never touched.  Returns the number of damaged (non-blank) lines
    removed so callers can log the repair.

    Args:
        path: JSONL file to repair in place.
        is_damaged: ``bytes -> bool`` predicate for one stripped line;
            defaults to the sweep-journal validator.  Other JSONL
            consumers (e.g. the serve request log) pass their own.
    """
    if is_damaged is None:
        is_damaged = _line_is_damaged
    with open(path, "rb") as fh:
        data = fh.read()
    lines = data.splitlines(keepends=True)
    removed = 0
    while lines:
        last = lines[-1]
        stripped = last.strip()
        if stripped and not is_damaged(stripped):
            # Valid final line: just make sure it is newline-terminated so
            # the next append starts a fresh record.
            if not last.endswith(b"\n"):
                lines[-1] = last + b"\n"
            break
        if stripped:
            removed += 1
        lines.pop()  # damaged or blank tail line
    repaired = b"".join(lines)
    if repaired != data:
        with open(path, "wb") as fh:
            fh.write(repaired)
            fh.flush()
            os.fsync(fh.fileno())
    return removed


def _line_is_damaged(line: bytes) -> bool:
    """Whether a journal line is unparseable (vs. merely unknown-kind)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return True
    try:
        JournalEntry.from_payload(payload)
    except (KeyError, TypeError, ValueError, ConfigurationError):
        return True
    return False
