"""One seed, threaded through every stochastic subsystem.

The repository has three sources of randomness — surrogate-search
proposals, fault-injection plans, and retry-backoff jitter — and a
reproducible run needs all of them pinned from a *single* knob.  The
resolution order is:

1. an explicit ``--seed`` / API argument,
2. the ``NEUROMETER_SEED`` environment variable,
3. the default seed ``0``.

Subsystems that need independent streams derive stable sub-seeds with
:func:`derive_seed` instead of sharing one generator, so consuming
entropy in one subsystem can never shift the draws of another.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from repro.errors import ConfigurationError

#: Environment variable consulted when no explicit seed is given.
SEED_ENV = "NEUROMETER_SEED"

#: The seed used when neither an argument nor the environment names one.
DEFAULT_SEED = 0


def resolve_seed(explicit: Optional[int] = None) -> int:
    """Resolve the run seed: explicit argument, then env, then default.

    Raises:
        ConfigurationError: ``NEUROMETER_SEED`` is set but not an integer.
    """
    if explicit is not None:
        return int(explicit)
    raw = os.environ.get(SEED_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_SEED
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SEED_ENV} must be an integer seed, got {raw!r}"
        ) from None


def derive_seed(seed: int, *labels: object) -> int:
    """A stable sub-seed for one labeled consumer of the run seed.

    Hashes ``(seed, labels...)`` with SHA-256 so distinct labels get
    independent streams while the mapping stays identical across
    processes and platforms (no ``PYTHONHASHSEED`` dependence).
    """
    text = repr((int(seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
