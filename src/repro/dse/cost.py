"""Die-cost model: validating the paper's TOPS/TCO area-squared proxy.

Sec. III-A approximates capital expenditure with area squared "because
silicon die cost grows roughly as the square of the die area".  This
module implements the underlying manufacturing economics — dies per
wafer, negative-binomial defect yield, wafer pricing per node — so the
proxy can be checked (and replaced with dollars when absolute numbers
matter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Usable area of a 300 mm wafer (3 mm edge exclusion).
_WAFER_DIAMETER_MM = 300.0
_EDGE_EXCLUSION_MM = 3.0

#: Defect density (defects per mm^2; 0.1 per cm^2 is a mature process).
DEFAULT_DEFECT_DENSITY_PER_MM2 = 0.001

#: Negative-binomial clustering parameter (industry-typical).
DEFAULT_CLUSTER_ALPHA = 3.0

#: Processed-wafer price by node (relative economics, public estimates).
WAFER_COST_USD = {
    65: 2_000.0,
    45: 2_600.0,
    28: 3_500.0,
    16: 6_000.0,
    7: 9_500.0,
}


@dataclass(frozen=True)
class CostModel:
    """Manufacturing-cost parameters for one process.

    Attributes:
        wafer_cost_usd: Price of one processed wafer.
        defect_density_per_mm2: D0 of the yield model.
        cluster_alpha: Negative-binomial clustering parameter.
    """

    wafer_cost_usd: float
    defect_density_per_mm2: float = DEFAULT_DEFECT_DENSITY_PER_MM2
    cluster_alpha: float = DEFAULT_CLUSTER_ALPHA

    def __post_init__(self) -> None:
        if self.wafer_cost_usd <= 0:
            raise ConfigurationError("wafer cost must be positive")
        if self.defect_density_per_mm2 < 0:
            raise ConfigurationError("defect density must be >= 0")
        if self.cluster_alpha <= 0:
            raise ConfigurationError("cluster alpha must be positive")

    @classmethod
    def for_node(cls, feature_nm: float) -> "CostModel":
        """The default cost model of a tabulated node."""
        key = int(feature_nm)
        if key not in WAFER_COST_USD:
            raise ConfigurationError(
                f"no wafer pricing for {feature_nm} nm; known: "
                f"{sorted(WAFER_COST_USD)}"
            )
        return cls(wafer_cost_usd=WAFER_COST_USD[key])

    # -- geometry ------------------------------------------------------------

    def dies_per_wafer(self, die_mm2: float) -> int:
        """Gross dies per wafer (the standard circular-waste formula)."""
        if die_mm2 <= 0:
            raise ConfigurationError("die area must be positive")
        radius = _WAFER_DIAMETER_MM / 2.0 - _EDGE_EXCLUSION_MM
        wafer_area = math.pi * radius**2
        edge_loss = math.pi * 2.0 * radius / math.sqrt(2.0 * die_mm2)
        return max(1, int(wafer_area / die_mm2 - edge_loss))

    # -- yield ------------------------------------------------------------

    def yield_fraction(self, die_mm2: float) -> float:
        """Negative-binomial die yield: ``(1 + D0*A/alpha)^-alpha``."""
        if die_mm2 <= 0:
            raise ConfigurationError("die area must be positive")
        defects = self.defect_density_per_mm2 * die_mm2
        return (1.0 + defects / self.cluster_alpha) ** (
            -self.cluster_alpha
        )

    # -- dollars ------------------------------------------------------------

    def die_cost_usd(self, die_mm2: float) -> float:
        """Cost per *good* die."""
        good_dies = self.dies_per_wafer(die_mm2) * self.yield_fraction(
            die_mm2
        )
        return self.wafer_cost_usd / good_dies

    def cost_growth_exponent(
        self, area_a_mm2: float, area_b_mm2: float
    ) -> float:
        """Effective exponent k with ``cost ~ area^k`` between two areas.

        The paper's proxy assumes k ~= 2; the yield model lets you see
        where that holds (k passes through 2 as dies grow into the
        yield-limited regime).
        """
        if area_a_mm2 == area_b_mm2:
            raise ConfigurationError("areas must differ")
        cost_ratio = self.die_cost_usd(area_b_mm2) / self.die_cost_usd(
            area_a_mm2
        )
        return math.log(cost_ratio) / math.log(area_b_mm2 / area_a_mm2)


def tops_per_dollar(
    achieved_tops: float, die_mm2: float, model: CostModel
) -> float:
    """Absolute cost efficiency (the dollar version of TOPS/TCO CapEx)."""
    if achieved_tops < 0:
        raise ConfigurationError("achieved TOPS must be >= 0")
    return achieved_tops / model.die_cost_usd(die_mm2)
