"""The Table I design space: ``(X, N, T_x, T_y)`` tuples.

``X`` is the TU length (4-256), ``N`` the TUs per core (1, 2, 4), and
``T_x x T_y`` the core grid — powers of two, with ``T_x`` equal to or half
of ``T_y`` so the layout stays near-square.  The chip budget is 500 mm^2,
300 W, and a 92 TOPS peak cap at 28 nm / 700 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.config.presets import (
    DATACENTER_AREA_BUDGET_MM2,
    DATACENTER_POWER_BUDGET_W,
    DATACENTER_TOPS_CAP,
    datacenter_context,
    datacenter_design_point,
)
from repro.errors import ConfigurationError
from repro.units import tops

TU_LENGTHS = (4, 8, 16, 32, 64, 128, 256)
TUS_PER_CORE = (1, 2, 4)
_MAX_GRID_DIM = 16


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One ``(X, N, T_x, T_y)`` tuple of the Table I space."""

    x: int
    n: int
    tx: int
    ty: int

    def __post_init__(self) -> None:
        for name in ("x", "n", "tx", "ty"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"design point field {name} must be an integer, "
                    f"got {value!r} in {self}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"design point field {name} must be positive, "
                    f"got {value} in {self}"
                )

    @property
    def cores(self) -> int:
        return self.tx * self.ty

    @property
    def macs_per_cycle(self) -> int:
        return self.x * self.x * self.n * self.cores

    def peak_tops(self, freq_ghz: float) -> float:
        return tops(self.macs_per_cycle, freq_ghz)

    def build(self) -> Chip:
        """Instantiate the chip for this point."""
        return datacenter_design_point(self.x, self.n, self.tx, self.ty)

    def label(self) -> str:
        return f"({self.x},{self.n},{self.tx},{self.ty})"


def _grids() -> Iterator[tuple[int, int]]:
    """Near-square power-of-two grids: T_x == T_y or T_x == T_y / 2."""
    tx = 1
    while tx <= _MAX_GRID_DIM:
        for ty in (tx, 2 * tx):
            if ty <= _MAX_GRID_DIM * 2:
                yield (tx, ty)
        tx *= 2


def full_grid() -> list[DesignPoint]:
    """Every Table I ``(X, N, Tx, Ty)`` tuple, unpruned (210 points).

    The raw cross product of tensor-unit lengths, units per core, and
    near-square core grids — no TOPS cap or area/power budget filtering.
    This is the canonical input of the sharded-sweep drills: its size
    and order are deterministic, so a manifest built from it is
    byte-identical across machines.
    """
    return [
        DesignPoint(x, n, tx, ty)
        for x in TU_LENGTHS
        for n in TUS_PER_CORE
        for tx, ty in _grids()
    ]


def design_space(
    ctx: Optional[ModelContext] = None,
    area_budget_mm2: float = DATACENTER_AREA_BUDGET_MM2,
    power_budget_w: float = DATACENTER_POWER_BUDGET_W,
    tops_cap: float = DATACENTER_TOPS_CAP,
    check_budgets: bool = True,
) -> list[DesignPoint]:
    """Enumerate the feasible Table I design points.

    A point is kept when its peak TOPS does not exceed the 92 TOPS target
    cap and (when ``check_budgets``) its modeled die area and TDP fit the
    500 mm^2 / 300 W budget.  Budget checks build and evaluate each chip,
    which is the expensive part — the pruning round of Sec. III-A.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    points: list[DesignPoint] = []
    for x in TU_LENGTHS:
        for n in TUS_PER_CORE:
            for tx, ty in _grids():
                point = DesignPoint(x, n, tx, ty)
                if point.peak_tops(ctx.freq_ghz) > tops_cap + 1e-9:
                    continue
                if check_budgets and not _fits(
                    point, ctx, area_budget_mm2, power_budget_w
                ):
                    continue
                points.append(point)
    return points


def _fits(
    point: DesignPoint,
    ctx: ModelContext,
    area_budget_mm2: float,
    power_budget_w: float,
) -> bool:
    chip = point.build()
    if chip.area_mm2(ctx) > area_budget_mm2:
        return False
    return chip.tdp_w(ctx) <= power_budget_w


def max_core_point(
    x: int,
    n: int,
    ctx: Optional[ModelContext] = None,
    area_budget_mm2: float = DATACENTER_AREA_BUDGET_MM2,
    power_budget_w: float = DATACENTER_POWER_BUDGET_W,
    tops_cap: float = DATACENTER_TOPS_CAP,
) -> Optional[DesignPoint]:
    """The maximum-core grid for one ``(X, N)`` (Sec. III-A's rule).

    Returns ``None`` when even a single core busts the budget.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    best: Optional[DesignPoint] = None
    for tx, ty in _grids():
        point = DesignPoint(x, n, tx, ty)
        if point.peak_tops(ctx.freq_ghz) > tops_cap + 1e-9:
            continue
        if not _fits(point, ctx, area_budget_mm2, power_budget_w):
            continue
        if best is None or point.cores > best.cores:
            best = point
    return best


#: The design points called out in Figs. 8 and 10.
NAMED_POINTS = {
    "utilization-optimal": DesignPoint(8, 4, 4, 8),
    "throughput-optimal": DesignPoint(64, 2, 2, 4),
    "cost-efficiency-optimal": DesignPoint(64, 4, 1, 2),
    "energy-efficiency-optimal-medium-batch": DesignPoint(32, 4, 2, 2),
    "peak-efficiency-optimal": DesignPoint(128, 4, 1, 1),
    "tpu-v1-like": DesignPoint(256, 1, 1, 1),
}


def named_points() -> dict[str, DesignPoint]:
    """The headline design points the paper's conclusions reference."""
    return dict(NAMED_POINTS)
