"""The Table I design space: ``(X, N, T_x, T_y)`` tuples.

``X`` is the TU length (4-256), ``N`` the TUs per core (1, 2, 4), and
``T_x x T_y`` the core grid — powers of two, with ``T_x`` equal to or half
of ``T_y`` so the layout stays near-square.  The chip budget is 500 mm^2,
300 W, and a 92 TOPS peak cap at 28 nm / 700 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.arch.chip import Chip
from repro.arch.component import ModelContext
from repro.config.presets import (
    DATACENTER_AREA_BUDGET_MM2,
    DATACENTER_POWER_BUDGET_W,
    DATACENTER_TOPS_CAP,
    datacenter_context,
    datacenter_design_point,
)
from repro.errors import ConfigurationError
from repro.units import tops

TU_LENGTHS = (4, 8, 16, 32, 64, 128, 256)
TUS_PER_CORE = (1, 2, 4)
_MAX_GRID_DIM = 16


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One ``(X, N, T_x, T_y)`` tuple of the Table I space."""

    x: int
    n: int
    tx: int
    ty: int

    def __post_init__(self) -> None:
        for name in ("x", "n", "tx", "ty"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"design point field {name} must be an integer, "
                    f"got {value!r} in {self}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"design point field {name} must be positive, "
                    f"got {value} in {self}"
                )

    @property
    def cores(self) -> int:
        return self.tx * self.ty

    @property
    def macs_per_cycle(self) -> int:
        return self.x * self.x * self.n * self.cores

    def peak_tops(self, freq_ghz: float) -> float:
        return tops(self.macs_per_cycle, freq_ghz)

    def build(self) -> Chip:
        """Instantiate the chip for this point."""
        return datacenter_design_point(self.x, self.n, self.tx, self.ty)

    def label(self) -> str:
        return f"({self.x},{self.n},{self.tx},{self.ty})"


def _grids() -> Iterator[tuple[int, int]]:
    """Near-square power-of-two grids: T_x == T_y or T_x == T_y / 2."""
    tx = 1
    while tx <= _MAX_GRID_DIM:
        for ty in (tx, 2 * tx):
            if ty <= _MAX_GRID_DIM * 2:
                yield (tx, ty)
        tx *= 2


def full_grid() -> list[DesignPoint]:
    """Every Table I ``(X, N, Tx, Ty)`` tuple, unpruned (210 points).

    The raw cross product of tensor-unit lengths, units per core, and
    near-square core grids — no TOPS cap or area/power budget filtering.
    This is the canonical input of the sharded-sweep drills: its size
    and order are deterministic, so a manifest built from it is
    byte-identical across machines.
    """
    return [
        DesignPoint(x, n, tx, ty)
        for x in TU_LENGTHS
        for n in TUS_PER_CORE
        for tx, ty in _grids()
    ]


@dataclass(frozen=True)
class SpaceAxes:
    """The axes a proposal-driven search can move along.

    Exhaustive sweeps enumerate :func:`full_grid`; the surrogate search
    (:mod:`repro.dse.surrogate`) instead *navigates* the space, so it
    needs the axes as first-class objects: the admissible TU lengths,
    TUs per core, and ``(T_x, T_y)`` core-grid pairs.  ``table1()``
    reproduces the 210-point paper grid; ``expanded()`` widens every
    axis into a >1M-point space that is far beyond exhaustive sweeping
    but still builds through the exact datacenter model, so any proposed
    point can be verified by the vectorized backend.

    Axis values are deduplicated and sorted at construction so the same
    recipe always digests and samples identically.
    """

    x_values: tuple[int, ...]
    n_values: tuple[int, ...]
    grid_pairs: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        for name in ("x_values", "n_values", "grid_pairs"):
            values = getattr(self, name)
            if not values:
                raise ConfigurationError(f"axis {name} must be non-empty")
        object.__setattr__(
            self, "x_values", tuple(sorted(set(self.x_values)))
        )
        object.__setattr__(
            self, "n_values", tuple(sorted(set(self.n_values)))
        )
        object.__setattr__(
            self,
            "grid_pairs",
            tuple(sorted({(int(tx), int(ty)) for tx, ty in self.grid_pairs})),
        )
        for value in self.x_values + self.n_values:
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"axis values must be positive integers, got {value!r}"
                )
        for tx, ty in self.grid_pairs:
            if tx < 1 or ty < 1:
                raise ConfigurationError(
                    f"grid pair must be positive, got ({tx}, {ty})"
                )

    @classmethod
    def table1(cls) -> "SpaceAxes":
        """The paper's Table I axes (the 210-point grid)."""
        return cls(
            x_values=TU_LENGTHS,
            n_values=TUS_PER_CORE,
            grid_pairs=tuple(_grids()),
        )

    @classmethod
    def expanded(
        cls,
        max_x: int = 256,
        x_step: int = 2,
        max_n: int = 8,
        max_grid_dim: int = 32,
    ) -> "SpaceAxes":
        """A widened space: every even TU length, 1-8 TUs, free grids.

        With the defaults this is 127 x 8 x 1024 = 1,040,384 points —
        three orders of magnitude past Table I, yet each tuple still
        instantiates through ``datacenter_design_point`` and therefore
        evaluates on the exact vectorized backend.
        """
        return cls(
            x_values=tuple(range(4, max_x + 1, x_step)),
            n_values=tuple(range(1, max_n + 1)),
            grid_pairs=tuple(
                (tx, ty)
                for tx in range(1, max_grid_dim + 1)
                for ty in range(1, max_grid_dim + 1)
            ),
        )

    @property
    def size(self) -> int:
        """Number of distinct design points the axes span."""
        return len(self.x_values) * len(self.n_values) * len(self.grid_pairs)

    def contains(self, point: DesignPoint) -> bool:
        return (
            point.x in self.x_values
            and point.n in self.n_values
            and (point.tx, point.ty) in self.grid_pairs
        )

    def descriptor(self) -> dict:
        """A JSON-serializable recipe of the axes (for content digests)."""
        return {
            "x_values": list(self.x_values),
            "n_values": list(self.n_values),
            "grid_pairs": [list(pair) for pair in self.grid_pairs],
        }

    def point_at(self, ix: int, in_: int, ig: int) -> DesignPoint:
        """The design point at one (x-index, n-index, grid-index) triple."""
        tx, ty = self.grid_pairs[ig]
        return DesignPoint(self.x_values[ix], self.n_values[in_], tx, ty)

    def indices_of(self, point: DesignPoint) -> tuple[int, int, int]:
        """Axis indices of a contained point (for neighborhood moves).

        Raises:
            ConfigurationError: the point is not on these axes.
        """
        if not self.contains(point):
            raise ConfigurationError(
                f"{point.label()} is not on these axes"
            )
        return (
            self.x_values.index(point.x),
            self.n_values.index(point.n),
            self.grid_pairs.index((point.tx, point.ty)),
        )

    def axis_sizes(self) -> tuple[int, int, int]:
        return (len(self.x_values), len(self.n_values), len(self.grid_pairs))


def design_space(
    ctx: Optional[ModelContext] = None,
    area_budget_mm2: float = DATACENTER_AREA_BUDGET_MM2,
    power_budget_w: float = DATACENTER_POWER_BUDGET_W,
    tops_cap: float = DATACENTER_TOPS_CAP,
    check_budgets: bool = True,
) -> list[DesignPoint]:
    """Enumerate the feasible Table I design points.

    A point is kept when its peak TOPS does not exceed the 92 TOPS target
    cap and (when ``check_budgets``) its modeled die area and TDP fit the
    500 mm^2 / 300 W budget.  Budget checks build and evaluate each chip,
    which is the expensive part — the pruning round of Sec. III-A.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    points: list[DesignPoint] = []
    for x in TU_LENGTHS:
        for n in TUS_PER_CORE:
            for tx, ty in _grids():
                point = DesignPoint(x, n, tx, ty)
                if point.peak_tops(ctx.freq_ghz) > tops_cap + 1e-9:
                    continue
                if check_budgets and not _fits(
                    point, ctx, area_budget_mm2, power_budget_w
                ):
                    continue
                points.append(point)
    return points


def _fits(
    point: DesignPoint,
    ctx: ModelContext,
    area_budget_mm2: float,
    power_budget_w: float,
) -> bool:
    chip = point.build()
    if chip.area_mm2(ctx) > area_budget_mm2:
        return False
    return chip.tdp_w(ctx) <= power_budget_w


def max_core_point(
    x: int,
    n: int,
    ctx: Optional[ModelContext] = None,
    area_budget_mm2: float = DATACENTER_AREA_BUDGET_MM2,
    power_budget_w: float = DATACENTER_POWER_BUDGET_W,
    tops_cap: float = DATACENTER_TOPS_CAP,
) -> Optional[DesignPoint]:
    """The maximum-core grid for one ``(X, N)`` (Sec. III-A's rule).

    Returns ``None`` when even a single core busts the budget.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    best: Optional[DesignPoint] = None
    for tx, ty in _grids():
        point = DesignPoint(x, n, tx, ty)
        if point.peak_tops(ctx.freq_ghz) > tops_cap + 1e-9:
            continue
        if not _fits(point, ctx, area_budget_mm2, power_budget_w):
            continue
        if best is None or point.cores > best.cores:
            best = point
    return best


#: The design points called out in Figs. 8 and 10.
NAMED_POINTS = {
    "utilization-optimal": DesignPoint(8, 4, 4, 8),
    "throughput-optimal": DesignPoint(64, 2, 2, 4),
    "cost-efficiency-optimal": DesignPoint(64, 4, 1, 2),
    "energy-efficiency-optimal-medium-batch": DesignPoint(32, 4, 2, 2),
    "peak-efficiency-optimal": DesignPoint(128, 4, 1, 1),
    "tpu-v1-like": DesignPoint(256, 1, 1, 1),
}


def named_points() -> dict[str, DesignPoint]:
    """The headline design points the paper's conclusions reference."""
    return dict(NAMED_POINTS)
