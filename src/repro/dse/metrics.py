"""Efficiency metrics of the datacenter study.

Cost efficiency (TOPS/TCO) "is approximated as TOPS/mm^4/Watt, where power
is an approximation of operational expenditures and area squared is an
approximation of capital expenditures because silicon die cost grows
roughly as the square of the die area" (Sec. III-A).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError, NumericalError


def tops_per_watt(achieved_tops: float, power_w: float) -> float:
    """Energy efficiency."""
    if power_w <= 0:
        raise ConfigurationError("power must be positive")
    return achieved_tops / power_w


def tops_per_tco(
    achieved_tops: float, area_mm2: float, power_w: float
) -> float:
    """Cost efficiency: TOPS / (mm^4 * Watt)."""
    if area_mm2 <= 0 or power_w <= 0:
        raise ConfigurationError("area and power must be positive")
    return achieved_tops / (area_mm2**2 * power_w)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean — the paper's average for ratio metrics."""
    values = list(values)
    if not values:
        raise ConfigurationError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def positive_geomean(values: Iterable[float], field: str = "values") -> float:
    """Geomean that rejects non-positive or non-finite inputs loudly.

    The sweep's averaged metrics (utilization, TOPS/Watt, TOPS/TCO) are
    ratios of physical quantities — a zero, negative, NaN, or infinite
    entry means an upstream model leaked a nonsensical value, and the
    guardrails should see it as a :class:`~repro.errors.NumericalError`
    attributed to the offending entry, never a silently clamped floor.
    """
    values = list(values)
    if not values:
        raise ConfigurationError(f"geomean of an empty sequence ({field})")
    for i, value in enumerate(values):
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or math.isnan(value)
            or math.isinf(value)
            or value <= 0
        ):
            raise NumericalError(
                f"{field}[{i}]",
                value,
                "geometric mean needs finite positive values",
            )
    return geomean(values)


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean — the paper's average for throughput."""
    values = list(values)
    if not values:
        raise ConfigurationError("mean of an empty sequence")
    return sum(values) / len(values)
