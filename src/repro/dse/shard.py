"""Sharded, crash-safe sweep execution across independent processes.

The journal layer (:mod:`repro.dse.journal`) already makes *one* process
crash-safe: finished points are fsynced line by line and a resumed run
re-queues only the remainder.  This module scales that contract to a
fleet: a grid is partitioned into shards, any worker — on any machine
sharing the filesystem — claims shard *i/n*, journals independently, and
a verified merge rebuilds the single-process report bit for bit.

Three artifacts, all next to each other under one journal directory:

* **Shard manifest** (``build_manifest`` / :class:`ShardManifest`) — a
  content-addressed JSON file fixing the sweep recipe: the full point
  list, the workload names and batches, balanced per-shard index ranges,
  a per-shard digest of each range's points, and a ``sweep_digest``
  derived via :mod:`repro.cache.keys` (version-salted, so shards run
  under a different package version can never be merged silently).  The
  file carries its own digest and refuses to load after tampering.
* **Lease files** (:class:`ShardLease`) — ``journal.shard-i.jsonl.lease``
  JSON records with wall-clock heartbeat timestamps, refreshed as points
  finish.  A coordinator (or a later run) distinguishes *in-progress*
  (fresh heartbeat from a live owner), *abandoned* (stale heartbeat, or
  a dead pid on this host — the fast path after a SIGKILL), and
  *complete* shards; abandoned leases are reclaimed and the re-run
  resumes from the shard journal, re-evaluating only the missing points.
* **Verified merge** (:func:`merge_journals`) — rebuilds one
  :class:`~repro.dse.engine.SweepReport` from every shard journal.
  Cross-shard duplicates with *divergent* payloads are an integrity
  failure (:class:`~repro.errors.InvariantViolation` with per-field
  :class:`~repro.integrity.Violation` rows), never last-writer-wins;
  missing points are reported against the manifest; a journal whose
  header digest does not match the manifest is a typed
  :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import json
import os
import socket
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cache.keys import short_hash
from repro.dse.engine import (
    SweepReport,
    WorkerPool,
    record_from_journal_entry,
    run_sweep,
)
from repro.dse.journal import (
    JournalEntry,
    journal_header,
    load_journal,
)
from repro.dse.space import DesignPoint
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ShardLeaseHeldError,
)

MANIFEST_VERSION = 1
LEASE_VERSION = 1

#: A lease whose heartbeat is older than this is reclaimable by default.
DEFAULT_STALE_AFTER_S = 60.0

#: Minimum seconds between heartbeat rewrites (each is a fsynced replace).
HEARTBEAT_INTERVAL_S = 2.0

#: Shard lifecycle states reported by :func:`shard_status`.
SHARD_PENDING = "pending"
SHARD_IN_PROGRESS = "in-progress"
SHARD_ABANDONED = "abandoned"
SHARD_COMPLETE = "complete"


def _wall_now() -> float:
    """Wall-clock seconds for lease heartbeats.

    Leases coordinate *across machines*, so a monotonic clock (whose
    epoch is per-boot) cannot express "this worker was alive 3 seconds
    ago" to anyone else.  This is measurement, not modeling: no modeled
    quantity derives from it.
    """
    return time.time()  # lint: allow(NM302): cross-machine lease heartbeats need the shared wall clock


def _point_list(point: DesignPoint) -> list:
    return [point.x, point.n, point.tx, point.ty]


def sweep_digest(
    points: Sequence[DesignPoint],
    workloads: Sequence[str] = (),
    batches: Sequence[object] = (),
) -> str:
    """Content digest of one sweep recipe (points + workloads + batches).

    Built on :func:`repro.cache.keys.short_hash`, which salts with the
    package version — the same grid swept under a different model version
    gets a different digest, so stale shards can never merge silently.
    """
    return short_hash(
        "sweep",
        [_point_list(p) for p in points],
        list(workloads),
        list(batches),
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the manifest's point list.

    ``start``/``stop`` index the manifest's point list half-open;
    ``digest`` content-addresses exactly those points so a worker can
    verify it is executing the range the manifest intended.
    """

    index: int
    start: int
    stop: int
    digest: str

    @property
    def count(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardManifest:
    """The content-addressed execution plan of one sharded sweep."""

    sweep_digest: str
    points: tuple[DesignPoint, ...]
    shards: tuple[ShardSpec, ...]
    workloads: tuple[str, ...] = ()
    batches: tuple = ()

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_points(self, index: int) -> list[DesignPoint]:
        spec = self.shard(index)
        return list(self.points[spec.start:spec.stop])

    def shard(self, index: int) -> ShardSpec:
        if not 0 <= index < len(self.shards):
            raise ConfigurationError(
                f"shard index must be in [0, {len(self.shards)}), "
                f"got {index}"
            )
        return self.shards[index]

    def journal_name(self, index: int) -> str:
        self.shard(index)
        return f"journal.shard-{index}.jsonl"

    def lease_name(self, index: int) -> str:
        return self.journal_name(index) + ".lease"

    def journal_meta(self, index: int) -> dict:
        """The header meta every shard journal is stamped with."""
        return {
            "sweep_digest": self.sweep_digest,
            "shard": index,
            "shards": self.shard_count,
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        body = {
            "kind": "shard-manifest",
            "version": MANIFEST_VERSION,
            "sweep_digest": self.sweep_digest,
            "workloads": list(self.workloads),
            "batches": list(self.batches),
            "points": [_point_list(p) for p in self.points],
            "shards": [
                {
                    "index": s.index,
                    "start": s.start,
                    "stop": s.stop,
                    "digest": s.digest,
                }
                for s in self.shards
            ],
        }
        body["manifest_digest"] = short_hash("manifest", body)
        return body

    @classmethod
    def from_dict(cls, payload: object) -> "ShardManifest":
        """Rebuild and *verify* a manifest from its JSON form.

        Every digest is recomputed — the manifest's own, each shard's,
        and the sweep digest.  A sweep-digest mismatch also fires when
        the manifest was produced by a different package version (the
        digest is version-salted), which is exactly when merging its
        shards would be wrong.

        Raises:
            ConfigurationError: malformed, tampered, or version-skewed
                manifest.
        """
        if not isinstance(payload, dict) or \
                payload.get("kind") != "shard-manifest":
            raise ConfigurationError(
                "not a shard manifest (missing kind == 'shard-manifest')"
            )
        body = {k: v for k, v in payload.items() if k != "manifest_digest"}
        expected = short_hash("manifest", body)
        if payload.get("manifest_digest") != expected:
            raise ConfigurationError(
                "shard manifest digest mismatch: the file was edited or "
                "damaged after it was written"
            )
        try:
            points = tuple(
                DesignPoint(int(x), int(n), int(tx), int(ty))
                for x, n, tx, ty in payload["points"]
            )
            workloads = tuple(str(w) for w in payload["workloads"])
            batches = tuple(payload["batches"])
            shards = tuple(
                ShardSpec(
                    index=int(s["index"]),
                    start=int(s["start"]),
                    stop=int(s["stop"]),
                    digest=str(s["digest"]),
                )
                for s in payload["shards"]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed shard manifest: {error}"
            ) from error
        manifest = cls(
            sweep_digest=str(payload["sweep_digest"]),
            points=points,
            shards=shards,
            workloads=workloads,
            batches=batches,
        )
        manifest._verify()
        return manifest

    def _verify(self) -> None:
        expected = sweep_digest(self.points, self.workloads, self.batches)
        if self.sweep_digest != expected:
            raise ConfigurationError(
                "sweep digest mismatch: this manifest describes a "
                "different grid/recipe or was written by a different "
                "package version; re-partition the sweep instead of "
                "mixing shards across versions"
            )
        cursor = 0
        for position, spec in enumerate(self.shards):
            if spec.index != position or spec.start != cursor \
                    or spec.stop < spec.start:
                raise ConfigurationError(
                    f"shard ranges are not contiguous at shard {position}"
                )
            cursor = spec.stop
            chunk = self.points[spec.start:spec.stop]
            if spec.digest != _shard_digest(spec.index, chunk):
                raise ConfigurationError(
                    f"shard {position} point digest mismatch"
                )
        if cursor != len(self.points):
            raise ConfigurationError(
                f"shard ranges cover {cursor} of {len(self.points)} points"
            )

    def write(self, path: "str | os.PathLike") -> str:
        """Atomically write the manifest JSON; returns the path."""
        target = os.fspath(path)
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{target}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "ShardManifest":
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read shard manifest {os.fspath(path)}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"shard manifest {os.fspath(path)} is not valid JSON: "
                f"{error}"
            ) from error
        return cls.from_dict(payload)


def _shard_digest(index: int, points: Sequence[DesignPoint]) -> str:
    return short_hash("shard", index, [_point_list(p) for p in points])


def build_manifest(
    points: Sequence[DesignPoint],
    shards: int,
    workloads: Sequence[str] = (),
    batches: Sequence[object] = (),
) -> ShardManifest:
    """Partition a grid into ``shards`` balanced contiguous shards.

    The partition is deterministic in the input order: shard sizes differ
    by at most one point (the first ``len(points) % shards`` shards get
    the extra), so any worker recomputing the manifest from the same
    recipe gets byte-identical shard assignments.

    Raises:
        ConfigurationError: no points, or more shards than points.
    """
    points = list(points)
    if not points:
        raise ConfigurationError("cannot shard an empty sweep")
    if not 1 <= shards <= len(points):
        raise ConfigurationError(
            f"shard count must be in [1, {len(points)}] for "
            f"{len(points)} points, got {shards}"
        )
    if len(set(points)) != len(points):
        raise ConfigurationError(
            "the point list contains duplicates; shard journals key "
            "finished work by point, so each point must appear once"
        )
    base, extra = divmod(len(points), shards)
    specs = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunk = points[cursor:cursor + size]
        specs.append(ShardSpec(
            index=index,
            start=cursor,
            stop=cursor + size,
            digest=_shard_digest(index, chunk),
        ))
        cursor += size
    return ShardManifest(
        sweep_digest=sweep_digest(points, workloads, batches),
        points=tuple(points),
        shards=tuple(specs),
        workloads=tuple(str(w) for w in workloads),
        batches=tuple(batches),
    )


# -- leases ---------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, ValueError):
        return False
    return True


@dataclass(frozen=True)
class LeaseState:
    """One lease file's interpreted state at a point in time."""

    state: str  # pending | in-progress | abandoned | complete
    payload: Optional[dict] = None

    def holder(self) -> str:
        if not self.payload:
            return "nobody"
        age = self.payload.get("_heartbeat_age_s")
        age_text = f", heartbeat {age:.1f}s ago" if age is not None else ""
        return (
            f"pid {self.payload.get('pid')} on "
            f"{self.payload.get('host')}{age_text}"
        )


def read_lease(
    path: "str | os.PathLike",
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> LeaseState:
    """Interpret one lease file: pending/in-progress/abandoned/complete.

    A lease is *abandoned* (reclaimable) when its heartbeat is older
    than ``stale_after_s``, or — the fast path after a SIGKILL — when it
    was taken on this host by a pid that no longer exists.  An
    unreadable or torn lease file is treated as abandoned too: the
    journal next to it, not the lease, is the source of truth for
    finished work.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return LeaseState(SHARD_PENDING)
    except (OSError, json.JSONDecodeError):
        return LeaseState(SHARD_ABANDONED)
    if not isinstance(payload, dict):
        return LeaseState(SHARD_ABANDONED)
    if payload.get("complete"):
        return LeaseState(SHARD_COMPLETE, payload)
    age = _wall_now() - float(payload.get("heartbeat_at", 0.0))
    payload = dict(payload)
    payload["_heartbeat_age_s"] = age
    if payload.get("host") == socket.gethostname():
        try:
            pid = int(payload.get("pid", -1))
        except (TypeError, ValueError):
            pid = -1
        if not _pid_alive(pid):
            return LeaseState(SHARD_ABANDONED, payload)
    if age > stale_after_s:
        return LeaseState(SHARD_ABANDONED, payload)
    return LeaseState(SHARD_IN_PROGRESS, payload)


class ShardLease:
    """Ownership of one shard, heartbeated next to its journal.

    The lease is advisory but atomic where it matters: a *pending* shard
    is claimed with ``O_CREAT | O_EXCL`` (two simultaneous claimants on
    one filesystem cannot both win), an *abandoned* one is reclaimed
    with an atomic replace, and every heartbeat is a tmp-write plus
    ``os.replace`` so readers never see a torn lease.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        shard: int,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
    ):
        self.path = os.fspath(path)
        self.shard = shard
        self.stale_after_s = stale_after_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.acquired = False
        self._last_beat = 0.0  # monotonic; rate-limits rewrites

    def _payload(self, complete: bool = False) -> dict:
        now = _wall_now()
        return {
            "kind": "shard-lease",
            "version": LEASE_VERSION,
            "shard": self.shard,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": now,
            "heartbeat_at": now,
            "complete": complete,
        }

    def _write(self, payload: dict) -> None:
        tmp = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def acquire(self) -> "ShardLease":
        """Claim the shard, reclaiming an abandoned or complete lease.

        Raises:
            ShardLeaseHeldError: a live owner is heartbeating the shard.
        """
        state = read_lease(self.path, self.stale_after_s)
        if state.state == SHARD_IN_PROGRESS:
            raise ShardLeaseHeldError(
                f"shard {self.shard} lease is held by {state.holder()}; "
                "claim a different shard or wait for the heartbeat to "
                f"go stale (> {self.stale_after_s:g}s)",
                shard=self.shard,
                holder=state.holder(),
            )
        payload = self._payload()
        if state.state == SHARD_PENDING:
            # Fresh claim: O_EXCL so simultaneous claimants cannot both win.
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            try:
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                fresh = read_lease(self.path, self.stale_after_s)
                raise ShardLeaseHeldError(
                    f"shard {self.shard} was claimed concurrently by "
                    f"{fresh.holder()}",
                    shard=self.shard,
                    holder=fresh.holder(),
                ) from None
            try:
                os.write(
                    fd,
                    (json.dumps(payload, sort_keys=True) + "\n").encode(),
                )
                os.fsync(fd)
            finally:
                os.close(fd)
        else:
            # Abandoned (or previously complete): reclaim atomically.
            self._write(payload)
        self.acquired = True
        self._last_beat = time.monotonic()
        return self

    def heartbeat(self, force: bool = False) -> None:
        """Refresh the heartbeat timestamp (rate-limited, fsynced)."""
        if not self.acquired:
            return
        now = time.monotonic()
        if not force and now - self._last_beat < self.heartbeat_interval_s:
            return
        payload = self._payload()
        self._write(payload)
        self._last_beat = now

    def release(self, complete: bool) -> None:
        """Mark the shard complete, or abandon it for the next claimant."""
        if not self.acquired:
            return
        if complete:
            self._write(self._payload(complete=True))
        else:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
        self.acquired = False

    def __enter__(self) -> "ShardLease":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.acquired:
            self.release(complete=False)


# -- shard execution ------------------------------------------------------------


def _resolve_workloads(names: Sequence[str]) -> tuple:
    from repro.cli import _WORKLOADS

    pairs = []
    for name in names:
        if name not in _WORKLOADS:
            raise ConfigurationError(
                f"manifest names unknown workload {name!r}; choose from "
                f"{sorted(_WORKLOADS)}"
            )
        pairs.append((name, _WORKLOADS[name]()))
    return tuple(pairs)


def _check_journal_provenance(
    journal_path: str, manifest: ShardManifest, index: int
) -> None:
    """An existing shard journal must carry this manifest's digest."""
    if not os.path.exists(journal_path) or \
            os.path.getsize(journal_path) == 0:
        return
    header = journal_header(journal_path)
    meta = (header or {}).get("meta") or {}
    digest = meta.get("sweep_digest")
    if digest is None:
        raise ConfigurationError(
            f"journal {journal_path} has no sweep digest in its header; "
            "it was not written by a shard worker and cannot be verified "
            "against the manifest"
        )
    if digest != manifest.sweep_digest:
        raise ConfigurationError(
            f"journal {journal_path} was written for sweep digest "
            f"{digest}, but the manifest describes {manifest.sweep_digest} "
            "— a different grid, recipe, or package version"
        )
    shard = meta.get("shard")
    if shard is not None and int(shard) != index:
        raise ConfigurationError(
            f"journal {journal_path} belongs to shard {shard}, "
            f"not shard {index}"
        )


def run_shard(
    manifest: ShardManifest,
    index: int,
    journal_dir: "str | os.PathLike",
    *,
    ctx=None,
    backend: str = "auto",
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    pool: Optional[WorkerPool] = None,
    should_abort: Optional[Callable[[], bool]] = None,
    on_record: Optional[Callable] = None,
) -> SweepReport:
    """Claim and execute shard ``index`` of a manifest, journaled.

    Acquires the shard's lease (reclaiming an abandoned one), resumes
    from the shard journal if it exists — re-evaluating only the points
    the previous owner did not finish — heartbeats the lease as points
    complete, and marks the lease complete on success.  A cancelled run
    (``should_abort``) abandons the lease so another worker can pick the
    shard up immediately; the journal keeps everything finished.

    Raises:
        ShardLeaseHeldError: a live worker owns the shard.
        ConfigurationError: the journal on disk belongs to a different
            sweep/manifest, or the options are invalid.
    """
    journal_dir = os.fspath(journal_dir)
    os.makedirs(journal_dir, exist_ok=True)
    journal_path = os.path.join(journal_dir, manifest.journal_name(index))
    _check_journal_provenance(journal_path, manifest, index)
    lease = ShardLease(
        os.path.join(journal_dir, manifest.lease_name(index)),
        shard=index,
        stale_after_s=stale_after_s,
    )
    lease.acquire()

    def _on_record(record) -> None:
        lease.heartbeat()
        if on_record is not None:
            on_record(record)

    completed = False
    try:
        report = run_sweep(
            manifest.shard_points(index),
            _resolve_workloads(manifest.workloads),
            manifest.batches,
            ctx,
            backend=backend,
            jobs=jobs,
            timeout_s=timeout_s,
            chunk_size=chunk_size,
            strict=False,
            journal_path=journal_path,
            resume=True,
            journal_meta=manifest.journal_meta(index),
            on_record=_on_record,
            pool=pool,
            should_abort=should_abort,
        )
        completed = not report.cancelled
        return report
    finally:
        lease.release(complete=completed)


def shard_status(
    manifest: ShardManifest,
    journal_dir: "str | os.PathLike",
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> list[dict]:
    """Per-shard progress: state, finished/expected counts, holder.

    ``state`` is ``pending`` (never started), ``in-progress`` (live
    heartbeat), ``abandoned`` (stale heartbeat or dead local pid —
    claimable), or ``complete`` (lease marked done, or every expected
    point journaled).
    """
    journal_dir = os.fspath(journal_dir)
    rows = []
    for spec in manifest.shards:
        expected = set(manifest.shard_points(spec.index))
        journal_path = os.path.join(
            journal_dir, manifest.journal_name(spec.index)
        )
        finished: set[DesignPoint] = set()
        if os.path.exists(journal_path):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    entries = load_journal(journal_path, salvage=True)
                except OSError:
                    entries = []
            finished = {e.point for e in entries} & expected
        lease = read_lease(
            os.path.join(journal_dir, manifest.lease_name(spec.index)),
            stale_after_s,
        )
        state = lease.state
        if finished == expected and expected:
            state = SHARD_COMPLETE
        elif state == SHARD_COMPLETE:
            # Lease says done but the journal disagrees: claimable again.
            state = SHARD_ABANDONED
        elif state == SHARD_PENDING and finished:
            # Progress exists but nobody owns the shard.
            state = SHARD_ABANDONED
        rows.append({
            "shard": spec.index,
            "state": state,
            "finished": len(finished),
            "expected": len(expected),
            "holder": (
                lease.holder()
                if lease.state == SHARD_IN_PROGRESS else None
            ),
        })
    return rows


def claimable_shards(
    manifest: ShardManifest,
    journal_dir: "str | os.PathLike",
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> list[int]:
    """Shard indices a new worker could claim right now, in order."""
    return [
        row["shard"]
        for row in shard_status(manifest, journal_dir, stale_after_s)
        if row["state"] in (SHARD_PENDING, SHARD_ABANDONED)
    ]


# -- verified merge -------------------------------------------------------------


@dataclass(frozen=True)
class MergeOutcome:
    """The result of merging every shard journal against a manifest.

    ``report`` holds one journal-rehydrated record per finished point in
    manifest order; ``missing`` lists manifest points no journal
    finished; ``duplicates`` counts points journaled by more than one
    shard with *identical* payloads (divergent payloads raise instead);
    ``salvaged_lines`` counts corrupt mid-file lines skipped under
    salvage.
    """

    report: SweepReport
    missing: tuple[DesignPoint, ...] = ()
    duplicates: int = 0
    salvaged_lines: int = 0

    @property
    def complete(self) -> bool:
        return not self.missing

    def summary(self) -> str:
        text = self.report.summary()
        if self.missing:
            text += f"; {len(self.missing)} missing vs manifest"
        if self.duplicates:
            text += f"; {self.duplicates} duplicate point(s)"
        if self.salvaged_lines:
            text += f"; {self.salvaged_lines} corrupt line(s) salvaged"
        return text


def _entry_signature(entry: JournalEntry) -> dict:
    """The divergence-relevant payload of one journal entry.

    Wall time, attempt count, and cache counters legitimately differ
    between two runs of the same point; results, status, failures, and
    fallback routing may not.
    """
    failure = None
    if entry.failure:
        failure = {
            key: entry.failure.get(key)
            for key in ("stage", "error_type", "message", "degraded")
        }
    return {
        "status": entry.status,
        "metrics": entry.metrics,
        "failure": failure,
        "fallback": entry.fallback,
    }


def merge_journals(
    manifest: ShardManifest,
    journal_dir: "str | os.PathLike",
    salvage: bool = True,
) -> MergeOutcome:
    """Rebuild one verified :class:`SweepReport` from all shard journals.

    Every journal's header digest is checked against the manifest before
    a single line is trusted; entries are deduplicated by point, and two
    journals disagreeing about one point's *results* is an integrity
    failure — the merge refuses to pick a winner.

    Raises:
        ConfigurationError: a journal belongs to a different sweep
            digest (grid, recipe, or package version skew), or carries
            no verifiable header.
        InvariantViolation: cross-shard duplicate points with divergent
            payloads, or journaled points absent from the manifest —
            with one :class:`~repro.integrity.Violation` line per
            disagreeing field.
    """
    from repro.integrity import Violation, diff_payloads

    journal_dir = os.fspath(journal_dir)
    expected = set(manifest.points)
    chosen: dict[DesignPoint, JournalEntry] = {}
    sources: dict[DesignPoint, int] = {}
    violations: list[Violation] = []
    duplicates = 0
    salvaged = 0
    for spec in manifest.shards:
        journal_path = os.path.join(
            journal_dir, manifest.journal_name(spec.index)
        )
        if not os.path.exists(journal_path):
            continue  # entirely missing shard: reported via `missing`
        _check_journal_provenance(journal_path, manifest, spec.index)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            entries = load_journal(journal_path, salvage=salvage)
        for warning in caught:
            if "salvage:" in str(warning.message):
                salvaged += 1
            warnings.warn(
                str(warning.message), RuntimeWarning, stacklevel=2
            )
        for entry in entries:
            point = entry.point
            if point not in expected:
                violations.append(Violation(
                    invariant="shard-foreign-point",
                    path=f"shard {spec.index}",
                    message=(
                        f"journaled point {point.label()} is not in "
                        "the manifest"
                    ),
                ))
                continue
            if point not in chosen:
                chosen[point] = entry
                sources[point] = spec.index
                continue
            first_sig = _entry_signature(chosen[point])
            second_sig = _entry_signature(entry)
            if first_sig == second_sig:
                duplicates += 1
                continue
            violations.extend(diff_payloads(
                (
                    f"{point.label()} (shard {sources[point]} vs "
                    f"shard {spec.index})"
                ),
                first_sig,
                second_sig,
                invariant="shard-divergence",
            ))
    if violations:
        lines = tuple(v.describe() for v in violations)
        raise InvariantViolation(
            f"shard merge found {len(lines)} integrity violation(s): "
            "cross-shard journals disagree and no winner will be picked; "
            "re-run the offending shards against the manifest",
            violations=lines,
        )
    records = tuple(
        record_from_journal_entry(chosen[point])
        for point in manifest.points
        if point in chosen
    )
    missing = tuple(p for p in manifest.points if p not in chosen)
    return MergeOutcome(
        report=SweepReport(records=records),
        missing=missing,
        duplicates=duplicates,
        salvaged_lines=salvaged,
    )
