"""Pareto-front utilities for multi-objective design comparison."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    items: Sequence[T], objectives: Sequence[Callable[[T], float]]
) -> list[T]:
    """Items not dominated on the given maximize-objectives.

    An item is dominated when another item is at least as good on every
    objective and strictly better on one.
    """
    front: list[T] = []
    for candidate in items:
        candidate_scores = [f(candidate) for f in objectives]
        dominated = False
        for other in items:
            if other is candidate:
                continue
            other_scores = [f(other) for f in objectives]
            if all(o >= c for o, c in zip(other_scores, candidate_scores)) and any(
                o > c for o, c in zip(other_scores, candidate_scores)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
