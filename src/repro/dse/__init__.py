"""Design-space exploration: the Sec. III brawny-vs-wimpy study."""

from repro.dse.space import (
    DesignPoint,
    design_space,
    named_points,
    max_core_point,
)
from repro.dse.metrics import geomean, tops_per_tco, tops_per_watt
from repro.dse.sweep import DesignPointResult, evaluate_point, sweep
from repro.dse.engine import (
    PointFailure,
    PointRecord,
    SweepReport,
    run_sweep,
)
from repro.dse.guardrails import validate_result
from repro.dse.journal import Journal, JournalEntry, SummaryResult, load_journal
from repro.dse.pareto import pareto_front
from repro.dse.edge import edge_design_point, edge_sweep, evaluate_edge_point
from repro.dse.sparsity_study import sparsity_sweep
from repro.dse.optimizer import Constraints, Objective, optimize_design
from repro.dse.cost import CostModel, tops_per_dollar
from repro.dse.sensitivity import (
    perturbed_calibration,
    stability_summary,
    winner_stability,
)

__all__ = [
    "Constraints",
    "CostModel",
    "DesignPoint",
    "DesignPointResult",
    "design_space",
    "edge_design_point",
    "edge_sweep",
    "evaluate_edge_point",
    "evaluate_point",
    "geomean",
    "Journal",
    "JournalEntry",
    "load_journal",
    "max_core_point",
    "named_points",
    "Objective",
    "optimize_design",
    "pareto_front",
    "perturbed_calibration",
    "PointFailure",
    "PointRecord",
    "run_sweep",
    "stability_summary",
    "SummaryResult",
    "sparsity_sweep",
    "sweep",
    "SweepReport",
    "validate_result",
    "winner_stability",
    "tops_per_dollar",
    "tops_per_tco",
    "tops_per_watt",
]
