"""Design-point evaluation: chip modeling + workload simulation + metrics.

For every design point this produces what Figs. 8 and 10 plot: die area
and TDP (with breakdowns), peak TOPS and peak efficiencies, and — per
batch-size regime — the workload-averaged achieved TOPS, TU utilization,
energy efficiency (TOPS/Watt on *runtime* power), and cost efficiency
(TOPS/TCO).
"""

from __future__ import annotations

from contextlib import contextmanager, suppress
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.arch.component import Estimate, ModelContext
from repro.config.presets import datacenter_context
from repro.dse.metrics import (
    arithmetic_mean,
    positive_geomean,
    tops_per_tco,
    tops_per_watt,
)
from repro.dse.space import DesignPoint
from repro.perf.graph import Graph
from repro.perf.simulator import (
    DEFAULT_LATENCY_SLO_MS,
    SimulationResult,
    Simulator,
)
from repro.power.runtime import runtime_power


@dataclass(frozen=True)
class WorkloadOutcome:
    """One workload at one batch regime on one design point.

    ``regime`` is the batch *specification* ("bs=1", "latency-bound",
    "bs=256"); ``batch`` is the resolved batch size actually simulated.
    """

    workload: str
    batch: int
    regime: str
    result: SimulationResult
    runtime_power_w: float

    @property
    def achieved_tops(self) -> float:
        return self.result.achieved_tops

    @property
    def utilization(self) -> float:
        return self.result.utilization

    @property
    def energy_efficiency(self) -> float:
        return tops_per_watt(self.result.achieved_tops, self.runtime_power_w)


@dataclass(frozen=True)
class DesignPointResult:
    """Everything the study needs to know about one design point.

    Attributes:
        point: The (X, N, Tx, Ty) tuple.
        area_mm2 / tdp_w / peak_tops: Chip-level numbers (Fig. 8).
        estimate: Full breakdown tree.
        outcomes: Per-(workload, batch) simulation outcomes (Fig. 10).
    """

    point: DesignPoint
    area_mm2: float
    tdp_w: float
    peak_tops: float
    estimate: Estimate
    outcomes: tuple[WorkloadOutcome, ...] = field(default_factory=tuple)

    # -- peak (Fig. 8) metrics ---------------------------------------------------

    @property
    def peak_tops_per_watt(self) -> float:
        return tops_per_watt(self.peak_tops, self.tdp_w)

    @property
    def peak_tops_per_tco(self) -> float:
        return tops_per_tco(self.peak_tops, self.area_mm2, self.tdp_w)

    # -- averaged runtime (Fig. 10) metrics ---------------------------------------

    def _at_batch(
        self, batch: Optional[object]
    ) -> list[WorkloadOutcome]:
        """Outcomes of one regime: an int batch, "latency-bound", or all."""
        if batch is None:
            return list(self.outcomes)
        regime = batch if batch == "latency-bound" else f"bs={batch}"
        return [o for o in self.outcomes if o.regime == regime]

    def mean_achieved_tops(self, batch: Optional[int] = None) -> float:
        """Arithmetic mean of achieved TOPS over workloads."""
        outcomes = self._at_batch(batch)
        return arithmetic_mean([o.achieved_tops for o in outcomes])

    def mean_utilization(self, batch: Optional[int] = None) -> float:
        """Geometric mean of TU utilization over workloads.

        Raises :class:`~repro.errors.NumericalError` when any outcome
        carries a non-positive utilization — a zero here means the
        simulator produced a nonsensical row that the guardrails should
        reject, not a value to clamp away.
        """
        outcomes = self._at_batch(batch)
        return positive_geomean(
            [o.utilization for o in outcomes], field="utilization"
        )

    def mean_energy_efficiency(self, batch: Optional[int] = None) -> float:
        """Geometric mean of achieved TOPS/Watt (runtime power)."""
        outcomes = self._at_batch(batch)
        return positive_geomean(
            [o.energy_efficiency for o in outcomes],
            field="energy_efficiency",
        )

    def mean_cost_efficiency(self, batch: Optional[int] = None) -> float:
        """Geometric mean of achieved TOPS/TCO."""
        outcomes = self._at_batch(batch)
        return positive_geomean(
            [
                tops_per_tco(
                    o.achieved_tops, self.area_mm2, o.runtime_power_w
                )
                for o in outcomes
            ],
            field="cost_efficiency",
        )


@contextmanager
def _stage(name: str) -> Iterator[None]:
    """Tag exceptions escaping this block with the evaluation stage.

    The sweep engine uses the tag to attribute a failure to the
    build/estimate/simulate/power stage without re-deriving it from the
    exception type.
    """
    try:
        yield
    except Exception as error:
        if getattr(error, "stage", None) is None:
            # Exceptions with __slots__ reject the attribute; the stage
            # tag is best-effort either way.
            with suppress(Exception):
                error.stage = name  # type: ignore[attr-defined]
        raise


def evaluate_point(
    point: DesignPoint,
    workloads: Sequence[tuple[str, Graph]] = (),
    batches: Iterable[object] = (),
    ctx: Optional[ModelContext] = None,
    latency_slo_ms: float = DEFAULT_LATENCY_SLO_MS,
) -> DesignPointResult:
    """Model one design point and simulate the given workloads on it.

    Args:
        point: The design tuple.
        workloads: (name, graph) pairs.
        batches: Batch sizes; integers, or the string ``"latency-bound"``
            for the per-workload 10 ms SLO batch of Fig. 10(b).
        ctx: Technology/clock context (Table I's by default).
        latency_slo_ms: SLO for the latency-bound batch.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    with _stage("build"):
        chip = point.build()
    with _stage("estimate"):
        estimate = chip.estimate(ctx)
        tdp_w = chip.tdp_w(ctx)
        peak_tops = chip.peak_tops(ctx)
    outcomes: list[WorkloadOutcome] = []
    if workloads:
        simulator = Simulator(chip, ctx)
        for batch_spec in batches:
            for name, graph in workloads:
                with _stage("simulate"):
                    if batch_spec == "latency-bound":
                        batch = simulator.latency_limited_batch(
                            graph, slo_ms=latency_slo_ms
                        )
                    else:
                        batch = int(batch_spec)  # type: ignore[arg-type]
                    result = simulator.run(graph, batch)
                with _stage("power"):
                    power = runtime_power(
                        chip, ctx, result.activity
                    ).total_w
                regime = (
                    "latency-bound"
                    if batch_spec == "latency-bound"
                    else f"bs={batch}"
                )
                outcomes.append(
                    WorkloadOutcome(
                        workload=name,
                        batch=batch,
                        regime=regime,
                        result=result,
                        runtime_power_w=power,
                    )
                )
    return DesignPointResult(
        point=point,
        area_mm2=estimate.area_mm2,
        tdp_w=tdp_w,
        peak_tops=peak_tops,
        estimate=estimate,
        outcomes=tuple(outcomes),
    )


def sweep(
    points: Sequence[DesignPoint],
    workloads: Sequence[tuple[str, Graph]] = (),
    batches: Iterable[object] = (),
    ctx: Optional[ModelContext] = None,
    *,
    backend: str = "scalar",
) -> list[DesignPointResult]:
    """Evaluate a list of design points (the Fig. 8 / Fig. 10 sweeps).

    Delegates to the fault-tolerant engine in strict single-process mode,
    so the historical contract is preserved: points are evaluated in
    order and the first failure raises.  ``backend`` selects the
    estimation path (``"scalar"``, ``"vector"``, or ``"auto"``; see
    :func:`repro.dse.engine.run_sweep`).  For fault isolation, process
    parallelism, per-point timeouts, and checkpoint/resume use
    :func:`repro.dse.engine.run_sweep` directly.
    """
    from repro.dse.engine import run_sweep

    report = run_sweep(
        points, workloads, batches, ctx=ctx, backend=backend, jobs=1,
        strict=True,
    )
    return list(report.results)
