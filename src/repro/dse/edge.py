"""Edge-inference design space (the intro's "cloud to edge" breadth).

The paper's case study covers the datacenter end; this module applies the
same methodology at the edge operating point: a few-watt TDP budget, tens
of mm^2 of silicon, LPDDR-class off-chip bandwidth, and MobileNet-class
workloads.  The design knobs are the same (TU length, TUs per core, core
count), just smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.arch.chip import Chip, ChipConfig
from repro.arch.component import ModelContext
from repro.arch.core import CoreConfig
from repro.arch.memory import OnChipMemoryConfig
from repro.arch.periph import DramKind, PcieInterface
from repro.arch.tensor_unit import SystolicCellConfig, TensorUnitConfig
from repro.datatypes import INT8
from repro.errors import ConfigurationError
from repro.perf.graph import Graph
from repro.perf.simulator import Simulator
from repro.power.runtime import runtime_power
from repro.tech.node import node
from repro.units import MiB

#: Edge budget: area and power of a phone/camera-class accelerator block.
EDGE_AREA_BUDGET_MM2 = 25.0
EDGE_POWER_BUDGET_W = 4.0
EDGE_TECH_NM = 16
EDGE_FREQ_GHZ = 0.8
EDGE_MEM_BYTES = 2 * MiB
EDGE_OFFCHIP_GBPS = 12.8  # one LPDDR4x channel

EDGE_TU_LENGTHS = (4, 8, 16, 32)
EDGE_TUS_PER_CORE = (1, 2)
EDGE_CORE_GRIDS = ((1, 1), (1, 2), (2, 2))


def edge_design_point(
    tu_length: int, tus_per_core: int, cores_x: int, cores_y: int
) -> Chip:
    """Build one edge design point (int8 TUs, LPDDR-class interfaces)."""
    if tu_length < 1:
        raise ConfigurationError("TU length must be positive")
    cores = cores_x * cores_y
    if cores < 1:
        raise ConfigurationError("need at least one core")
    tu = TensorUnitConfig(
        rows=tu_length,
        cols=tu_length,
        cell=SystolicCellConfig(input_dtype=INT8),
    )
    mem = OnChipMemoryConfig(
        capacity_bytes=max(EDGE_MEM_BYTES // cores, 128 * 1024),
        block_bytes=max(tu_length, 16),
        latency_cycles=4,
    )
    core = CoreConfig(
        tu=tu,
        tensor_units=tus_per_core,
        mem=mem,
        scalar_unit_scale=0.5,
    )
    return Chip(
        ChipConfig(
            core=core,
            cores_x=cores_x,
            cores_y=cores_y,
            noc_bisection_gbps=32.0,
            dram=DramKind.DDR4,
            offchip_bandwidth_gbps=EDGE_OFFCHIP_GBPS,
            pcie=PcieInterface(lanes=1, generation=3),
        )
    )


def edge_context() -> ModelContext:
    """The edge operating point: 16 nm at 800 MHz."""
    return ModelContext(tech=node(EDGE_TECH_NM), freq_ghz=EDGE_FREQ_GHZ)


@dataclass(frozen=True)
class EdgePointResult:
    """One edge design point under one workload.

    Attributes:
        label: The (X, N, Tx, Ty) label.
        area_mm2 / tdp_w / peak_tops: Chip-level numbers.
        fps: Frames per second at batch 1 (edge inference is latency
            driven, batch 1 throughout).
        latency_ms: Per-frame latency.
        runtime_power_w: Power while running the workload.
        fps_per_watt: The edge figure of merit.
    """

    label: str
    area_mm2: float
    tdp_w: float
    peak_tops: float
    fps: float
    latency_ms: float
    runtime_power_w: float

    @property
    def fps_per_watt(self) -> float:
        return self.fps / self.runtime_power_w

    def fits_budget(self) -> bool:
        return (
            self.area_mm2 <= EDGE_AREA_BUDGET_MM2
            and self.tdp_w <= EDGE_POWER_BUDGET_W
        )


def evaluate_edge_point(
    tu_length: int,
    tus_per_core: int,
    cores_x: int,
    cores_y: int,
    workload: Graph,
    ctx: Optional[ModelContext] = None,
) -> EdgePointResult:
    """Model + simulate one edge point at batch 1."""
    ctx = ctx if ctx is not None else edge_context()
    chip = edge_design_point(tu_length, tus_per_core, cores_x, cores_y)
    result = Simulator(chip, ctx).run(workload, batch=1)
    power = runtime_power(chip, ctx, result.activity).total_w
    return EdgePointResult(
        label=f"({tu_length},{tus_per_core},{cores_x},{cores_y})",
        area_mm2=chip.area_mm2(ctx),
        tdp_w=chip.tdp_w(ctx),
        peak_tops=chip.peak_tops(ctx),
        fps=result.throughput_fps,
        latency_ms=result.latency_ms,
        runtime_power_w=power,
    )


def edge_sweep(
    workload: Graph,
    ctx: Optional[ModelContext] = None,
    tu_lengths: Sequence[int] = EDGE_TU_LENGTHS,
) -> list[EdgePointResult]:
    """Sweep the edge space, keeping only points inside the budget."""
    ctx = ctx if ctx is not None else edge_context()
    results = []
    for x in tu_lengths:
        for n in EDGE_TUS_PER_CORE:
            for cores_x, cores_y in EDGE_CORE_GRIDS:
                result = evaluate_edge_point(
                    x, n, cores_x, cores_y, workload, ctx
                )
                if result.fits_budget():
                    results.append(result)
    return results
