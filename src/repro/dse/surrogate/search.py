"""Budgeted surrogate-guided search with exact verification.

The contract, in one line: **surrogate predictions choose what to
evaluate; only the exact model's numbers are ever reported.**

The loop interleaves three ingredients:

* a proposal source — either a finite candidate *pool* (e.g. the Table I
  grid) ranked by acquisition value, or an evolutionary generator over
  :class:`~repro.dse.space.SpaceAxes` (mutation + crossover around the
  current elite, plus random immigrants) for spaces too large to
  enumerate;
* an acquisition function over the committee's per-member predictions —
  expected improvement for a single objective; for multi-objective runs,
  expected improvement on a ParEGO-style weighted-Chebyshev
  scalarization whose weights are re-drawn (seeded) every round so
  successive rounds chase different regions of the *exact* front;
* the exact evaluator — by default the fault-tolerant sweep engine
  (vector backend, journaled, resumable, abortable), optionally a
  :class:`ShardedEvaluator` that partitions each candidate batch into a
  shard manifest for the fleet.

Every exact evaluation is journaled (rows stamped ``source: "exact"``),
so an interrupted search resumes from its journal and every search
feeds the next training round.  The returned frontier and ranking are
recomputed from exact rows only.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cache.keys import short_hash
from repro.dse.engine import SweepReport, run_sweep
from repro.dse.journal import JournalEntry, journal_header, load_journal
from repro.dse.optimizer import Constraints, Objective, _score_fn
from repro.dse.pareto import pareto_front
from repro.dse.seeding import derive_seed, resolve_seed
from repro.dse.space import DesignPoint, SpaceAxes
from repro.dse.surrogate.features import (
    _require_numpy,
    feature_digest,
    featurize_points,
    training_rows,
)
from repro.dse.surrogate.model import (
    _MIN_TRAINING_ROWS,
    SurrogateModel,
    fit_surrogate,
)
from repro.errors import ConfigurationError, OptimizationError

try:  # pragma: no cover - exercised via the features module's gate
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Default multi-objective axes of the verified frontier (peak metrics).
DEFAULT_PARETO_OBJECTIVES = (
    Objective.PEAK_TOPS,
    Objective.PEAK_TOPS_PER_WATT,
    Objective.PEAK_TOPS_PER_TCO,
)

#: Floor for predicted denominators (area, power) in acquisition math.
_EPS = 1e-9

#: Candidate-pool size per round in axes (generative) mode.
_AXES_CANDIDATES = 384


# -- evaluators -----------------------------------------------------------------


class EngineEvaluator:
    """Exact evaluation through :func:`repro.dse.engine.run_sweep`.

    One journal accumulates every round's evaluations: the first call
    honors the caller's ``resume`` flag (a fresh search truncates, a
    resumed one appends), subsequent calls always append.
    """

    def __init__(
        self,
        *,
        ctx=None,
        workloads: Sequence = (),
        batches: Sequence = (),
        backend: str = "auto",
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        chunk_size: Optional[int] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        journal_meta: Optional[dict] = None,
        should_abort: Optional[Callable[[], bool]] = None,
        latency_slo_ms: Optional[float] = None,
    ):
        self.ctx = ctx
        self.workloads = tuple(workloads)
        self.batches = tuple(batches)
        self.backend = backend
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.chunk_size = chunk_size
        self.journal_path = (
            os.fspath(journal_path) if journal_path is not None else None
        )
        self.journal_meta = journal_meta
        self.should_abort = should_abort
        self.latency_slo_ms = latency_slo_ms
        self._resume = resume

    def __call__(self, points: Sequence[DesignPoint]) -> SweepReport:
        kwargs = {}
        if self.latency_slo_ms is not None:
            kwargs["latency_slo_ms"] = self.latency_slo_ms
        report = run_sweep(
            list(points),
            self.workloads,
            self.batches,
            self.ctx,
            backend=self.backend,
            jobs=self.jobs,
            timeout_s=self.timeout_s,
            chunk_size=self.chunk_size,
            strict=False,
            journal_path=self.journal_path,
            resume=self._resume if self.journal_path else False,
            journal_meta=self.journal_meta,
            should_abort=self.should_abort,
            **kwargs,
        )
        if self.journal_path:
            self._resume = True  # later rounds append, never truncate
        return report


class ShardedEvaluator:
    """Exact evaluation that partitions each batch across shard workers.

    Every candidate batch becomes one content-addressed
    :class:`~repro.dse.shard.ShardManifest` written under
    ``journal_dir`` (``round-<k>-<digest>/manifest.json``), its shards
    are executed — in-process by default, or by any fleet worker that
    picks the manifest up — and the shard journals are merged with the
    verified merge before a single row reaches the search.  Workloads
    are named (manifest recipes are JSON), mirroring the PR 8 fleet
    protocol.
    """

    def __init__(
        self,
        journal_dir: "str | os.PathLike",
        shards: int = 2,
        *,
        ctx=None,
        workload_names: Sequence[str] = (),
        batches: Sequence = (),
        backend: str = "auto",
        jobs: int = 1,
        should_abort: Optional[Callable[[], bool]] = None,
        shard_runner: Optional[Callable] = None,
    ):
        if shards < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {shards}"
            )
        self.journal_dir = os.fspath(journal_dir)
        self.shards = shards
        self.ctx = ctx
        self.workload_names = tuple(str(n) for n in workload_names)
        self.batches = tuple(batches)
        self.backend = backend
        self.jobs = jobs
        self.should_abort = should_abort
        self.shard_runner = shard_runner
        self.rounds = 0
        self.manifests: list[str] = []

    def __call__(self, points: Sequence[DesignPoint]) -> SweepReport:
        from repro.dse.shard import (
            build_manifest,
            merge_journals,
            run_shard,
        )

        points = list(points)
        manifest = build_manifest(
            points,
            min(self.shards, len(points)),
            self.workload_names,
            self.batches,
        )
        round_dir = os.path.join(
            self.journal_dir,
            f"round-{self.rounds:04d}-{manifest.sweep_digest}",
        )
        self.rounds += 1
        manifest_path = manifest.write(
            os.path.join(round_dir, "manifest.json")
        )
        self.manifests.append(manifest_path)
        runner = self.shard_runner
        for index in range(manifest.shard_count):
            if self.should_abort is not None and self.should_abort():
                break
            if runner is not None:
                runner(manifest, index, round_dir)
            else:
                run_shard(
                    manifest,
                    index,
                    round_dir,
                    ctx=self.ctx,
                    backend=self.backend,
                    jobs=self.jobs,
                    should_abort=self.should_abort,
                )
        outcome = merge_journals(manifest, round_dir)
        return SweepReport(
            records=outcome.report.records,
            cancelled=not outcome.complete,
        )


# -- search configuration and result --------------------------------------------


@dataclass(frozen=True)
class SearchResult:
    """The verified outcome of one budgeted search.

    Every row in ``ranking``/``frontier`` came from the exact model
    (``source: "exact"`` in the journal); the surrogate only chose the
    evaluation order.  ``exact_evaluations`` counts the evaluations
    *this run* paid for — journal-rehydrated rows are free.
    """

    objective: Optional[Objective]
    pareto_objectives: tuple[Objective, ...]
    best: Optional[object]
    ranking: tuple = ()
    frontier: tuple = ()
    proposals: tuple[DesignPoint, ...] = ()
    exact_evaluations: int = 0
    total_rows: int = 0
    infeasible: tuple[DesignPoint, ...] = ()
    failures: tuple = ()
    cancelled: bool = False
    model: Optional[SurrogateModel] = None
    fallback_totals: dict = field(default_factory=dict)

    def summary(self) -> str:
        what = (
            self.objective.value
            if self.objective is not None
            else "+".join(o.value for o in self.pareto_objectives)
        )
        text = (
            f"surrogate search [{what}]: {self.exact_evaluations} exact "
            f"evaluations ({self.total_rows} rows total), frontier of "
            f"{len(self.frontier)}"
        )
        if self.best is not None:
            text += f", best {self.best.point.label()}"
        if self.cancelled:
            text += " [cancelled]"
        return text


def search_digest(
    *,
    candidates: Optional[Sequence[DesignPoint]] = None,
    axes: Optional[SpaceAxes] = None,
    workload_names: Sequence[str] = (),
    batches: Sequence = (),
) -> str:
    """Content digest of a search recipe (space + workloads + batches).

    Pool and axes recipes digest differently by construction, and the
    hash is version-salted via :func:`repro.cache.keys.short_hash`, so
    a journal from another recipe or package version is refused on
    resume instead of silently merged.
    """
    if axes is not None:
        space: object = ("axes", axes.descriptor())
    else:
        space = (
            "pool",
            [[p.x, p.n, p.tx, p.ty] for p in candidates or ()],
        )
    return short_hash(
        "surrogate-search", space, list(workload_names), list(batches)
    )


# -- acquisition math -----------------------------------------------------------


def _member_objective(
    objective: Objective, members: "dict[str, np.ndarray]"
) -> "np.ndarray":
    """Derive one objective's (members, N) scores from base predictions.

    Achieved-efficiency objectives use the predicted mean runtime power,
    falling back to the predicted TDP when the training set was
    peak-only — a deliberate acquisition-only approximation: it biases
    *which* points get evaluated, never a reported number.
    """
    peak = members["peak_tops"]
    area = np.maximum(members["area_mm2"], _EPS)
    tdp = np.maximum(members["tdp_w"], _EPS)
    achieved = members["achieved_tops"]
    runtime = members["runtime_power_w"]
    power = np.maximum(np.where(np.isfinite(runtime), runtime, tdp), _EPS)
    if objective is Objective.PEAK_TOPS:
        return peak
    if objective is Objective.PEAK_TOPS_PER_WATT:
        return peak / tdp
    if objective is Objective.PEAK_TOPS_PER_TCO:
        return peak / (area * area * tdp)
    if objective is Objective.ACHIEVED_TOPS:
        return achieved
    if objective is Objective.ACHIEVED_TOPS_PER_WATT:
        return achieved / power
    return achieved / (area * area * power)


def _normal_cdf(z: "np.ndarray") -> "np.ndarray":
    return np.asarray(
        [0.5 * (1.0 + math.erf(float(v) / math.sqrt(2.0))) for v in z]
    )


def _normal_pdf(z: "np.ndarray") -> "np.ndarray":
    return np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def _expected_improvement(
    scores: "np.ndarray", best: float
) -> "np.ndarray":
    """EI of each candidate from its committee score distribution.

    ``scores`` is (members, N); NaN member rows (untrained targets)
    contribute nothing.  Candidates whose every member is NaN get
    ``-inf`` so they are proposed last, never silently preferred.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        mu = np.nanmean(scores, axis=0)
        sigma = np.nanstd(scores, axis=0)
    out = np.full(mu.shape, -np.inf)
    known = np.isfinite(mu)
    if not known.any():
        return out
    mu_k = mu[known]
    sigma_k = np.maximum(sigma[known], 1e-12 + 1e-9 * np.abs(mu_k))
    if not math.isfinite(best):
        # No feasible incumbent yet: exploit the committee mean outright.
        best = float(np.min(mu_k))
    z = (mu_k - best) / sigma_k
    out[known] = sigma_k * (z * _normal_cdf(z) + _normal_pdf(z))
    return out


def _chebyshev_gain(
    member_scores: "list[np.ndarray]",
    exact_scores: "np.ndarray",
    lam: "np.ndarray",
) -> "np.ndarray":
    """Expected improvement on a weighted-Chebyshev scalarization.

    ParEGO-style multi-objective acquisition: ``lam`` is one weight
    vector on the objective simplex (a fresh seeded draw per round, so
    successive rounds chase different regions of the front), and each
    candidate's committee scores are collapsed to the augmented
    Chebyshev scalar ``min_k lam_k z_k + 0.05 sum_k lam_k z_k`` over
    objectives normalized to [0, 1] in log space.  EI is then computed
    against the best *exact* row under the same scalarization — plain
    non-domination acquisition is useless here because with three
    objectives nearly every candidate is non-dominated, which flattens
    the signal into random mutation.

    ``member_scores[k]`` is objective ``k``'s (members, N) predictions;
    ``exact_scores`` is (rows, K) of the exactly evaluated rows.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        logs = [np.log(np.maximum(s, _EPS)) for s in member_scores]
        exact_logs = np.log(np.maximum(exact_scores, _EPS))
    # Normalization bounds per objective: exact rows plus the committee
    # means, so a candidate predicted beyond the front still lands > 1.
    lo, hi = [], []
    for k, member_log in enumerate(logs):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mean_k = np.nanmean(member_log, axis=0)
        pool = np.concatenate([exact_logs[:, k], mean_k[np.isfinite(mean_k)]])
        if pool.size == 0:
            pool = np.asarray([0.0, 1.0])
        lo.append(float(pool.min()))
        hi.append(float(max(pool.max(), pool.min() + 1e-9)))
    scalar = None
    for k, member_log in enumerate(logs):
        z = lam[k] * (member_log - lo[k]) / (hi[k] - lo[k])
        part = z if scalar is None else np.minimum(scalar[0], z)
        total = z if scalar is None else scalar[1] + z
        scalar = (part, total)
    cheb = scalar[0] + 0.05 * scalar[1]  # (members, N)
    if exact_logs.shape[0]:
        ex = None
        for k in range(exact_logs.shape[1]):
            z = lam[k] * (exact_logs[:, k] - lo[k]) / (hi[k] - lo[k])
            ex = (
                (z, z)
                if ex is None
                else (np.minimum(ex[0], z), ex[1] + z)
            )
        best = float(np.max(ex[0] + 0.05 * ex[1]))
    else:
        best = -np.inf
    return _expected_improvement(cheb, best)


# -- proposal generation --------------------------------------------------------


def _sample_axes(
    axes: SpaceAxes, rng: "np.random.Generator", count: int
) -> list[DesignPoint]:
    """Uniform seeded samples over the axes (with replacement, deduped)."""
    nx, nn, ng = axes.axis_sizes()
    picks = {
        (int(ix), int(in_), int(ig))
        for ix, in_, ig in zip(
            rng.integers(0, nx, size=count),
            rng.integers(0, nn, size=count),
            rng.integers(0, ng, size=count),
        )
    }
    return [axes.point_at(*triple) for triple in sorted(picks)]


def _mutate(
    axes: SpaceAxes,
    triple: tuple[int, int, int],
    rng: "np.random.Generator",
) -> tuple[int, int, int]:
    """Neighborhood move: nudge or rejump each axis independently."""
    sizes = axes.axis_sizes()
    out = list(triple)
    for axis in range(3):
        roll = rng.random()
        if roll < 0.45:
            continue  # axis untouched
        if roll < 0.85:
            step = int(rng.integers(1, 3)) * (
                1 if rng.random() < 0.5 else -1
            )
            out[axis] = min(max(out[axis] + step, 0), sizes[axis] - 1)
        else:
            out[axis] = int(rng.integers(0, sizes[axis]))
    return (out[0], out[1], out[2])


def _crossover(
    a: tuple[int, int, int],
    b: tuple[int, int, int],
    rng: "np.random.Generator",
) -> tuple[int, int, int]:
    picks = rng.random(3)
    return tuple(
        a[axis] if picks[axis] < 0.5 else b[axis] for axis in range(3)
    )


def _generate_candidates(
    axes: SpaceAxes,
    elites: Sequence[DesignPoint],
    evaluated: "set[DesignPoint]",
    rng: "np.random.Generator",
    count: int,
) -> list[DesignPoint]:
    """One round's candidate pool: offspring of the elite + immigrants."""
    triples = [axes.indices_of(p) for p in elites if axes.contains(p)]
    seen: set[DesignPoint] = set()
    out: list[DesignPoint] = []

    def _admit(point: DesignPoint) -> None:
        if point not in seen and point not in evaluated:
            seen.add(point)
            out.append(point)

    attempts = 0
    while len(out) < count and attempts < count * 8:
        attempts += 1
        if triples and rng.random() < 0.75:
            if len(triples) >= 2 and rng.random() < 0.4:
                i, j = rng.choice(len(triples), size=2, replace=False)
                child = _crossover(triples[int(i)], triples[int(j)], rng)
            else:
                child = triples[int(rng.integers(0, len(triples)))]
            child = _mutate(axes, child, rng)
            _admit(axes.point_at(*child))
        else:
            for point in _sample_axes(axes, rng, 4):
                _admit(point)
    return out[:count]


# -- the search loop ------------------------------------------------------------


def _is_neighbor(a: DesignPoint, b: DesignPoint) -> bool:
    """Whether two points differ in exactly one design axis."""
    return sum(
        1
        for u, v in zip((a.x, a.n, a.tx, a.ty), (b.x, b.n, b.tx, b.ty))
        if u != v
    ) == 1


def _usable(result, objective: Optional[Objective], batch: int) -> bool:
    """Whether an exact row can be scored on the requested objective."""
    if objective is None or not objective.needs_workloads:
        return True
    regime = f"bs={int(batch)}"
    return any(o.regime == regime for o in result.outcomes)


def surrogate_search(
    objective: Optional[Objective] = None,
    *,
    candidates: Optional[Sequence[DesignPoint]] = None,
    axes: Optional[SpaceAxes] = None,
    eval_budget: int,
    seed: Optional[int] = None,
    ctx=None,
    workloads: Sequence = (),
    batch: int = 1,
    constraints: Constraints = Constraints(),
    pareto_objectives: Sequence[Objective] = DEFAULT_PARETO_OBJECTIVES,
    round_size: Optional[int] = None,
    init_count: Optional[int] = None,
    members: int = 5,
    rounds: int = 48,
    model: Optional[SurrogateModel] = None,
    warm_journals: Sequence["str | os.PathLike"] = (),
    journal_path: Optional["str | os.PathLike"] = None,
    resume: bool = False,
    evaluator: Optional[Callable] = None,
    backend: str = "auto",
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> SearchResult:
    """Run one budgeted surrogate-guided search, exactly verified.

    Args:
        objective: Single objective to maximize, or ``None`` for a pure
            multi-objective (Pareto) search over ``pareto_objectives``.
        candidates: Finite candidate pool (pool mode) — exactly one of
            ``candidates``/``axes`` is required.
        axes: Open space to navigate with mutation/crossover (axes
            mode).
        eval_budget: Maximum exact evaluations the *search* may spend.
            Rows rehydrated from the search's own journal (``resume``)
            count as already spent — an interrupted run finishes the
            remaining budget, a completed one spends nothing more —
            while ``warm_journals`` rows are free training data.
        seed: Run seed (``NEUROMETER_SEED``/0 when omitted); the whole
            search is a deterministic function of (seed, journals).
        ctx / workloads / batch: Modeling context and workload recipe,
            as in :func:`repro.dse.engine.run_sweep`.
        constraints: Exact-row feasibility bounds for ranking/frontier.
        round_size / init_count: Proposals per refit round and initial
            space-filling draws (budget-derived defaults).
        members / rounds: Committee size and boosting rounds per fit.
        model: A pre-trained :class:`SurrogateModel` to steer the first
            rounds (digest-checked against the current context).
        warm_journals: Extra journals whose exact rows seed training.
        journal_path / resume: The search's own journal; every exact
            evaluation is appended (rows stamped ``source: "exact"``)
            and a resumed search re-pays nothing for finished points
            (they are charged against the budget exactly once).
        evaluator: Custom exact evaluator ``points -> SweepReport``
            (e.g. :class:`ShardedEvaluator`); defaults to the engine.
        backend / jobs / timeout_s / should_abort: Engine passthrough;
            ``should_abort`` also stops the proposal loop between
            rounds.

    Raises:
        ConfigurationError: inconsistent arguments, a stale model
            digest, or a resume journal from a different recipe.
        OptimizationError: the budget produced no feasible exact row.
    """
    _require_numpy()
    if (candidates is None) == (axes is None):
        raise ConfigurationError(
            "surrogate_search needs exactly one of candidates= (pool "
            "mode) or axes= (generative mode)"
        )
    if eval_budget < 1:
        raise ConfigurationError(
            f"eval_budget must be >= 1, got {eval_budget}"
        )
    if objective is not None and objective.needs_workloads and not workloads:
        raise ConfigurationError(
            f"objective {objective.value!r} needs workloads to simulate"
        )
    pareto_objectives = tuple(pareto_objectives)
    if objective is not None and objective not in pareto_objectives:
        pareto_objectives = pareto_objectives + (objective,)
    seed = resolve_seed(seed)
    rng = np.random.default_rng(derive_seed(seed, "surrogate-search"))
    digest = feature_digest(ctx)
    if model is not None:
        model.check_digest(digest)

    pool = list(dict.fromkeys(candidates)) if candidates is not None \
        else None
    workload_names = [name for name, _ in workloads]
    batches = [batch] if workloads else []
    recipe = search_digest(
        candidates=pool,
        axes=axes,
        workload_names=workload_names,
        batches=batches,
    )

    # -- prior exact rows: resume journal + warm journals -------------------
    evaluated: dict[DesignPoint, object] = {}
    unusable: list[DesignPoint] = []
    failed: set[DesignPoint] = set()
    training_entries = []
    if journal_path is not None and resume and os.path.exists(journal_path):
        header = journal_header(journal_path) or {}
        meta = header.get("meta") or {}
        prior = meta.get("search_digest")
        if prior is not None and prior != recipe:
            raise ConfigurationError(
                f"journal {os.fspath(journal_path)} belongs to search "
                f"recipe {prior}, not {recipe} — a different space, "
                "workloads, or package version; start a fresh journal"
            )
        for entry in load_journal(journal_path):
            training_entries.append(entry)
            row = entry.summary_result()
            if row is None:
                failed.add(entry.point)
            else:
                evaluated[entry.point] = row
    # Rows in the search's own journal were charged to this budget by
    # the interrupted run: a resumed search finishes the *remaining*
    # budget, and resuming a completed journal spends nothing — it does
    # not quietly extend the search.  Warm journals stay free.
    prior_spent = len(evaluated) + len(failed)
    for path in warm_journals:
        training_entries.extend(load_journal(path))

    if evaluator is None:
        evaluator = EngineEvaluator(
            ctx=ctx,
            workloads=workloads,
            batches=batches,
            backend=backend,
            jobs=jobs,
            timeout_s=timeout_s,
            journal_path=journal_path,
            resume=resume,
            journal_meta={
                "search_digest": recipe,
                "search": {
                    "kind": "surrogate",
                    "seed": seed,
                    "objective": (
                        objective.value if objective is not None else None
                    ),
                    "pareto": [o.value for o in pareto_objectives],
                },
            },
            should_abort=should_abort,
        )

    if round_size is None:
        round_size = max(2, eval_budget // 8)
    if init_count is None:
        init_count = min(
            eval_budget, max(_MIN_TRAINING_ROWS, eval_budget // 4)
        )

    score = (
        _score_fn(objective, batch) if objective is not None else None
    )
    pareto_fns = [_score_fn(o, batch) for o in pareto_objectives]

    def _feasible_rows() -> list:
        rows = []
        for point in sorted(evaluated):
            row = evaluated[point]
            if not _usable(row, objective, batch):
                continue
            if all(_usable(row, o, batch) for o in pareto_objectives) \
                    and constraints.satisfied_by(row):
                rows.append(row)
        return rows

    def _training_matrices():
        points, feats, targets = training_rows(
            training_entries, ctx=ctx, batch=batch
        )
        return points, feats, targets

    spent = 0
    cancelled = False
    proposals: list[DesignPoint] = []
    failures: list = []
    fallback_totals: dict[str, int] = {}
    fitted = model

    def _evaluate(batch_points: list[DesignPoint]) -> bool:
        """Run one exact batch; returns False when the search must stop."""
        nonlocal spent, cancelled
        if not batch_points:
            return False
        requested = set(batch_points)
        report = evaluator(batch_points)
        for reason, count in sorted(report.fallback_totals().items()):
            fallback_totals[reason] = (
                fallback_totals.get(reason, 0) + count
            )
        for record in report.records:
            # Budget accounting by novelty, not by the record's
            # from_journal flag: a sharded evaluator rehydrates every
            # row from the merged shard journals, yet each newly
            # requested point still cost one exact evaluation.
            if (
                record.point in requested
                and record.point not in evaluated
                and record.point not in failed
            ):
                spent += 1
                proposals.append(record.point)
            entry_row = record.result
            if entry_row is None:
                failed.add(record.point)
                if record.failure is not None:
                    failures.append(record.failure)
            else:
                evaluated[record.point] = entry_row
            if record.metrics is not None:
                training_entries.append(JournalEntry(
                    point=record.point,
                    status=record.status,
                    metrics=record.metrics,
                    source="exact",
                ))
        if report.cancelled:
            cancelled = True
            return False
        return True

    def _remaining_budget() -> int:
        return max(0, eval_budget - prior_spent - spent)

    def _unseen(points: Sequence[DesignPoint]) -> list[DesignPoint]:
        return [
            p for p in points
            if p not in evaluated and p not in failed
        ]

    # -- initial space-filling draws ----------------------------------------
    known_rows = len(
        [e for e in training_entries if e.metrics is not None]
    )
    if known_rows < _MIN_TRAINING_ROWS and fitted is None:
        want = min(init_count, _remaining_budget())
        if pool is not None:
            unseen = _unseen(pool)
            take = min(want, len(unseen))
            if take > 0:
                picks = rng.choice(len(unseen), size=take, replace=False)
                batch_points = [unseen[int(i)] for i in sorted(picks)]
            else:
                batch_points = []
        else:
            batch_points = _unseen(
                _sample_axes(axes, rng, max(want * 2, want + 4))
            )[:want]
        if not _evaluate(batch_points):
            return _finish(
                objective, pareto_objectives, pareto_fns, score,
                _feasible_rows(), evaluated, proposals, spent,
                failures, cancelled, fitted, fallback_totals,
            )

    # -- acquisition rounds -------------------------------------------------
    round_index = -1
    while _remaining_budget() > 0:
        round_index += 1
        if should_abort is not None and should_abort():
            cancelled = True
            break
        _, feats, targets = _training_matrices()
        if feats.shape[0] >= _MIN_TRAINING_ROWS:
            fitted = fit_surrogate(
                feats,
                targets,
                digest=digest,
                seed=derive_seed(seed, "fit", spent),
                members=members,
                rounds=rounds,
                # The ridge trend extrapolates toward open-space corners
                # (generative mode needs that); in a finite pool the
                # draws already span the hull and pure stumps
                # interpolate the local structure better.
                trend=pool is None,
            )
        if fitted is None:
            break  # not enough data and nothing left to draw
        if pool is not None:
            round_candidates = _unseen(pool)
            if not round_candidates:
                break
        else:
            feasible_now = _feasible_rows()
            if objective is not None and score is not None:
                elites = [
                    r.point for r in sorted(
                        feasible_now, key=score, reverse=True
                    )[:8]
                ]
            else:
                elites = [
                    r.point
                    for r in pareto_front(feasible_now, pareto_fns)[:12]
                ]
            if not elites:
                elites = sorted(evaluated)[:8]
            round_candidates = _generate_candidates(
                axes, elites, set(evaluated) | failed, rng,
                _AXES_CANDIDATES,
            )
            if not round_candidates:
                break
        member_preds = fitted.predict_members(
            featurize_points(round_candidates, ctx)
        )
        if objective is not None:
            scores = _member_objective(objective, member_preds)
            feasible_now = _feasible_rows()
            best_now = (
                max(score(r) for r in feasible_now)
                if feasible_now
                else -np.inf
            )
            # Every objective is a positive ratio spanning orders of
            # magnitude; EI on the log scale keeps the improvement
            # signal comparable across the whole space.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                scores = np.log(np.maximum(scores, _EPS))
            if math.isfinite(best_now):
                best_now = math.log(max(best_now, _EPS))
            acquisition = _expected_improvement(scores, best_now)
        else:
            per_objective = [
                _member_objective(o, member_preds)
                for o in pareto_objectives
            ]
            exact_rows = _feasible_rows()
            exact_scores = np.asarray(
                [[fn(r) for fn in pareto_fns] for r in exact_rows]
            ) if exact_rows else np.empty((0, len(pareto_fns)))
            lam = rng.dirichlet(np.ones(len(pareto_fns)))
            acquisition = _chebyshev_gain(
                per_objective, exact_scores, lam
            )
        take = min(round_size, _remaining_budget(), len(round_candidates))
        order = np.argsort(-acquisition, kind="stable")
        batch_points = [round_candidates[int(i)] for i in order[:take]]
        if objective is not None and feasible_now and take >= 2:
            # Two reserved proposals ride along with the EI picks:
            #
            # * **Exploit** — the committee's best predicted candidate
            #   outright.  EI's spread term keeps chasing uncertain
            #   regions, so without this slot a candidate the model
            #   already ranks *first* (e.g. a warm-journal row it knows
            #   exactly) can go unevaluated for the whole budget.
            # * **Polish** — the best predicted one-axis neighbor of the
            #   incumbent: the achieved surface has utilization cliffs,
            #   so the off-by-one neighbor of the current best is
            #   routinely the true optimum even when the global ranking
            #   narrowly misses it.  Ranked by predicted score, not EI,
            #   which collapses toward zero right next to the incumbent.
            #
            # Tiny rounds (2 slots) alternate the two by round parity so
            # EI always keeps at least one slot.
            incumbent = max(feasible_now, key=score).point
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                mean_pred = np.nanmean(scores, axis=0)
            finite = np.isfinite(mean_pred)
            reserved: list[DesignPoint] = []
            if finite.any():
                exploit = int(
                    np.argmax(np.where(finite, mean_pred, -np.inf))
                )
                reserved.append(round_candidates[exploit])
            neighbors = [
                (float(mean_pred[i]), i)
                for i, p in enumerate(round_candidates)
                if _is_neighbor(incumbent, p)
                and math.isfinite(float(mean_pred[i]))
            ]
            if neighbors:
                _, pick = max(neighbors)
                if round_candidates[pick] not in reserved:
                    reserved.append(round_candidates[pick])
            if take == 2 and len(reserved) == 2:
                reserved = [reserved[round_index % 2]]
            reserved = reserved[:max(0, take - 1)]
            if reserved:
                keep = [
                    p for p in batch_points if p not in reserved
                ][: take - len(reserved)]
                batch_points = keep + reserved
        if not _evaluate(batch_points):
            break

    return _finish(
        objective, pareto_objectives, pareto_fns, score,
        _feasible_rows(), evaluated, proposals, spent,
        failures, cancelled, fitted, fallback_totals,
    )


def _finish(
    objective,
    pareto_objectives,
    pareto_fns,
    score,
    feasible,
    evaluated,
    proposals,
    spent,
    failures,
    cancelled,
    fitted,
    fallback_totals,
) -> SearchResult:
    """Assemble the verified result from exact rows only."""
    if not feasible:
        if cancelled:
            return SearchResult(
                objective=objective,
                pareto_objectives=tuple(pareto_objectives),
                best=None,
                proposals=tuple(proposals),
                exact_evaluations=spent,
                total_rows=len(evaluated),
                failures=tuple(failures),
                cancelled=True,
                model=fitted,
                fallback_totals=dict(fallback_totals),
            )
        raise OptimizationError(
            f"the search budget ({spent} exact evaluations) produced "
            "no feasible candidate; raise the budget or relax the "
            "constraints"
        )
    frontier = tuple(pareto_front(feasible, pareto_fns))
    if objective is not None and score is not None:
        ranking = tuple(sorted(feasible, key=score, reverse=True))
        best = ranking[0]
    else:
        on_front = set(map(id, frontier))
        ranking = frontier + tuple(
            r for r in feasible if id(r) not in on_front
        )
        best = None
    feasible_points = {r.point for r in feasible}
    infeasible = tuple(
        point for point in sorted(evaluated)
        if point not in feasible_points
    )
    return SearchResult(
        objective=objective,
        pareto_objectives=tuple(pareto_objectives),
        best=best,
        ranking=ranking,
        frontier=frontier,
        proposals=tuple(proposals),
        exact_evaluations=spent,
        total_rows=len(evaluated),
        infeasible=infeasible,
        failures=tuple(failures),
        cancelled=cancelled,
        model=fitted,
        fallback_totals=dict(fallback_totals),
    )
