"""Deterministic featurization of design points for the surrogate.

The surrogate learns from sweep journals, so its feature vectors must be
a pure function of ``(DesignPoint, ModelContext)`` — no wall-clock, no
process state — and the *schema* itself must be versioned: a model
trained on one feature layout silently mis-predicting on another is the
learned-model analogue of a stale cache entry.  :func:`feature_digest`
therefore hashes the schema version, the feature names, and the modeling
context through :func:`repro.cache.keys.short_hash` (which salts with
the package version), and every saved model carries that digest in its
header; loading or predicting under a different digest is a typed
refusal, exactly like the estimate cache rejecting version-skewed
entries.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.arch.component import ModelContext
from repro.cache.keys import short_hash
from repro.config.presets import datacenter_context
from repro.dse.journal import JournalEntry
from repro.dse.space import DesignPoint
from repro.errors import ConfigurationError

try:  # pragma: no cover - exercised via HAVE_NUMPY gates
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Bump when the feature layout below changes in any way.
FEATURE_SCHEMA_VERSION = 1

#: Feature layout, in column order.  The raw axes, their logs (the model
#: scales multiplicatively in all four), the derived compute shape, and
#: the context's technology/clock knobs.
FEATURE_NAMES: tuple[str, ...] = (
    "x",
    "n",
    "tx",
    "ty",
    "log2_x",
    "log2_n",
    "log2_tx",
    "log2_ty",
    "cores",
    "log2_cores",
    "log2_macs_per_cycle",
    "peak_tops",
    "grid_aspect",
    "freq_ghz",
    "tech_nm",
)

#: Targets the surrogate predicts, in column order.  ``achieved_tops``
#: and ``runtime_power_w`` are NaN for peak-only training rows and
#: simply not fit then.
TARGET_NAMES: tuple[str, ...] = (
    "area_mm2",
    "tdp_w",
    "peak_tops",
    "achieved_tops",
    "runtime_power_w",
)


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise ConfigurationError(
            "the surrogate needs numpy; install it or use "
            "--strategy exhaustive"
        )


def feature_row(
    point: DesignPoint, ctx: Optional[ModelContext] = None
) -> list[float]:
    """One point's feature vector as plain floats (schema order)."""
    ctx = ctx if ctx is not None else datacenter_context()
    cores = point.cores
    return [
        float(point.x),
        float(point.n),
        float(point.tx),
        float(point.ty),
        math.log2(point.x),
        math.log2(point.n),
        math.log2(point.tx),
        math.log2(point.ty),
        float(cores),
        math.log2(cores),
        math.log2(point.macs_per_cycle),
        point.peak_tops(ctx.freq_ghz),
        point.ty / point.tx,
        ctx.freq_ghz,
        float(ctx.tech.feature_nm),
    ]


def featurize_points(
    points: Sequence[DesignPoint], ctx: Optional[ModelContext] = None
) -> "np.ndarray":
    """Feature matrix of shape ``(len(points), len(FEATURE_NAMES))``."""
    _require_numpy()
    ctx = ctx if ctx is not None else datacenter_context()
    return np.asarray(
        [feature_row(point, ctx) for point in points], dtype=np.float64
    )


def feature_digest(ctx: Optional[ModelContext] = None) -> str:
    """Content digest of the feature schema under one modeling context.

    Any change to the schema version, the feature layout, the context
    (tech node, voltage, clock), or the package version produces a new
    digest — and a model stamped with the old one is refused, never
    silently reused.
    """
    ctx = ctx if ctx is not None else datacenter_context()
    return short_hash(
        "surrogate-features",
        FEATURE_SCHEMA_VERSION,
        FEATURE_NAMES,
        TARGET_NAMES,
        ctx,
    )


def targets_from_metrics(metrics: dict, batch: int = 1) -> list[float]:
    """Extract the target vector from one journaled metrics dict.

    ``achieved_tops`` is the arithmetic mean over the workload outcomes
    of the requested batch regime, NaN when the row is peak-only.
    """
    regime = f"bs={int(batch)}"
    achieved = [
        float(o["achieved_tops"])
        for o in metrics.get("outcomes", ())
        if o.get("regime") == regime
    ]
    runtime_power = [
        float(o["runtime_power_w"])
        for o in metrics.get("outcomes", ())
        if o.get("regime") == regime
    ]
    return [
        float(metrics["area_mm2"]),
        float(metrics["tdp_w"]),
        float(metrics["peak_tops"]),
        sum(achieved) / len(achieved) if achieved else math.nan,
        sum(runtime_power) / len(runtime_power)
        if runtime_power else math.nan,
    ]


def training_rows(
    entries: Sequence[JournalEntry],
    ctx: Optional[ModelContext] = None,
    batch: int = 1,
) -> "tuple[list[DesignPoint], np.ndarray, np.ndarray]":
    """Build ``(points, X, Y)`` training arrays from journal entries.

    Failed entries (no metrics) are skipped; duplicate points keep the
    *last* record, matching the engine's resume semantics.  Rows marked
    with a non-``"exact"`` source are refused — the surrogate must never
    train on its own predictions.
    """
    _require_numpy()
    ctx = ctx if ctx is not None else datacenter_context()
    by_point: dict[DesignPoint, dict] = {}
    order: list[DesignPoint] = []
    for entry in entries:
        if entry.source is not None and entry.source != "exact":
            raise ConfigurationError(
                f"journal row for {entry.point.label()} has source "
                f"{entry.source!r}; the surrogate trains only on rows "
                "the exact model produced"
            )
        if entry.metrics is None:
            continue
        if entry.point not in by_point:
            order.append(entry.point)
        by_point[entry.point] = entry.metrics
    points = [point for point in order]
    if not points:
        return [], np.empty((0, len(FEATURE_NAMES))), np.empty(
            (0, len(TARGET_NAMES))
        )
    features = featurize_points(points, ctx)
    targets = np.asarray(
        [targets_from_metrics(by_point[p], batch) for p in points],
        dtype=np.float64,
    )
    return points, features, targets
