"""Surrogate-guided design-space exploration.

A learned cost model (:mod:`~repro.dse.surrogate.model`) proposes which
design points deserve an exact evaluation; the budgeted search
(:mod:`~repro.dse.surrogate.search`) verifies every proposal through the
exact sweep engine and reports only exact numbers.  See
``docs/dse_surrogate.md`` for the contract.
"""

from repro.dse.surrogate.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    HAVE_NUMPY,
    TARGET_NAMES,
    feature_digest,
    feature_row,
    featurize_points,
    targets_from_metrics,
    training_rows,
)
from repro.dse.surrogate.model import (
    MODEL_FORMAT_VERSION,
    SurrogateModel,
    fit_from_journals,
    fit_surrogate,
)
from repro.dse.surrogate.search import (
    DEFAULT_PARETO_OBJECTIVES,
    EngineEvaluator,
    SearchResult,
    ShardedEvaluator,
    search_digest,
    surrogate_search,
)

__all__ = [
    "DEFAULT_PARETO_OBJECTIVES",
    "EngineEvaluator",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "HAVE_NUMPY",
    "MODEL_FORMAT_VERSION",
    "SearchResult",
    "ShardedEvaluator",
    "SurrogateModel",
    "TARGET_NAMES",
    "feature_digest",
    "feature_row",
    "featurize_points",
    "fit_from_journals",
    "fit_surrogate",
    "search_digest",
    "surrogate_search",
    "targets_from_metrics",
    "training_rows",
]
