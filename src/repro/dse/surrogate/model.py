"""A numpy-only ensemble surrogate trained from sweep journals.

The model is a *bagged committee* of gradient-boosted regression stumps:
each committee member is trained on a bootstrap resample of the exact
rows, one boosted-stump ensemble per target (area, TDP, peak TOPS,
achieved TOPS).  The committee mean is the prediction and the committee
spread is the uncertainty the acquisition functions consume — no scipy,
no sklearn, and everything seeded through
:func:`repro.dse.seeding.derive_seed` so a fit is bit-reproducible.

Saved models are pickles with a digest-stamped header: loading a model
whose :func:`~repro.dse.surrogate.features.feature_digest` does not
match the current schema/context/package is a typed refusal, exactly
like a stale cache entry.  Predictions are *advisory only*: they steer
which points the exact model evaluates and are never reported as
results (see :mod:`repro.dse.surrogate.search`).
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dse.journal import load_journal
from repro.dse.seeding import derive_seed, resolve_seed
from repro.dse.surrogate.features import (
    HAVE_NUMPY,
    TARGET_NAMES,
    _require_numpy,
    feature_digest,
    training_rows,
)
from repro.errors import ConfigurationError

if HAVE_NUMPY:  # pragma: no branch
    import numpy as np

#: Bump when the pickled layout below changes incompatibly.
MODEL_FORMAT_VERSION = 1

#: Default committee size; 5 members trade variance estimates for cost.
DEFAULT_MEMBERS = 5

#: Default boosting rounds per (member, target) stump ensemble.
DEFAULT_ROUNDS = 48

_LEARNING_RATE = 0.35
_THRESHOLD_GRID = 9
_MIN_TRAINING_ROWS = 8


@dataclass(frozen=True)
class _StumpEnsemble:
    """One trend + boosted-stump regressor.

    ``trend_*`` hold a ridge-regularized linear fit on standardized
    features that runs *before* the stumps: stumps are piecewise
    constant, so on their own they cannot extrapolate past the training
    hull — which blinds acquisition to the monotone corners of an open
    design space (peak TOPS grows right up to the largest feasible
    design).  The linear trend carries that global log-log scaling and
    the stumps only model the residual surface.
    """

    base: float
    trend_mu: "np.ndarray"  # (cols,) feature standardization mean
    trend_sigma: "np.ndarray"  # (cols,) feature standardization scale
    trend_coef: "np.ndarray"  # (cols,) ridge coefficients
    features: "np.ndarray"  # (rounds,) int column indices
    thresholds: "np.ndarray"  # (rounds,) split values
    left: "np.ndarray"  # (rounds,) scaled leaf value for col <= thr
    right: "np.ndarray"  # (rounds,) scaled leaf value otherwise

    def predict(self, features: "np.ndarray") -> "np.ndarray":
        z = (features - self.trend_mu[None, :]) / \
            self.trend_sigma[None, :]
        # Bounded extrapolation: a few sigma past the training hull the
        # linear term keeps its direction but saturates instead of
        # running away.
        out = self.base + np.clip(z, -_TREND_CLIP, _TREND_CLIP) @ \
            self.trend_coef
        for j, thr, lo, hi in zip(
            self.features, self.thresholds, self.left, self.right
        ):
            out += np.where(features[:, int(j)] <= thr, lo, hi)
        return out


_TREND_RIDGE = 1e-3
_TREND_CLIP = 4.0


def _trend_columns(width: int) -> "np.ndarray":
    """Feature columns the linear trend may use.

    For the canonical schema only the ``log2_*`` columns participate:
    the metrics are log-log linear in the design axes, and the
    raw-scale columns (``cores``, ``peak_tops``, ...) sit so many sigma
    outside the training range at space corners that a coefficient on
    them turns extrapolation into overflow.  Non-canonical widths (unit
    tests with synthetic matrices) use every column.
    """
    from repro.dse.surrogate.features import FEATURE_NAMES

    if width == len(FEATURE_NAMES):
        return np.asarray(
            [
                i
                for i, name in enumerate(FEATURE_NAMES)
                if name.startswith("log2_")
            ],
            dtype=np.int64,
        )
    return np.arange(width, dtype=np.int64)


def _fit_trend(
    features: "np.ndarray", target: "np.ndarray"
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Ridge linear fit on standardized features; returns residual too.

    The returned ``coef`` is full-width with zeros outside
    :func:`_trend_columns`, so :meth:`_StumpEnsemble.predict` stays a
    single matrix product.
    """
    width = features.shape[1]
    cols = _trend_columns(width)
    mu = features.mean(axis=0)
    sigma = features.std(axis=0)
    sigma = np.where(sigma > 1e-12, sigma, 1.0)
    z = (features[:, cols] - mu[None, cols]) / sigma[None, cols]
    centered = target - float(np.mean(target))
    gram = z.T @ z + _TREND_RIDGE * features.shape[0] * np.eye(
        z.shape[1]
    )
    coef = np.zeros(width)
    coef[cols] = np.linalg.solve(gram, z.T @ centered)
    # Residuals under the same clipped transform predict() applies.
    full_z = (features - mu[None, :]) / sigma[None, :]
    return mu, sigma, coef, centered - np.clip(
        full_z, -_TREND_CLIP, _TREND_CLIP
    ) @ coef


def _fit_stumps(
    features: "np.ndarray",
    target: "np.ndarray",
    rounds: int,
    learning_rate: float,
    trend: bool = True,
) -> _StumpEnsemble:
    """Optional ridge trend, then greedy least-squares stump boosting."""
    base = float(np.mean(target))
    if trend:
        mu, sigma, coef, residual0 = _fit_trend(features, target)
    else:
        mu = np.zeros(features.shape[1])
        sigma = np.ones(features.shape[1])
        coef = np.zeros(features.shape[1])
        residual0 = target - base
    pred = target - residual0
    cols: list[int] = []
    thrs: list[float] = []
    lefts: list[float] = []
    rights: list[float] = []
    # Precompute each column's candidate thresholds (interior quantiles).
    grid = np.linspace(0.05, 0.95, _THRESHOLD_GRID)
    candidates = [
        np.unique(np.quantile(features[:, j], grid))
        for j in range(features.shape[1])
    ]
    for _ in range(rounds):
        residual = target - pred
        best_sse = float(np.sum(residual * residual))
        best = None
        for j in range(features.shape[1]):
            col = features[:, j]
            for thr in candidates[j]:
                mask = col <= thr
                count = int(mask.sum())
                if count == 0 or count == mask.shape[0]:
                    continue
                left = float(residual[mask].mean())
                right = float(residual[~mask].mean())
                sse = float(
                    np.sum((residual[mask] - left) ** 2)
                    + np.sum((residual[~mask] - right) ** 2)
                )
                if sse < best_sse - 1e-12:
                    best_sse = sse
                    best = (j, float(thr), left, right)
        if best is None:
            break  # no split improves: the residual is flat
        j, thr, left, right = best
        step_left = learning_rate * left
        step_right = learning_rate * right
        pred = pred + np.where(
            features[:, j] <= thr, step_left, step_right
        )
        cols.append(j)
        thrs.append(thr)
        lefts.append(step_left)
        rights.append(step_right)
    return _StumpEnsemble(
        base=base,
        trend_mu=mu,
        trend_sigma=sigma,
        trend_coef=coef,
        features=np.asarray(cols, dtype=np.int64),
        thresholds=np.asarray(thrs, dtype=np.float64),
        left=np.asarray(lefts, dtype=np.float64),
        right=np.asarray(rights, dtype=np.float64),
    )


@dataclass(frozen=True)
class SurrogateModel:
    """A digest-stamped committee of boosted-stump regressors.

    ``members[m][t]`` is member ``m``'s ensemble for target ``t`` (in
    :data:`~repro.dse.surrogate.features.TARGET_NAMES` order), or
    ``None`` when the training set had no finite rows for that target
    (e.g. ``achieved_tops`` on peak-only journals).
    """

    feature_digest: str
    seed: int
    train_count: int
    target_names: tuple[str, ...] = TARGET_NAMES
    members: tuple[tuple[Optional[_StumpEnsemble], ...], ...] = field(
        default_factory=tuple
    )
    #: Per-target flag: the ensembles were fit on ``log2(y)`` (chosen at
    #: fit time when every finite value is positive) and predictions are
    #: exponentiated back.  Chip metrics span orders of magnitude, and
    #: least-squares stumps on the raw scale would spend their entire
    #: budget on the largest designs — log space makes the small-area
    #: region (where the TCO optimum lives) equally visible.
    log_scale: tuple[bool, ...] = ()

    @property
    def member_count(self) -> int:
        return len(self.members)

    def check_digest(self, expected: str) -> None:
        """Refuse to serve predictions across a schema/context change."""
        if self.feature_digest != expected:
            raise ConfigurationError(
                "stale surrogate model: it was trained under feature "
                f"digest {self.feature_digest} but the current "
                f"schema/context digests to {expected}; retrain from "
                "fresh journals (models never survive a feature-schema, "
                "context, or package-version change)"
            )

    def predict_members(
        self, features: "np.ndarray"
    ) -> "dict[str, np.ndarray]":
        """Per-member predictions: target name -> (members, N) array.

        Targets no member could fit come back as NaN rows, which the
        acquisition layer treats as "no information", never as zeros.
        """
        _require_numpy()
        out: dict[str, "np.ndarray"] = {}
        count = features.shape[0]
        for t, name in enumerate(self.target_names):
            rows = []
            log_scaled = bool(self.log_scale and self.log_scale[t])
            for member in self.members:
                ensemble = member[t]
                if ensemble is None:
                    rows.append(np.full(count, np.nan))
                else:
                    pred = ensemble.predict(features)
                    if log_scaled:
                        # The linear trend extrapolates; clip before
                        # exp2 so a wild corner prediction stays a
                        # large finite number instead of overflowing.
                        pred = np.exp2(np.clip(pred, -120.0, 120.0))
                    rows.append(pred)
            out[name] = np.vstack(rows) if rows else np.empty((0, count))
        return out

    def predict(
        self, features: "np.ndarray"
    ) -> "tuple[dict[str, np.ndarray], dict[str, np.ndarray]]":
        """Committee mean and spread per target: ``(mean, std)`` dicts."""
        members = self.predict_members(features)
        mean = {name: np.mean(rows, axis=0) for name, rows in
                sorted(members.items())}
        std = {name: np.std(rows, axis=0) for name, rows in
               sorted(members.items())}
        return mean, std

    # -- persistence ---------------------------------------------------------

    def save(self, path: "str | os.PathLike") -> str:
        """Atomically pickle the model with a digest-stamped header."""
        target = os.fspath(path)
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        payload = {
            "header": {
                "kind": "surrogate-model",
                "version": MODEL_FORMAT_VERSION,
                "feature_digest": self.feature_digest,
                "targets": list(self.target_names),
                "members": self.member_count,
                "train_count": self.train_count,
                "seed": self.seed,
            },
            "model": self,
        }
        tmp = f"{target}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        return target

    @classmethod
    def load(
        cls,
        path: "str | os.PathLike",
        expected_digest: Optional[str] = None,
    ) -> "SurrogateModel":
        """Load a saved model, verifying its header and digest.

        Raises:
            ConfigurationError: not a surrogate-model file, an
                incompatible format version, or (with
                ``expected_digest``) a stale feature digest.
        """
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read surrogate model {os.fspath(path)}: {error}"
            ) from error
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as error:
            raise ConfigurationError(
                f"surrogate model {os.fspath(path)} is not a valid "
                f"model pickle: {error}"
            ) from error
        header = (
            payload.get("header") if isinstance(payload, dict) else None
        )
        if not isinstance(header, dict) or \
                header.get("kind") != "surrogate-model":
            raise ConfigurationError(
                f"{os.fspath(path)} is not a surrogate model (missing "
                "kind == 'surrogate-model' header)"
            )
        if int(header.get("version", -1)) != MODEL_FORMAT_VERSION:
            raise ConfigurationError(
                f"surrogate model format v{header.get('version')} is "
                f"not supported (this build reads v{MODEL_FORMAT_VERSION})"
            )
        model = payload.get("model")
        if not isinstance(model, cls):
            raise ConfigurationError(
                f"{os.fspath(path)} header is valid but the body is "
                f"{type(model).__name__}, not a SurrogateModel"
            )
        if model.feature_digest != str(header.get("feature_digest")):
            raise ConfigurationError(
                f"surrogate model {os.fspath(path)} header digest "
                "disagrees with its body; the file was edited or damaged"
            )
        if expected_digest is not None:
            model.check_digest(expected_digest)
        return model


def fit_surrogate(
    features: "np.ndarray",
    targets: "np.ndarray",
    *,
    digest: str,
    seed: Optional[int] = None,
    members: int = DEFAULT_MEMBERS,
    rounds: int = DEFAULT_ROUNDS,
    learning_rate: float = _LEARNING_RATE,
    trend: bool = True,
) -> SurrogateModel:
    """Fit the bagged committee on ``(features, targets)`` arrays.

    ``targets`` columns follow
    :data:`~repro.dse.surrogate.features.TARGET_NAMES`; NaN entries are
    excluded per target (a peak-only row still trains the peak targets).

    ``trend`` fits the per-member ridge trend before the stumps.  Keep
    it on when the model must *extrapolate* (generative searches over
    open axes, where the optimum can sit past every training row) and
    turn it off for finite-pool searches, where the initial draws
    already span the hull and the global linear bias only distorts the
    local structure the stumps interpolate.

    Raises:
        ConfigurationError: fewer than the minimum training rows, or
            invalid hyperparameters.
    """
    _require_numpy()
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if features.ndim != 2 or targets.ndim != 2 or \
            features.shape[0] != targets.shape[0]:
        raise ConfigurationError(
            f"features {features.shape} and targets {targets.shape} "
            "must be 2-D with matching row counts"
        )
    if features.shape[0] < _MIN_TRAINING_ROWS:
        raise ConfigurationError(
            f"the surrogate needs at least {_MIN_TRAINING_ROWS} exact "
            f"rows to fit, got {features.shape[0]}; sweep more points "
            "first or lower the budget into exhaustive range"
        )
    if members < 1 or rounds < 1:
        raise ConfigurationError(
            f"members and rounds must be >= 1, got {members}/{rounds}"
        )
    seed = resolve_seed(seed)
    count = features.shape[0]
    # Decide the fitting scale per target from the *full* training set so
    # every committee member agrees: log2 when all finite values are
    # positive (chip metrics are multiplicative in the design axes).
    log_scale = []
    for t in range(targets.shape[1]):
        column = targets[:, t]
        finite = column[np.isfinite(column)]
        log_scale.append(bool(finite.size) and bool((finite > 0.0).all()))
    fitted: list[tuple[Optional[_StumpEnsemble], ...]] = []
    for m in range(members):
        rng = np.random.default_rng(derive_seed(seed, "member", m))
        if m == 0:
            picks = np.arange(count)  # one member sees every row
        else:
            picks = rng.integers(0, count, size=count)
        per_target: list[Optional[_StumpEnsemble]] = []
        for t in range(targets.shape[1]):
            y = targets[picks, t]
            finite = np.isfinite(y)
            if int(finite.sum()) < 2:
                per_target.append(None)
                continue
            y_fit = np.log2(y[finite]) if log_scale[t] else y[finite]
            per_target.append(_fit_stumps(
                features[picks][finite], y_fit, rounds, learning_rate,
                trend=trend,
            ))
        fitted.append(tuple(per_target))
    return SurrogateModel(
        feature_digest=digest,
        seed=seed,
        train_count=count,
        members=tuple(fitted),
        log_scale=tuple(log_scale),
    )


def fit_from_journals(
    paths: Sequence["str | os.PathLike"],
    *,
    ctx=None,
    batch: int = 1,
    seed: Optional[int] = None,
    members: int = DEFAULT_MEMBERS,
    rounds: int = DEFAULT_ROUNDS,
    salvage: bool = False,
    trend: bool = True,
) -> SurrogateModel:
    """Train a surrogate from one or more sweep journals.

    Journals are read through :func:`repro.dse.journal.load_journal`
    (torn tails repaired, ``salvage=True`` harvests damaged shards), so
    every sweep, search, or shard journal the engine ever wrote is a
    training set.  Duplicate points across journals keep the last row.

    Raises:
        ConfigurationError: no journals, no usable rows, or a row whose
            ``source`` marks it as not exact-model output.
    """
    if not paths:
        raise ConfigurationError("fit_from_journals needs journal paths")
    entries = []
    for path in paths:
        entries.extend(load_journal(path, salvage=salvage))
    _, features, targets = training_rows(entries, ctx=ctx, batch=batch)
    return fit_surrogate(
        features,
        targets,
        digest=feature_digest(ctx),
        seed=seed,
        members=members,
        rounds=rounds,
        trend=trend,
    )
