"""Fault-tolerant sweep execution engine.

The Fig. 8 / Fig. 10 studies evaluate hundreds of design points, and at
that scale individual failures are expected, not exceptional: the memory
bank optimizer can find no feasible organization for a pathological tile
(:class:`~repro.errors.OptimizationError`), an operator may not map onto a
degenerate core grid (:class:`~repro.errors.MappingError`), a calibration
curve-fit can leak a NaN.  A naive loop turns any of these into an aborted
study and throws away every point already evaluated.

This engine treats the cost model as a service that must survive bad
points:

* **Per-point fault isolation** — each evaluation runs in a guarded unit;
  an exception becomes a structured :class:`PointFailure` (error class,
  stage, wall time) instead of a traceback, unless ``strict=True``.
* **Vectorized batch estimation** — with ``backend="vector"`` (or
  ``"auto"``), whole sweeps — peak metrics *and* workload simulation —
  are evaluated through the NumPy array kernels of :mod:`repro.batch`
  in a handful of array operations; ``auto`` transparently routes
  unsupported, build-failing, or infeasible points back through the
  scalar path so results match the scalar backend exactly, and each
  record carries its fallback reason for operator visibility.
* **Persistent worker pool with per-point timeouts** — with ``jobs > 1``
  or a ``timeout_s``, points run in forked worker processes that stay
  warm across *chunks* of points instead of forking per point; a hung
  point is killed at the deadline (failing only the in-flight point —
  the rest of its chunk is requeued) and recorded as a timeout failure.
  The pool itself is a first-class :class:`WorkerPool` handle: a
  long-lived caller (the ``neurometer serve`` daemon) can keep one pool
  warm and pass it to many ``run_sweep`` calls instead of paying
  fork/teardown per request.
* **Cooperative cancellation** — a ``should_abort`` hook is polled
  between points; when it fires, the run stops admitting work, kills
  in-flight workers, and returns a partial report flagged
  ``cancelled=True``.  Finished points are already journaled, so a
  resumed run picks up exactly the unfinished remainder (graceful
  drain).
* **Retry with graceful degradation** — a failed point is retried once
  with the workload recipe dropped, so the study still gets the
  area/TDP/peak-TOPS row where achievable (status ``degraded``).
* **Checkpoint/resume** — with a ``journal_path``, every finished point is
  appended to a JSONL journal (:mod:`repro.dse.journal`); ``resume=True``
  skips journaled points and rehydrates their metrics.
* **Result guardrails** — every accepted result passes
  :func:`repro.dse.guardrails.validate_result`; NaN/inf/out-of-range
  values are rejected at the boundary as
  :class:`~repro.errors.NumericalError`.

The legacy :func:`repro.dse.sweep.sweep` delegates here with
``strict=True, jobs=1`` and is behaviorally unchanged.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as _wait_connections
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.arch.component import ModelContext
from repro.cache.store import _Totals, get_estimate_cache
from repro.dse.guardrails import validate_result
from repro.dse.journal import (
    Journal,
    JournalEntry,
    SummaryResult,
    summarize_result,
)
from repro.dse.space import DesignPoint
from repro.dse.sweep import DesignPointResult, evaluate_point
from repro.errors import (
    ConfigurationError,
    MappingError,
    NeuroMeterError,
    NumericalError,
    OptimizationError,
    PointTimeoutError,
)
from repro.perf.graph import Graph
from repro.perf.simulator import DEFAULT_LATENCY_SLO_MS

#: Evaluation stages a failure can be attributed to.
STAGES = (
    "build",
    "estimate",
    "simulate",
    "power",
    "validate",
    "timeout",
    "collect",
    "evaluate",
)

#: Seconds to wait for a killed worker to be reaped before moving on.
_JOIN_GRACE_S = 5.0

#: Poll-loop ceiling while a cancellation hook is armed, so an abort is
#: noticed within this bound even when every worker is deep in a point.
_ABORT_POLL_S = 0.25


def derive_chunk_size(n_tasks: int, jobs: int) -> int:
    """Points dispatched per worker chunk when the caller picked none.

    Targets roughly four chunks per worker (``ceil(n / (4 * jobs))``) so
    stragglers rebalance, clamped to at least 1: an empty or tiny sweep
    (``n_tasks < jobs``, or zero after a journal resume) must degrade to
    one-point chunks, never to a zero chunk size that would dispatch
    empty chunks forever.
    """
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (4 * max(1, jobs))))


def warm_substrate_cache(
    points: Sequence[DesignPoint], ctx: Optional[ModelContext] = None
) -> int:
    """Pre-seed the estimate cache with each unique per-core substrate.

    Design points sharing ``(X, N)`` differ only in the core grid, so their
    core estimate — tensor units, memory bank search, vector path — is
    identical.  Estimating each unique core once in the parent process
    means forked workers inherit the warm entries by copy-on-write instead
    of re-running the substrate models per process.

    Warming is best-effort: a point whose core cannot be modeled is simply
    skipped (the sweep will record its failure properly).  Returns the
    number of unique substrates warmed.
    """
    if not get_estimate_cache().enabled:
        return 0
    from repro.config.presets import datacenter_context

    resolved = ctx if ctx is not None else datacenter_context()
    seen: set[tuple[int, int]] = set()
    for point in points:
        signature = (point.x, point.n)
        if signature in seen:
            continue
        seen.add(signature)
        try:
            point.build().core.estimate(resolved)
        except Exception:
            continue
    return len(seen)


def classify_stage(error: BaseException) -> str:
    """Attribute an exception to an evaluation stage.

    Prefers the ``stage`` tag attached by :func:`~repro.dse.sweep._stage`
    inside :func:`~repro.dse.sweep.evaluate_point`; falls back to the
    exception type for errors raised outside the tagged blocks.
    """
    stage = getattr(error, "stage", None)
    if isinstance(stage, str) and stage in STAGES:
        return stage
    if isinstance(error, NumericalError):
        return "validate"
    if isinstance(error, PointTimeoutError):
        return "timeout"
    if isinstance(error, MappingError):
        return "simulate"
    if isinstance(error, OptimizationError):
        return "build"
    return "evaluate"


@dataclass(frozen=True)
class PointFailure:
    """One failed evaluation attempt, structured for reporting.

    Attributes:
        point: The design tuple that failed.
        stage: Where it failed (see :data:`STAGES`).
        error_type: Exception class name (``PointTimeoutError`` for
            killed points, ``WorkerCrash`` for workers that died without
            reporting).
        message: The exception message.
        wall_time_s: Time spent on the failing attempt.
        attempt: 1 for the primary attempt, 2 for the degraded retry.
        degraded: Whether the failing attempt was the degraded retry.
        component_path: Dotted model path the failure originated in
            (``chip.core.tensor_unit``), when the error carried one.
        config_digest: Content digest of the offending configuration
            (the estimate-cache key prefix), when the error carried one.
    """

    point: DesignPoint
    stage: str
    error_type: str
    message: str
    wall_time_s: float = 0.0
    attempt: int = 1
    degraded: bool = False
    component_path: Optional[str] = None
    config_digest: Optional[str] = None

    def describe(self) -> str:
        where = f" at {self.component_path}" if self.component_path else ""
        return (
            f"{self.point.label()} [{self.stage}] "
            f"{self.error_type}: {self.message}{where}"
        )

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "wall_time_s": round(self.wall_time_s, 6),
            "attempt": self.attempt,
            "degraded": self.degraded,
            "component_path": self.component_path,
            "config_digest": self.config_digest,
        }

    @classmethod
    def from_dict(cls, point: DesignPoint, payload: dict) -> "PointFailure":
        path = payload.get("component_path")
        digest = payload.get("config_digest")
        return cls(
            point=point,
            stage=str(payload.get("stage", "evaluate")),
            error_type=str(payload.get("error_type", "Exception")),
            message=str(payload.get("message", "")),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            attempt=int(payload.get("attempt", 1)),
            degraded=bool(payload.get("degraded", False)),
            component_path=str(path) if path is not None else None,
            config_digest=str(digest) if digest is not None else None,
        )

    @classmethod
    def from_error(
        cls,
        point: DesignPoint,
        error: BaseException,
        *,
        wall_time_s: float = 0.0,
        attempt: int = 1,
        degraded: bool = False,
    ) -> "PointFailure":
        """Build a failure from a raised error, carrying its diagnostics."""
        return cls(
            point=point,
            stage=classify_stage(error),
            error_type=type(error).__name__,
            message=str(error),
            wall_time_s=wall_time_s,
            attempt=attempt,
            degraded=degraded,
            component_path=getattr(error, "component_path", None),
            config_digest=getattr(error, "config_digest", None),
        )


@dataclass(frozen=True)
class PointRecord:
    """The final outcome of one design point in a sweep.

    ``status`` is ``ok`` (full evaluation), ``degraded`` (peak-only
    metrics salvaged by the retry; ``failure`` holds the original error),
    or ``failed`` (both attempts exhausted).  ``result`` is a full
    :class:`~repro.dse.sweep.DesignPointResult` for points evaluated in
    this run and a :class:`~repro.dse.journal.SummaryResult` for points
    rehydrated from a resumed journal.
    """

    point: DesignPoint
    status: str
    result: Optional[Union[DesignPointResult, SummaryResult]] = None
    metrics: Optional[dict] = None
    failure: Optional[PointFailure] = None
    wall_time_s: float = 0.0
    attempt: int = 1
    from_journal: bool = False
    cache: Optional[dict] = None
    #: Vector-backend fallback reason (``repro.batch.estimator`` taxonomy)
    #: when this point was routed back to the scalar path; ``None`` for
    #: vectorized points and pure-scalar sweeps.
    fallback: Optional[str] = None


def record_from_journal_entry(entry: JournalEntry) -> PointRecord:
    """Rehydrate one journaled entry into a ``from_journal`` record.

    Carries the full per-point surface — metrics, structured failure,
    cache counters, and fallback reason — so journal-resumed and
    shard-merged records aggregate exactly like freshly evaluated ones.
    """
    return PointRecord(
        point=entry.point,
        status=entry.status,
        result=entry.summary_result(),
        metrics=entry.metrics,
        failure=(
            PointFailure.from_dict(entry.point, entry.failure)
            if entry.failure
            else None
        ),
        wall_time_s=entry.wall_time_s,
        attempt=entry.attempt,
        from_journal=True,
        cache=entry.cache,
        fallback=entry.fallback,
    )


@dataclass(frozen=True)
class SweepReport:
    """Everything a study learned from one engine run.

    ``cancelled`` marks a run stopped early by the ``should_abort``
    hook: the records cover only the points finished before the abort,
    and (with a journal) a ``resume=True`` rerun completes the rest.
    """

    records: tuple[PointRecord, ...]
    cancelled: bool = False

    @property
    def results(
        self,
    ) -> list[Union[DesignPointResult, SummaryResult]]:
        """Usable result rows (ok + degraded), in input-point order."""
        return [r.result for r in self.records if r.result is not None]

    @property
    def failures(self) -> list[PointFailure]:
        """Structured failures of the points that produced no row."""
        return [
            r.failure
            for r in self.records
            if r.status == "failed" and r.failure is not None
        ]

    @property
    def degraded(self) -> list[PointRecord]:
        return [r for r in self.records if r.status == "degraded"]

    def record_for(self, point: DesignPoint) -> Optional[PointRecord]:
        for record in self.records:
            if record.point == point:
                return record
        return None

    def fallback_totals(self) -> dict:
        """Vector-backend fallback reason -> point count for this run.

        Empty for pure-scalar sweeps and sweeps the vector path covered
        fully, so operators can assert "zero fallbacks" directly.
        """
        totals: dict[str, int] = {}
        for record in self.records:
            if record.fallback is not None:
                totals[record.fallback] = totals.get(record.fallback, 0) + 1
        return totals

    def cache_totals(self, include_journal: bool = False) -> dict:
        """Estimate-cache counters summed over the points this run evaluated.

        Journal-rehydrated points did no modeling work in this run and
        are excluded by default.  A shard *merge* rebuilds its whole
        report from journals, where every point's counters are
        journal-carried — ``include_journal=True`` sums those too so
        cross-shard cache totals aggregate correctly.  Empty when the
        cache was disabled throughout.
        """
        totals = _Totals()
        for record in self.records:
            if include_journal or not record.from_journal:
                totals.add(record.cache)
        return totals.counters

    def summary(self) -> str:
        ok = sum(1 for r in self.records if r.status == "ok")
        degraded = len(self.degraded)
        failed = len(self.failures)
        resumed = sum(1 for r in self.records if r.from_journal)
        text = (
            f"{len(self.records)} points: {ok} ok, "
            f"{degraded} degraded, {failed} failed"
        )
        if resumed:
            text += f" ({resumed} from journal)"
        if self.cancelled:
            text += " [cancelled]"
        return text


@dataclass(frozen=True)
class _Task:
    index: int
    point: DesignPoint
    attempt: int = 1
    degraded: bool = False
    first_failure: Optional[PointFailure] = None
    #: Why the vector path handed this task to the scalar path (estimator
    #: fallback taxonomy); threaded into the final record and journal row.
    fallback: Optional[str] = None


def _mp_context() -> mp.context.BaseContext:
    """Fork when available (Linux): workers inherit graphs and patches."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def _failure_payload(error: BaseException, wall_time_s: float) -> dict:
    import pickle

    carried: Optional[BaseException] = error
    try:
        pickle.dumps(error)
    except Exception:
        carried = None  # still report type/message/stage, just not the object
    return {
        "error_type": type(error).__name__,
        "message": str(error),
        "stage": classify_stage(error),
        "wall_time_s": wall_time_s,
        "component_path": getattr(error, "component_path", None),
        "config_digest": getattr(error, "config_digest", None),
        "exception": carried,
    }


@dataclass(frozen=True)
class PoolJobConfig:
    """Everything a pool worker needs to evaluate tasks.

    Baked into the worker process at fork time (inherited, not pickled),
    so a :class:`WorkerPool` lease with a *different* config retires the
    warm workers and respawns them against the new one.  Long-lived
    callers should therefore reuse one config object per distinct
    workload recipe to keep workers warm across requests.
    """

    workloads: Sequence[tuple[str, Graph]] = ()
    batches: Sequence[object] = ()
    ctx: Optional[ModelContext] = None
    latency_slo_ms: float = DEFAULT_LATENCY_SLO_MS
    validate: bool = True


def _run_attempt(task: _Task, config: PoolJobConfig) -> DesignPointResult:
    """One evaluation attempt; degraded attempts drop the workload recipe."""
    use_workloads = () if task.degraded else config.workloads
    use_batches = () if task.degraded else config.batches
    result = evaluate_point(
        task.point, use_workloads, use_batches, config.ctx,
        config.latency_slo_ms,
    )
    if config.validate:
        validate_result(result)
    return result


def _evaluate_one(
    conn: Connection, task: _Task, config: PoolJobConfig
) -> None:
    """Evaluate one task inside a worker; ship the outcome over the pipe."""
    start = time.perf_counter()
    stats_before = get_estimate_cache().stats.snapshot()
    try:
        result = _run_attempt(task, config)
        elapsed = time.perf_counter() - start
        cache_delta = get_estimate_cache().stats.delta_since(stats_before)
        payload = ("result", task.index, "ok", result, elapsed, cache_delta)
    except Exception as error:
        elapsed = time.perf_counter() - start
        cache_delta = get_estimate_cache().stats.delta_since(stats_before)
        payload = (
            "result",
            task.index,
            "error",
            _failure_payload(error, elapsed),
            elapsed,
            cache_delta,
        )
    try:
        conn.send(payload)
    except Exception as send_error:
        # The result did not pickle; report that instead of dying
        # silently and being misread as a crash.
        conn.send(
            (
                "result",
                task.index,
                "error",
                {
                    "error_type": type(send_error).__name__,
                    "message": (
                        "result could not be returned from the worker: "
                        f"{send_error}"
                    ),
                    "stage": "collect",
                    "wall_time_s": elapsed,
                    "exception": None,
                },
                elapsed,
                cache_delta,
            )
        )


def _arm_parent_death_signal() -> None:
    """Best-effort ``PR_SET_PDEATHSIG``: die when the parent does.

    An idle worker already exits on pipe EOF, but a worker buried in a
    long evaluation would outlive a parent killed by an uncatchable
    signal.  On Linux the kernel delivers SIGKILL to the worker the
    moment its parent dies, so a SIGKILLed sweep leaves no orphan
    processes; elsewhere this quietly does nothing.
    """
    try:
        import ctypes
        import signal as _signal

        libc = ctypes.CDLL(None, use_errno=True)
        pr_set_pdeathsig = 1
        libc.prctl(pr_set_pdeathsig, int(_signal.SIGKILL))
    except Exception:
        return  # non-Linux or locked-down libc: orphan cleanup degrades


def _pool_worker_main(conn: Connection, config: PoolJobConfig) -> None:
    """Persistent forked worker: evaluate chunks of tasks until stopped.

    The worker stays warm between chunks — module imports, the estimate
    cache, and any per-``(X, N)`` substrate entries inherited at fork time
    are reused across every point it evaluates.  Each task's outcome is
    shipped as its own ``("result", ...)`` message so the parent can track
    per-point timeouts; a ``("done",)`` marker closes each chunk.
    """
    _arm_parent_death_signal()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, tuple) or message[0] != "chunk":
                break
            for task in message[1]:
                _evaluate_one(conn, task, config)
            conn.send(("done",))
    except (BrokenPipeError, EOFError, OSError):
        pass  # parent went away; nothing left to report to
    finally:
        conn.close()


@dataclass
class _PoolWorker:
    """Parent-side state of one persistent worker process."""

    proc: mp.process.BaseProcess
    conn: Connection
    #: Tasks of the current chunk still awaiting a result message; the
    #: head of the deque is the point the worker is evaluating right now.
    pending: deque = field(default_factory=deque)
    #: When the in-flight point started (chunk dispatch or last result).
    started: float = 0.0
    #: True while a chunk is outstanding (before its ``done`` marker).
    busy: bool = False


class WorkerPool:
    """A persistent pool of forked evaluation workers, reusable across runs.

    ``run_sweep`` historically forked workers per invocation and tore
    them down at the end — correct for a batch CLI, wasteful for a
    long-running service paying fork/import/cache-warmup per request.
    A ``WorkerPool`` owns that worker lifecycle instead: create one,
    pass it to any number of ``run_sweep(..., pool=...)`` calls, and the
    forked processes (with their warm estimate caches) survive between
    calls.  Leases are serialized under a lock, so concurrent callers
    queue rather than interleave chunks.

    Workers are forked lazily against the :class:`PoolJobConfig` of the
    current lease; a lease with a *different* config (compared by value;
    workload graphs compare by identity) retires the warm workers — their
    forked-in recipe no longer matches — and respawns on demand.  Reuse
    the same workload/context objects per distinct recipe to stay warm.
    """

    def __init__(
        self,
        jobs: int,
        mp_context: Optional[mp.context.BaseContext] = None,
    ):
        if jobs < 1:
            raise ConfigurationError(f"pool jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._mp_ctx = mp_context if mp_context is not None else _mp_context()
        self._lock = threading.Lock()
        self._workers: list[_PoolWorker] = []
        self._config: Optional[PoolJobConfig] = None
        self._closed = False
        #: Total processes forked over the pool's lifetime (observability).
        self.spawned_total = 0

    # -- introspection -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def workers(self) -> list[_PoolWorker]:
        return self._workers

    def worker_pids(self) -> list[int]:
        """PIDs of the currently live worker processes."""
        return [
            w.proc.pid
            for w in self._workers
            if w.proc.pid is not None and w.proc.is_alive()
        ]

    # -- lease lifecycle -----------------------------------------------------

    @contextmanager
    def lease(self, config: PoolJobConfig) -> Iterator["WorkerPool"]:
        """Exclusive use of the pool for one run, under ``config``.

        On exit, workers that finished cleanly stay warm for the next
        lease; workers left busy (an exception or abort escaped the run
        loop mid-chunk) are in an unknown protocol state and are killed.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            if self._config is not None and config != self._config:
                self._retire_all()
            self._config = config
            try:
                yield self
            finally:
                for worker in list(self._workers):
                    if worker.busy or not worker.proc.is_alive():
                        self.discard(worker, kill=True)

    def spawn_worker(self) -> _PoolWorker:
        """Fork one worker against the current lease config."""
        if self._config is None:
            raise ConfigurationError("spawn_worker() outside a lease")
        parent, child = self._mp_ctx.Pipe(duplex=True)
        proc = self._mp_ctx.Process(
            target=_pool_worker_main,
            args=(child, self._config),
            daemon=True,
        )
        proc.start()
        child.close()
        worker = _PoolWorker(proc=proc, conn=parent)
        self._workers.append(worker)
        self.spawned_total += 1
        return worker

    def discard(self, worker: _PoolWorker, kill: bool = False) -> None:
        """Remove one worker from the pool, reaping the process.

        ``kill=True`` forces an immediate kill (crashed, timed out, or
        mid-chunk at abort); otherwise an idle worker is asked to stop
        via the pipe protocol first.
        """
        if worker in self._workers:
            self._workers.remove(worker)
        if worker.proc.is_alive():
            if kill or worker.busy:
                worker.proc.kill()
            else:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    worker.proc.kill()
        worker.proc.join(_JOIN_GRACE_S)
        if worker.proc.is_alive():  # pragma: no cover - defensive
            worker.proc.kill()
            worker.proc.join(_JOIN_GRACE_S)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def _retire_all(self) -> None:
        for worker in list(self._workers):
            self.discard(worker)

    def close(self) -> None:
        """Tear down every worker; the pool cannot be leased again."""
        with self._lock:
            self._closed = True
            self._retire_all()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _SweepRun:
    """State of one engine invocation (scheduling, retries, journal)."""

    def __init__(
        self,
        points: Sequence[DesignPoint],
        workloads: Sequence[tuple[str, Graph]],
        batches: Sequence[object],
        ctx: Optional[ModelContext],
        jobs: int,
        timeout_s: Optional[float],
        strict: bool,
        retry_degraded: bool,
        validate: bool,
        journal: Optional[Journal],
        resume: bool,
        latency_slo_ms: float,
        on_record: Optional[Callable[[PointRecord], None]],
        chunk_size: Optional[int] = None,
        should_abort: Optional[Callable[[], bool]] = None,
    ):
        self.points = list(points)
        self.workloads = tuple(workloads)
        self.batches = tuple(batches)
        self.ctx = ctx
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.chunk_size = chunk_size
        self.strict = strict
        self.retry_degraded = retry_degraded and not strict
        self.validate = validate
        self.journal = journal
        self.resume = resume
        self.latency_slo_ms = latency_slo_ms
        self.on_record = on_record
        self.should_abort = should_abort
        self.cancelled = False
        self.config = PoolJobConfig(
            workloads=self.workloads,
            batches=self.batches,
            ctx=ctx,
            latency_slo_ms=latency_slo_ms,
            validate=validate,
        )
        self.records: dict[int, PointRecord] = {}

    def _aborted(self) -> bool:
        """Poll the cancellation hook once; latch the cancelled flag."""
        if self.should_abort is not None and self.should_abort():
            self.cancelled = True
        return self.cancelled

    # -- record bookkeeping ---------------------------------------------------

    def _finalize(self, task: _Task, record: PointRecord) -> None:
        self.records[task.index] = record
        if self.journal is not None and not record.from_journal:
            self.journal.append(
                JournalEntry(
                    point=record.point,
                    status=record.status,
                    attempt=record.attempt,
                    wall_time_s=record.wall_time_s,
                    metrics=record.metrics,
                    failure=(
                        record.failure.to_dict()
                        if record.failure is not None
                        else None
                    ),
                    cache=record.cache,
                    fallback=record.fallback,
                    # Every row the engine writes came from the analytical
                    # model; surrogate predictions never reach a journal.
                    source="exact",
                )
            )
        if self.on_record is not None:
            self.on_record(record)

    def _success(
        self,
        task: _Task,
        result: DesignPointResult,
        wall_time_s: float,
        cache: Optional[dict] = None,
    ) -> None:
        status = "degraded" if task.degraded else "ok"
        self._finalize(
            task,
            PointRecord(
                point=task.point,
                status=status,
                result=result,
                metrics=summarize_result(result),
                failure=task.first_failure,
                wall_time_s=wall_time_s,
                attempt=task.attempt,
                cache=cache,
                fallback=task.fallback,
            ),
        )

    def _failure(
        self,
        task: _Task,
        failure: PointFailure,
        cache: Optional[dict] = None,
    ) -> Optional[_Task]:
        """Handle one failed attempt; return the retry task if any."""
        can_degrade = (
            self.retry_degraded
            and not task.degraded
            and bool(self.workloads or self.batches)
        )
        if can_degrade:
            return _Task(
                index=task.index,
                point=task.point,
                attempt=task.attempt + 1,
                degraded=True,
                first_failure=failure,
                fallback=task.fallback,
            )
        final = task.first_failure if task.first_failure else failure
        self._finalize(
            task,
            PointRecord(
                point=task.point,
                status="failed",
                failure=final,
                wall_time_s=failure.wall_time_s,
                attempt=task.attempt,
                cache=cache,
                fallback=task.fallback,
            ),
        )
        return None

    # -- inline execution -----------------------------------------------------

    def run_inline(self, tasks: deque[_Task]) -> None:
        while tasks:
            if self._aborted():
                return
            task = tasks.popleft()
            start = time.perf_counter()
            stats_before = get_estimate_cache().stats.snapshot()
            try:
                result = _run_attempt(task, self.config)
            except Exception as error:
                if self.strict:
                    raise
                retry = self._failure(
                    task,
                    PointFailure.from_error(
                        task.point,
                        error,
                        wall_time_s=time.perf_counter() - start,
                        attempt=task.attempt,
                        degraded=task.degraded,
                    ),
                    cache=get_estimate_cache().stats.delta_since(
                        stats_before
                    ),
                )
                if retry is not None:
                    tasks.appendleft(retry)
                continue
            self._success(
                task,
                result,
                time.perf_counter() - start,
                cache=get_estimate_cache().stats.delta_since(stats_before),
            )

    # -- vectorized execution -------------------------------------------------

    def run_vector(self, tasks: deque[_Task], mode: str) -> deque[_Task]:
        """Evaluate supported points through the batch kernels.

        Returns the tasks the vector path could not finish — unsupported
        configurations, failed builds, and SRAM-search-infeasible points
        — for the scalar path, so ``auto`` sweeps produce exactly the
        records a scalar sweep would (including authentic per-point
        failures).  Every handed-back task carries its fallback reason,
        which lands in the final record and journal row.  With ``mode ==
        "vector"``, an unsupported configuration is a
        :class:`~repro.errors.ConfigurationError` and a screen failure is
        recorded (or raised, under ``strict``) instead of falling back;
        build failures and infeasible points still take the scalar path
        in both modes, because only it raises the authentic model error.
        """
        from dataclasses import replace

        from repro.batch.estimator import (
            SCREEN_FAILED,
            UNSUPPORTED_CONFIG,
            BatchEstimator,
        )

        ordered = list(tasks)
        estimator = BatchEstimator(self.ctx)
        start = time.perf_counter()
        batch = estimator.estimate_points(
            [t.point for t in ordered],
            workloads=self.workloads,
            batches=self.batches,
            latency_slo_ms=self.latency_slo_ms,
        )
        share = (time.perf_counter() - start) / max(len(ordered), 1)
        remaining: deque[_Task] = deque()
        for offset, (task, summary) in enumerate(
            zip(ordered, batch.summaries)
        ):
            if summary is not None:
                if self.validate:
                    validate_result(summary)
                self._success(task, summary, share)
                continue
            reason = batch.fallback_reasons.get(offset, UNSUPPORTED_CONFIG)
            if mode == "vector" and reason == UNSUPPORTED_CONFIG:
                raise ConfigurationError(
                    f"{task.point.label()} does not build a preset "
                    "configuration the vector backend models (the "
                    "datacenter or training family); use backend='auto' "
                    "to fall back to the scalar path for such points"
                )
            if mode == "vector" and reason == SCREEN_FAILED:
                error = NumericalError(
                    f"batch[{offset}]",
                    float("nan"),
                    "batched output failed the numeric screen",
                )
                if self.strict:
                    raise error
                tagged = replace(task, fallback=reason)
                retry = self._failure(
                    tagged,
                    PointFailure.from_error(
                        tagged.point,
                        error,
                        attempt=tagged.attempt,
                        degraded=tagged.degraded,
                    ),
                )
                if retry is not None:
                    remaining.append(retry)
                continue
            remaining.append(replace(task, fallback=reason))
        return remaining

    # -- forked execution (persistent chunked worker pool) --------------------

    def run_forked(self, tasks: deque[_Task], pool: WorkerPool) -> None:
        """Drain ``tasks`` through a pool of persistent forked workers.

        Workers are forked once and fed *chunks* of tasks over duplex
        pipes, so each process amortizes its fork/import cost over many
        points and keeps its estimate cache warm across them.  Per-point
        semantics are preserved: every task reports its own result
        message, the per-point timeout clock restarts as each result
        arrives, and a killed or crashed worker fails only the in-flight
        point — the rest of its chunk is requeued for the survivors.

        When the ``should_abort`` hook fires, dispatch stops, busy
        workers are killed mid-chunk, and the unfinished tasks are left
        unrecorded — the journal then holds exactly the finished points,
        so a resumed run re-queues the remainder.
        """
        chunk = self.chunk_size
        if chunk is None:
            chunk = derive_chunk_size(len(tasks), pool.jobs)
        while True:
            if self._aborted():
                for worker in list(pool.workers):
                    if worker.busy:
                        pool.discard(worker, kill=True)
                return
            for worker in pool.workers:
                if not worker.busy and tasks:
                    self._dispatch_chunk(worker, tasks, chunk)
            while tasks and len(pool.workers) < pool.jobs:
                self._dispatch_chunk(pool.spawn_worker(), tasks, chunk)
            busy = [w for w in pool.workers if w.busy]
            if not busy:
                return
            ready = _wait_connections(
                [w.conn for w in busy],
                timeout=self._poll_timeout(busy),
            )
            by_conn = {w.conn: w for w in pool.workers}
            for conn in ready:
                worker = by_conn[conn]
                if not self._pool_receive(worker, tasks):
                    pool.discard(worker, kill=True)
            for worker in self._expired(pool.workers):
                self._kill_timed_out(worker, tasks)
                pool.discard(worker, kill=True)

    def _dispatch_chunk(
        self, worker: _PoolWorker, tasks: deque[_Task], chunk: int
    ) -> None:
        batch = [tasks.popleft() for _ in range(min(chunk, len(tasks)))]
        worker.pending = deque(batch)
        worker.started = time.monotonic()
        worker.busy = True
        try:
            worker.conn.send(("chunk", batch))
        except (BrokenPipeError, OSError):
            pass  # dead worker; the poll loop reaps it as a crash

    def _poll_timeout(
        self, busy: Sequence[_PoolWorker]
    ) -> Optional[float]:
        abort_cap = _ABORT_POLL_S if self.should_abort is not None else None
        if self.timeout_s is None:
            return abort_cap
        tracked = [w.started for w in busy if w.pending]
        if not tracked:
            return abort_cap
        next_deadline = min(tracked) + self.timeout_s
        remaining = max(0.0, next_deadline - time.monotonic()) + 0.02
        if abort_cap is not None:
            return min(remaining, abort_cap)
        return remaining

    def _expired(
        self, workers: Sequence[_PoolWorker]
    ) -> list[_PoolWorker]:
        if self.timeout_s is None:
            return []
        now = time.monotonic()
        return [
            w
            for w in workers
            if w.busy and w.pending and now - w.started > self.timeout_s
        ]

    def _pool_receive(
        self, worker: _PoolWorker, tasks: deque[_Task]
    ) -> bool:
        """Handle one message from a worker; False when the worker died."""
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            return self._pool_crash(worker, tasks)
        if message[0] == "done":
            worker.pending.clear()
            worker.busy = False
            return True
        _kind, index, status, payload, wall_time_s, cache_delta = message
        if not worker.pending or worker.pending[0].index != index:
            # Protocol desync (should not happen); drop the worker.
            return self._pool_crash(worker, tasks)
        task = worker.pending.popleft()
        worker.started = time.monotonic()  # next point's clock starts now
        if status == "ok":
            self._success(task, payload, wall_time_s, cache=cache_delta)
            return True
        failure = PointFailure.from_dict(
            task.point,
            {**payload, "attempt": task.attempt, "degraded": task.degraded},
        )
        if self.strict:
            original = payload.get("exception")
            if isinstance(original, BaseException):
                raise original
            raise NeuroMeterError(failure.describe())
        retry = self._failure(task, failure, cache=cache_delta)
        if retry is not None:
            tasks.append(retry)
        return True

    def _pool_crash(
        self, worker: _PoolWorker, tasks: deque[_Task]
    ) -> bool:
        """Fail the in-flight point of a dead worker; requeue the rest."""
        worker.proc.join(_JOIN_GRACE_S)
        pending = worker.pending
        worker.pending = deque()
        worker.busy = False
        if pending:
            task = pending.popleft()
            tasks.extend(pending)  # rerun the rest of the chunk elsewhere
            failure = PointFailure(
                point=task.point,
                stage="evaluate",
                error_type="WorkerCrash",
                message=(
                    "worker died without reporting "
                    f"(exit code {worker.proc.exitcode})"
                ),
                attempt=task.attempt,
                degraded=task.degraded,
            )
            if self.strict:
                raise NeuroMeterError(failure.describe()) from None
            retry = self._failure(task, failure)
            if retry is not None:
                tasks.append(retry)
        return False

    def _kill_timed_out(
        self, worker: _PoolWorker, tasks: deque[_Task]
    ) -> None:
        elapsed_s = time.monotonic() - worker.started
        pending = worker.pending
        worker.pending = deque()
        worker.busy = False
        task = pending.popleft()
        tasks.extend(pending)  # only the in-flight point timed out
        failure = PointFailure(
            point=task.point,
            stage="timeout",
            error_type="PointTimeoutError",
            message=(
                f"evaluation exceeded the {self.timeout_s:g} s "
                f"per-point timeout (killed after {elapsed_s:.1f} s)"
            ),
            wall_time_s=elapsed_s,
            attempt=task.attempt,
            degraded=task.degraded,
        )
        if self.strict:
            raise PointTimeoutError(failure.describe())
        retry = self._failure(task, failure)
        if retry is not None:
            tasks.append(retry)


def run_sweep(
    points: Sequence[DesignPoint],
    workloads: Sequence[tuple[str, Graph]] = (),
    batches: Iterable[object] = (),
    ctx: Optional[ModelContext] = None,
    *,
    backend: str = "scalar",
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    strict: bool = False,
    retry_degraded: bool = True,
    validate: bool = True,
    journal_path: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    journal_meta: Optional[dict] = None,
    latency_slo_ms: float = DEFAULT_LATENCY_SLO_MS,
    on_record: Optional[Callable[[PointRecord], None]] = None,
    warm_cache: bool = True,
    pool: Optional[WorkerPool] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> SweepReport:
    """Evaluate design points with fault isolation, retries, and resume.

    Args:
        points: Design tuples to evaluate (order is preserved in the
            report).
        workloads: (name, graph) pairs to simulate per point.
        batches: Batch specs (ints or ``"latency-bound"``).
        ctx: Modeling context (Table I's by default).
        backend: ``"scalar"`` evaluates every point through the object
            model; ``"vector"`` evaluates the sweep — peak metrics and
            workload simulation alike — through the NumPy batch kernels
            (:mod:`repro.batch`) and rejects unsupported configurations;
            ``"auto"`` uses the vector path for supported points and
            transparently falls back to the scalar path per point
            otherwise, tagging each fallback with its reason.
        jobs: Worker processes.  ``jobs == 1`` with no timeout runs
            inline in this process; otherwise points run in a pool of
            persistent forked workers fed with chunks of points.
        timeout_s: Per-point wall-clock budget.  A point still running at
            the deadline is killed and recorded as a ``timeout`` failure;
            the remainder of its chunk is requeued, not failed.
        chunk_size: Points dispatched to a pool worker at a time.
            Defaults to ``ceil(points / (4 * jobs))`` so each worker gets
            roughly four chunks per sweep.
        strict: Re-raise the first failure instead of recording it (the
            legacy ``sweep()`` contract).  Disables retries.
        retry_degraded: Retry a failed point once with the workload
            recipe dropped, salvaging the peak-only row (status
            ``degraded``).
        validate: Run the result guardrails
            (:func:`repro.dse.guardrails.validate_result`) on every
            accepted result.
        journal_path: JSONL checkpoint file; every finished point is
            appended and fsynced.
        resume: Skip points already finished in ``journal_path`` and
            rehydrate their journaled metrics.
        journal_meta: Extra dict folded into a *newly created* journal's
            header line (shard workers stamp the sweep digest and shard
            coordinates; see :mod:`repro.dse.shard`).
        latency_slo_ms: SLO for ``"latency-bound"`` batch specs.
        on_record: Progress callback invoked with each final
            :class:`PointRecord`.
        warm_cache: Before forking workers, pre-seed the estimate cache
            with each unique per-core substrate
            (:func:`warm_substrate_cache`) so workers inherit it by
            copy-on-write.  A no-op when the cache is disabled or the run
            is inline (inline runs warm the cache as they go).
        pool: A caller-owned :class:`WorkerPool` to run forked points on.
            The pool's workers stay warm after the call (the caller owns
            ``close()``); without one, a pool of ``jobs`` workers is
            created and torn down inside this call.  Forces the forked
            path even with ``jobs == 1`` and no timeout.
        should_abort: Cooperative cancellation hook, polled between
            points (at least every ~0.25 s on the forked path).  When it
            returns true the run stops admitting work, kills in-flight
            workers, and returns the partial report with
            ``cancelled=True``; journaled points are never lost.

    Returns:
        A :class:`SweepReport` with one record per input point (only the
        finished subset when cancelled).

    Raises:
        ConfigurationError: invalid engine options.
        NeuroMeterError: the first point failure, when ``strict=True``.
    """
    if backend not in ("scalar", "vector", "auto"):
        raise ConfigurationError(
            f"backend must be 'scalar', 'vector', or 'auto', got {backend!r}"
        )
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(
            f"timeout_s must be positive, got {timeout_s}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size}"
        )
    if resume and journal_path is None:
        raise ConfigurationError("resume=True requires a journal_path")

    points = list(points)
    batches = tuple(batches)
    journal: Optional[Journal] = None
    if journal_path is not None:
        journal = Journal(journal_path, resume=resume, meta=journal_meta)

    run = _SweepRun(
        points=points,
        workloads=workloads,
        batches=batches,
        ctx=ctx,
        jobs=jobs,
        timeout_s=timeout_s,
        strict=strict,
        retry_degraded=retry_degraded,
        validate=validate,
        journal=journal,
        resume=resume,
        latency_slo_ms=latency_slo_ms,
        on_record=on_record,
        chunk_size=chunk_size,
        should_abort=should_abort,
    )

    try:
        tasks: deque[_Task] = deque()
        journaled: dict[DesignPoint, JournalEntry] = {}
        if journal is not None and resume:
            for entry in journal.entries:
                journaled[entry.point] = entry  # last record wins
        for index, point in enumerate(points):
            entry = journaled.get(point)
            if entry is not None:
                record = record_from_journal_entry(entry)
                run.records[index] = record
                if on_record is not None:
                    on_record(record)
                continue
            tasks.append(_Task(index=index, point=point))

        if tasks and backend != "scalar":
            use_vector = True
            if backend == "auto":
                from repro.batch.estimator import HAVE_NUMPY

                use_vector = HAVE_NUMPY
            if use_vector:
                tasks = run.run_vector(tasks, backend)

        if pool is not None or jobs > 1 or timeout_s is not None:
            if warm_cache and tasks:
                warm_substrate_cache([t.point for t in tasks], ctx)
            owned = pool if pool is not None else WorkerPool(jobs)
            try:
                with owned.lease(run.config) as leased:
                    run.run_forked(tasks, leased)
            finally:
                if pool is None:
                    owned.close()
        else:
            run.run_inline(tasks)
    finally:
        if journal is not None:
            journal.close()

    return SweepReport(
        records=tuple(
            run.records[index] for index in sorted(run.records)
        ),
        cancelled=run.cancelled,
    )
