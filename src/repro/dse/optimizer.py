"""Design-point optimization with alternative targets and constraints.

Fig. 1 of the paper: "NeuroMeter requires the input of system-level
performance (i.e., peak TOPS) as the optimization target (or a minimal
value of it as a design constraint).  TOPS/Watt and TOPS/TCO are also
allowed to feed in as alternative optimization targets or design
constraints."  This module implements that selection layer on top of the
sweep machinery: filter the candidate points by constraints, rank by the
chosen objective, return the winner (and the ranking).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.arch.component import ModelContext
from repro.dse.space import DesignPoint
from repro.dse.sweep import DesignPointResult
from repro.errors import ConfigurationError, OptimizationError
from repro.perf.graph import Graph


class Objective(enum.Enum):
    """Optimization targets NeuroMeter accepts (peak metrics)."""

    PEAK_TOPS = "tops"
    PEAK_TOPS_PER_WATT = "tops-per-watt"
    PEAK_TOPS_PER_TCO = "tops-per-tco"
    ACHIEVED_TOPS = "achieved-tops"
    ACHIEVED_TOPS_PER_WATT = "achieved-tops-per-watt"
    ACHIEVED_TOPS_PER_TCO = "achieved-tops-per-tco"

    @property
    def needs_workloads(self) -> bool:
        return self.value.startswith("achieved")


@dataclass(frozen=True)
class Constraints:
    """Design constraints (all optional; ``None`` disables a bound).

    Attributes:
        max_area_mm2 / max_tdp_w: The physical budget (Table I uses
            500 mm^2 / 300 W).
        min_peak_tops: Performance floor ("a minimal value of it as a
            design constraint").
        min_peak_tops_per_watt / min_peak_tops_per_tco: Efficiency floors.
    """

    max_area_mm2: Optional[float] = None
    max_tdp_w: Optional[float] = None
    min_peak_tops: Optional[float] = None
    min_peak_tops_per_watt: Optional[float] = None
    min_peak_tops_per_tco: Optional[float] = None

    def satisfied_by(self, result: DesignPointResult) -> bool:
        """Whether one evaluated point meets every bound."""
        checks = (
            (self.max_area_mm2, result.area_mm2, False),
            (self.max_tdp_w, result.tdp_w, False),
            (self.min_peak_tops, result.peak_tops, True),
            (
                self.min_peak_tops_per_watt,
                result.peak_tops_per_watt,
                True,
            ),
            (self.min_peak_tops_per_tco, result.peak_tops_per_tco, True),
        )
        for bound, value, is_floor in checks:
            if bound is None:
                continue
            if is_floor and value < bound:
                return False
            if not is_floor and value > bound:
                return False
        return True


def _score_fn(
    objective: Objective, batch: int
) -> Callable[[DesignPointResult], float]:
    if objective is Objective.PEAK_TOPS:
        return lambda r: r.peak_tops
    if objective is Objective.PEAK_TOPS_PER_WATT:
        return lambda r: r.peak_tops_per_watt
    if objective is Objective.PEAK_TOPS_PER_TCO:
        return lambda r: r.peak_tops_per_tco
    if objective is Objective.ACHIEVED_TOPS:
        return lambda r: r.mean_achieved_tops(batch)
    if objective is Objective.ACHIEVED_TOPS_PER_WATT:
        return lambda r: r.mean_energy_efficiency(batch)
    return lambda r: r.mean_cost_efficiency(batch)


#: Candidate-selection strategies ``optimize_design`` accepts.
STRATEGIES = ("exhaustive", "surrogate")


@dataclass(frozen=True)
class OptimizationOutcome:
    """Result of a design optimization.

    Attributes:
        best: The winning evaluated point (``None`` only when a
            cancelled run finished no feasible candidate).
        ranking: Every feasible point, best first.
        infeasible: Points that failed the constraints (or whose degraded
            evaluation lacks the runtime metrics the objective needs).
        failures: Structured evaluation failures — only populated when
            the engine runs in ``strict=False`` (keep-going) mode.
        strategy: How candidates were chosen: ``"exhaustive"`` (every
            point evaluated) or ``"surrogate"`` (budgeted search; the
            ranking covers only the points the search exactly verified).
        exact_evaluations: Exact-model evaluations actually *paid for*
            by this call — journal-rehydrated rows are free.  ``None``
            when the engine ran without that accounting (legacy paths).
        cancelled: The run was stopped early by ``should_abort``; the
            ranking covers only the points finished before the abort.
    """

    best: Optional[DesignPointResult]
    ranking: tuple[DesignPointResult, ...]
    infeasible: tuple[DesignPoint, ...]
    failures: tuple = ()
    strategy: str = "exhaustive"
    exact_evaluations: Optional[int] = None
    cancelled: bool = False


def _journal_covers(
    journal_path: Union[str, os.PathLike],
    digest: str,
    points: Sequence[DesignPoint],
):
    """Warm-start check: does a compatible journal already cover the grid?

    Answers a record list when the journal's header carries a matching
    sweep digest *and* every candidate point has a finished row — the
    optimization then ranks straight from the journal without touching
    the engine.  A journal stamped with a *different* digest is a typed
    refusal (it belongs to another grid, workload set, or package
    version; resuming from it point-by-point would silently mix
    recipes).  A journal with no digest (legacy, or engine-written
    without meta) answers ``None`` and the engine resumes normally.

    Raises:
        ConfigurationError: the journal header digest mismatches.
    """
    from repro.dse.engine import record_from_journal_entry
    from repro.dse.journal import journal_header, load_journal

    header = journal_header(journal_path) or {}
    meta = header.get("meta") or {}
    stamped = meta.get("sweep_digest")
    if stamped is None:
        return None
    if stamped != digest:
        raise ConfigurationError(
            f"journal {os.fspath(journal_path)} was written for sweep "
            f"digest {stamped}, but this optimization digests to "
            f"{digest} — different points, workloads, batches, or "
            "package version; use a fresh journal path"
        )
    by_point = {}
    for entry in load_journal(journal_path):
        by_point[entry.point] = entry  # last record wins, as on resume
    if any(point not in by_point for point in points):
        return None  # partial coverage: let the engine resume the rest
    return [record_from_journal_entry(by_point[p]) for p in points]


def _rank_records(
    records,
    failures,
    points_count: int,
    objective: Objective,
    constraints: Constraints,
    batch: int,
    *,
    strategy: str,
    exact_evaluations: Optional[int],
    cancelled: bool,
) -> OptimizationOutcome:
    """Filter by constraints, rank by the objective, pick the winner."""
    regime = f"bs={batch}"
    feasible: list[DesignPointResult] = []
    infeasible: list[DesignPoint] = []
    for record in records:
        result = record.result
        if result is None:
            continue  # reported through ``failures``
        if objective.needs_workloads and not any(
            o.regime == regime for o in result.outcomes
        ):
            # Degraded (peak-only) rows cannot be ranked on achieved-*
            # objectives.
            infeasible.append(record.point)
            continue
        if constraints.satisfied_by(result):
            feasible.append(result)
        else:
            infeasible.append(record.point)
    if not feasible:
        if cancelled:
            return OptimizationOutcome(
                best=None,
                ranking=(),
                infeasible=tuple(infeasible),
                failures=tuple(failures),
                strategy=strategy,
                exact_evaluations=exact_evaluations,
                cancelled=True,
            )
        raise OptimizationError(
            f"none of the {points_count} candidates satisfy the "
            "constraints"
        )
    score = _score_fn(objective, batch)
    ranking = sorted(feasible, key=score, reverse=True)
    return OptimizationOutcome(
        best=ranking[0],
        ranking=tuple(ranking),
        infeasible=tuple(infeasible),
        failures=tuple(failures),
        strategy=strategy,
        exact_evaluations=exact_evaluations,
        cancelled=cancelled,
    )


def optimize_design(
    points: Sequence[DesignPoint],
    objective: Objective = Objective.PEAK_TOPS,
    constraints: Constraints = Constraints(),
    workloads: Sequence[tuple[str, Graph]] = (),
    batch: int = 1,
    ctx: Optional[ModelContext] = None,
    *,
    backend: str = "scalar",
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    chunk_size: Optional[int] = None,
    strict: bool = True,
    journal_path: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    strategy: str = "exhaustive",
    eval_budget: Optional[int] = None,
    seed: Optional[int] = None,
    should_abort=None,
) -> OptimizationOutcome:
    """Pick the best design point for an objective under constraints.

    With ``strategy="exhaustive"`` every candidate is evaluated on the
    fault-tolerant sweep engine (:func:`repro.dse.engine.run_sweep`) —
    process parallelism, per-point timeouts, checkpoint/resume — and the
    journal is digest-stamped so a later call over the same recipe ranks
    straight from the journal without re-running the sweep.

    With ``strategy="surrogate"`` a learned cost model proposes which
    candidates deserve exact evaluation
    (:func:`repro.dse.surrogate.search.surrogate_search`); only
    exact-verified rows are ranked, and ``eval_budget`` caps the exact
    evaluations (default: a quarter of the candidates).

    Args:
        points: Candidate design tuples.
        objective: The metric to maximize.
        constraints: Bounds every candidate must satisfy.
        workloads: (name, graph) pairs — required for achieved-* targets.
        batch: Batch size for achieved-* targets.
        ctx: Modeling context (Table I's by default).
        backend: Estimation backend (``"scalar"``, ``"vector"``, or
            ``"auto"``); see :func:`repro.dse.engine.run_sweep`.
        jobs: Worker processes for candidate evaluation.
        timeout_s: Per-candidate wall-clock budget.
        chunk_size: Candidates dispatched per worker chunk.
        strict: Raise on the first evaluation failure (legacy behavior).
            With ``strict=False`` failed candidates are recorded in
            ``failures`` and the optimization continues.
        journal_path / resume: Checkpoint journal; see
            :func:`repro.dse.engine.run_sweep`.
        strategy: ``"exhaustive"`` or ``"surrogate"``.
        eval_budget: Exact-evaluation cap for the surrogate strategy.
        seed: Search seed for the surrogate strategy
            (``NEUROMETER_SEED``/0 when omitted).
        should_abort: Cooperative cancellation hook, polled between
            evaluations; a cancelled run answers a partial outcome with
            ``cancelled=True`` instead of raising.

    Raises:
        ConfigurationError: an achieved-* objective without workloads,
            an unknown strategy, or a resume journal stamped with a
            different sweep digest.
        OptimizationError: no candidate satisfies the constraints.
    """
    from repro.dse.engine import run_sweep
    from repro.dse.shard import sweep_digest

    if not points:
        raise ConfigurationError("no candidate design points given")
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )
    if objective.needs_workloads and not workloads:
        raise ConfigurationError(
            f"objective {objective.value!r} needs workloads to simulate"
        )

    batches = [batch] if objective.needs_workloads else []

    if strategy == "surrogate":
        from repro.dse.surrogate.search import surrogate_search

        budget = (
            eval_budget
            if eval_budget is not None
            else max(8, len(points) // 4)
        )
        search = surrogate_search(
            objective,
            candidates=points,
            eval_budget=budget,
            seed=seed,
            ctx=ctx,
            workloads=workloads,
            batch=batch,
            constraints=constraints,
            journal_path=journal_path,
            resume=resume,
            backend=backend,
            jobs=jobs,
            timeout_s=timeout_s,
            should_abort=should_abort,
        )
        return OptimizationOutcome(
            best=search.best,
            ranking=search.ranking,
            infeasible=search.infeasible,
            failures=search.failures,
            strategy="surrogate",
            exact_evaluations=search.exact_evaluations,
            cancelled=search.cancelled,
        )

    workload_names = [name for name, _ in workloads]
    digest = sweep_digest(points, workload_names, batches)
    if journal_path is not None and resume and os.path.exists(journal_path):
        covered = _journal_covers(journal_path, digest, points)
        if covered is not None:
            return _rank_records(
                covered,
                [r.failure for r in covered if r.failure is not None],
                len(points),
                objective,
                constraints,
                batch,
                strategy="exhaustive",
                exact_evaluations=0,
                cancelled=False,
            )
    report = run_sweep(
        points,
        workloads,
        batches,
        ctx,
        backend=backend,
        jobs=jobs,
        timeout_s=timeout_s,
        chunk_size=chunk_size,
        strict=strict,
        journal_path=journal_path,
        resume=resume,
        journal_meta={"sweep_digest": digest},
        should_abort=should_abort,
    )
    return _rank_records(
        report.records,
        report.failures,
        len(points),
        objective,
        constraints,
        batch,
        strategy="exhaustive",
        exact_evaluations=sum(
            1 for r in report.records if not r.from_journal
        ),
        cancelled=report.cancelled,
    )
